//! Offline shim for `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature randomized-property-testing harness exposing the
//! proptest surface its tests use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, [`prelude::any`], ranges and tuples
//! as strategies, `collection::vec`, [`prelude::Just`], `prop_oneof!`,
//! `.prop_map`, and a character-class string strategy (`"[a-z/]{1,24}"`).
//!
//! Differences from real proptest: no shrinking (a failure reports the
//! full generated input instead of a minimal counterexample) and regex
//! string strategies support only the `[class]{m,n}` shape. Runs are
//! deterministic per test name; set `LABSTOR_PROPTEST_SEED` to explore a
//! different universe.

pub mod strategy {
    /// Deterministic splitmix64 RNG driving all generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded RNG; same seed → same sequence.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E3779B97F4A7C15,
            }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is negligible for
            // test-input sizes.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// A generator of test inputs — the shim's take on
    /// `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// `.prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms; weights must not all be
        /// zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            // below(total) < total, so an arm above always matched.
            unreachable!("weighted pick out of range")
        }
    }

    /// Always-the-same-value strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a natural full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps failure output readable.
            (b' ' + rng.below(95) as u8) as char
        }
    }

    /// Strategy producing any value of `T` (`any::<u8>()` style).
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Full-range strategy for an [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    lo + rng.below(span.saturating_add(1).max(1)) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
        (A, B, C, D, E, F, G) (A, B, C, D, E, F, G, H)
    }

    /// Character-class string strategy: `"[a-z/]{1,24}"`. Any other
    /// pattern shape generates the pattern text literally.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = &rest[..close];
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (a, b) = (cs[i] as u32, cs[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match reps.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((chars, lo, hi))
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Vector strategy: random length from `len`, elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-case failure carried by `prop_assert!` early returns.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from a rendered assertion message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Seed for a named test: stable per name, overridable via
/// `LABSTOR_PROPTEST_SEED`.
pub fn seed_for(test_name: &str) -> u64 {
    let base = match std::env::var("LABSTOR_PROPTEST_SEED") {
        Ok(s) => s.parse().unwrap_or(0),
        Err(_) => 0,
    };
    // FNV-1a over the name keeps different tests on different streams.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ base
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fail the
/// current case (early-return `Err`) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(left, right)` — equality check that fails the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
}

/// `prop_assert_ne!(left, right)` — inequality check that fails the case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left != right`\n  both: `{:?}`",
                        l
                    )));
                }
            }
        }
    };
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The main harness macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies, running each body over many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_for(stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::strategy::TestRng::new(
                    seed.wrapping_add(case as u64).wrapping_mul(0x2545F4914F6CDD1D),
                );
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        case + 1,
                        config.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u16..3000).generate(&mut rng);
            assert!((10..3000).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(any::<u8>(), 1..32).generate(&mut rng);
            assert!((1..32).contains(&v.len()));
        }
    }

    #[test]
    fn class_pattern_strategy() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-z/]{1,24}".generate(&mut rng);
            assert!((1..=24).contains(&s.len()));
            assert!(s.chars().all(|c| c == '/' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_honors_zero_weight_exclusion() {
        let mut rng = TestRng::new(4);
        let s = prop_oneof![5 => Just(1u8), 1 => Just(2u8)];
        let mut saw = [false; 3];
        for _ in 0..200 {
            saw[s.generate(&mut rng) as usize] = true;
        }
        assert!(saw[1] && saw[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_passes(xs in collection::vec(any::<u16>(), 0..50), k in 1usize..10) {
            let doubled: Vec<u32> = xs.iter().map(|&x| x as u32 * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert!((1..10).contains(&k), "k out of range: {}", k);
        }

        #[test]
        fn tuples_and_map(pair in (any::<u8>(), 1u16..100).prop_map(|(a, b)| (a as u32, b as u32))) {
            prop_assert!(pair.1 >= 1 && pair.1 < 100);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
