//! Offline shim for `parking_lot`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `parking_lot` API it actually uses as a
//! wrapper over `std::sync`. Semantics differ from the real crate in one
//! deliberate way: these locks do not poison — a panic while holding the
//! lock simply releases it (`parking_lot` behaves the same way).

use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Non-poisoning mutual-exclusion lock (std-backed shim).
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Non-poisoning reader-writer lock (std-backed shim).
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdRwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable paired with [`Mutex`] (std-backed shim).
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Block until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // The std API consumes and returns the guard; replace it in place.
        take_mut(guard, |g| match self.inner.wait(g.inner) {
            Ok(inner) => MutexGuard { inner },
            Err(p) => MutexGuard {
                inner: p.into_inner(),
            },
        });
    }

    /// Block until notified or `timeout` elapses, atomically releasing the
    /// guard's lock. Returns `true` if the wait timed out without a
    /// notification (matching `parking_lot`'s `WaitTimeoutResult::timed_out`).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let mut timed_out = false;
        take_mut(guard, |g| {
            let (inner, res) = match self.inner.wait_timeout(g.inner, timeout) {
                Ok(pair) => pair,
                Err(p) => p.into_inner(),
            };
            timed_out = res.timed_out();
            MutexGuard { inner }
        });
        timed_out
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Replace `*dest` through a by-value transform.
///
/// `f` must not panic: the value has been moved out and a panic would
/// abort via double-drop protection. The only callers (`Condvar::wait`
/// and `Condvar::wait_for`) merely forward to the std condvar waits,
/// which do not panic.
fn take_mut<T, F: FnOnce(T) -> T>(dest: &mut T, f: F) {
    // SAFETY: we read `*dest` and unconditionally write a replacement
    // before returning; `f` is infallible per the contract above, so the
    // moved-out value is never observed twice.
    unsafe {
        let old = std::ptr::read(dest);
        let new = f(old);
        std::ptr::write(dest, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
    }

    #[test]
    fn mutex_released_after_holder_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poison, the lock is usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // No notifier: a short deadline wait must report the timeout.
        {
            let (lock, cv) = &*pair;
            let mut ready = lock.lock();
            let timed_out = cv.wait_for(&mut ready, std::time::Duration::from_millis(5));
            assert!(timed_out);
            assert!(!*ready);
        }
        // With a notifier the waiter observes the flag before any timeout.
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                let _ = cv.wait_for(&mut ready, std::time::Duration::from_secs(30));
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }
}
