//! Offline shim for `serde_json`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of serde_json it uses: the [`Value`] tree, the
//! [`json!`] macro, a strict JSON parser ([`from_str`]) and printers
//! ([`to_string`], [`to_string_pretty`]).
//!
//! Instead of serde's generic `Serialize`/`Deserialize` machinery, typed
//! conversion goes through two concrete traits, [`ToValue`] and
//! [`FromValue`], which structs implement by hand (see
//! `labstor_core::spec` for the canonical example). `from_str::<T>` and
//! `to_string_pretty::<T>` are generic over those traits, so call sites
//! keep serde_json's signatures.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: sorted map, like serde_json without
/// `preserve_order`.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// Value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// Value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    /// Value as `f64` (always representable, possibly lossily).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x == x.trunc() && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup; `None` for absent keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Unsigned integer value, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Signed integer value, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Floating-point value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object contents, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]` — `Null` for absent keys and non-objects, like
    /// serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// `value[i]` — `Null` out of bounds and for non-arrays.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print(self, None, 0))
    }
}

// ---- From conversions (feed the json! macro) ---------------------------

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(Number::Float(x))
    }
}
impl From<f32> for Value {
    fn from(x: f32) -> Value {
        Value::Number(Number::Float(x as f64))
    }
}
macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::PosInt(n as u64))
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);
macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n as i64))
                }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

// ---- comparisons against plain Rust literals ---------------------------

macro_rules! eq_via_from {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            // The owned conversion *is* the comparison strategy here:
            // everything funnels through `Value::from`.
            #[allow(clippy::cmp_owned)]
            fn eq(&self, other: &$t) -> bool {
                *self == Value::from(other.clone())
            }
        }
        impl PartialEq<Value> for $t {
            #[allow(clippy::cmp_owned)]
            fn eq(&self, other: &Value) -> bool {
                Value::from(self.clone()) == *other
            }
        }
    )*};
}
eq_via_from!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, &str, String);

/// Build a [`Value`] from JSON-looking syntax.
///
/// Supports `null`, `{ "key": expr, .. }` objects, `[expr, ..]` arrays
/// and plain expressions. Nested object literals must themselves be
/// wrapped in `json!` (`"inner": json!({..})`); no workspace call site
/// nests today.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($key:tt : $val:expr),+ $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::Value::from($val)); )+
        $crate::Value::Object(map)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($val)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

// ---- typed conversion traits -------------------------------------------

/// Parse or print error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a JSON [`Value`]; the shim's
/// stand-in for `serde::Serialize`.
pub trait ToValue {
    /// Build the JSON tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be built from a JSON [`Value`]; the shim's stand-in
/// for `serde::Deserialize`.
pub trait FromValue: Sized {
    /// Interpret `v`, with a descriptive error on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl FromValue for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Parse JSON text into any [`FromValue`] type.
pub fn from_str<T: FromValue>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&v)
}

/// Compact JSON text for any [`ToValue`] type.
pub fn to_string<T: ToValue>(value: &T) -> Result<String, Error> {
    Ok(print(&value.to_value(), None, 0))
}

/// Pretty JSON text (2-space indent) for any [`ToValue`] type.
pub fn to_string_pretty<T: ToValue>(value: &T) -> Result<String, Error> {
    Ok(print(&value.to_value(), Some("  "), 0))
}

// ---- printer -----------------------------------------------------------

fn print(v: &Value, indent: Option<&str>, depth: usize) -> String {
    let (nl, pad, pad_in, colon) = match indent {
        Some(unit) => ("\n", unit.repeat(depth), unit.repeat(depth + 1), ": "),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Number(n) => n.to_string(),
        Value::String(s) => quote(s),
        Value::Array(items) => {
            if items.is_empty() {
                return "[]".into();
            }
            let body: Vec<String> = items
                .iter()
                .map(|item| format!("{pad_in}{}", print(item, indent, depth + 1)))
                .collect();
            format!("[{nl}{}{nl}{pad}]", body.join(&format!(",{nl}")))
        }
        Value::Object(map) => {
            if map.is_empty() {
                return "{}".into();
            }
            let body: Vec<String> = map
                .iter()
                .map(|(k, val)| {
                    format!(
                        "{pad_in}{}{colon}{}",
                        quote(k),
                        print(val, indent, depth + 1)
                    )
                })
                .collect();
            format!("{{{nl}{}{nl}{pad}}}", body.join(&format!(",{nl}")))
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + consumed.iter().rev().take_while(|&&b| b != b'\n').count();
        Error(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // remaining continuation bytes are valid; re-decode.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let s = std::str::from_utf8(&self.bytes[start..end.min(self.bytes.len())])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII digits/sign/dot/exponent only.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(|x| Value::Number(Number::Float(x)))
                .map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // "-0" parses as integer zero.
            if stripped.chars().all(|c| c == '0') {
                return Ok(Value::Number(Number::PosInt(0)));
            }
            text.parse::<i64>()
                .map(|n| Value::Number(Number::NegInt(n)))
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(|n| Value::Number(Number::PosInt(n)))
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str::<Value>("42").unwrap(), 42);
        assert_eq!(from_str::<Value>("-7").unwrap(), -7);
        assert_eq!(from_str::<Value>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<Value>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value =
            from_str(r#"{"a": [1, 2, {"b": null}], "c": "x", "d": {"e": false}}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][2]["b"], Value::Null);
        assert_eq!(v["c"], "x");
        assert_eq!(v["d"]["e"], false);
        assert!(v.get("missing").is_none());
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn roundtrips_through_pretty_printer() {
        let v: Value = from_str(
            r#"{"mount": "fs::/b", "uids": [0, 1000], "params": {"workers": 4}, "f": 1.5}"#,
        )
        .unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"mount\""));
        let again: Value = from_str(&pretty).unwrap();
        assert_eq!(again, v);
        let compact: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(compact, v);
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({"device": "nvme0", "workers": 4usize, "deep": 16 << 20});
        assert_eq!(v["device"], "nvme0");
        assert_eq!(v["workers"], 4);
        assert_eq!(v["deep"].as_u64(), Some(16 << 20));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1, 2, 3])[2], 3);
        let cond = true;
        let v = json!({"pick": if cond { "a" } else { "b" }});
        assert_eq!(v["pick"], "a");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<Value>(r#""A😀""#).unwrap(), "A😀");
        assert_eq!(from_str::<Value>("\"é😀\"").unwrap(), "é😀");
    }
}
