//! Offline shim for `crossbeam`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of crossbeam it uses: [`utils::CachePadded`],
//! [`utils::Backoff`], and [`queue::ArrayQueue`]. The queue is the same
//! algorithm the real crate uses — Dmitry Vyukov's bounded MPMC queue
//! with per-slot sequence numbers — not a mutex stand-in, so the IPC hot
//! path keeps its lock-free behaviour.

pub mod utils {
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Pads and aligns a value to (at least) a cache-line boundary so two
    /// adjacent atomics never false-share. 128 bytes covers the spatial
    /// prefetcher pairs on modern x86 and big.LITTLE arm cores.
    #[derive(Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value` in its own cache line.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap, returning the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.value.fmt(f)
        }
    }

    /// Exponential backoff for spin loops: spin a few times, then yield
    /// to the OS scheduler, exactly like crossbeam's `Backoff`.
    pub struct Backoff {
        step: AtomicU32,
    }

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    impl Backoff {
        /// Fresh backoff state.
        pub const fn new() -> Self {
            Backoff {
                step: AtomicU32::new(0),
            }
        }

        /// Reset after useful work was found.
        pub fn reset(&self) {
            self.step.store(0, Ordering::Relaxed); // relaxed-ok: backoff heuristic; the step count guards nothing
        }

        /// Busy-wait briefly (for lock-free retry loops).
        pub fn spin(&self) {
            let step = self.step.load(Ordering::Relaxed).min(SPIN_LIMIT); // relaxed-ok: backoff heuristic; the step count guards nothing
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
            if step <= SPIN_LIMIT {
                self.step.store(step + 1, Ordering::Relaxed); // relaxed-ok: backoff heuristic; the step count guards nothing
            }
        }

        /// Back off, yielding the thread once spinning stops paying.
        pub fn snooze(&self) {
            let step = self.step.load(Ordering::Relaxed); // relaxed-ok: backoff heuristic; the step count guards nothing
            if step <= SPIN_LIMIT {
                for _ in 0..1u32 << step {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if step <= YIELD_LIMIT {
                self.step.store(step + 1, Ordering::Relaxed); // relaxed-ok: backoff heuristic; the step count guards nothing
            }
        }

        /// True once the caller should block instead of spinning.
        pub fn is_completed(&self) -> bool {
            self.step.load(Ordering::Relaxed) > YIELD_LIMIT // relaxed-ok: backoff heuristic; the step count guards nothing
        }
    }

    impl Default for Backoff {
        fn default() -> Self {
            Backoff::new()
        }
    }
}

pub mod queue {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use crate::utils::CachePadded;

    /// Bounded lock-free MPMC queue (Vyukov algorithm).
    ///
    /// Each slot carries a sequence number: `seq == index` means the slot
    /// is empty and ready for the producer whose ticket is `index`;
    /// `seq == index + 1` means it holds that ticket's element and is
    /// ready for the matching consumer. Producers and consumers claim
    /// tickets with a CAS on `head`/`tail` and then operate on their slot
    /// without further contention.
    pub struct ArrayQueue<T> {
        buf: Box<[Slot<T>]>,
        /// Next ticket to pop.
        head: CachePadded<AtomicUsize>,
        /// Next ticket to push.
        tail: CachePadded<AtomicUsize>,
        /// One lap advances a slot's sequence by `cap` (indices are not
        /// masked powers of two here; we store capacity explicitly).
        cap: usize,
    }

    struct Slot<T> {
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    // SAFETY: the sequence-number protocol hands each element from exactly
    // one producer to exactly one consumer; `T: Send` is all that transfer
    // needs, and shared `&ArrayQueue` access only touches atomics.
    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    // SAFETY: see above — concurrent shared access is mediated entirely by
    // the per-slot `seq` atomics.
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// Create a queue holding at most `cap` elements.
        ///
        /// # Panics
        /// Panics if `cap == 0`, mirroring crossbeam.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "ArrayQueue capacity must be non-zero");
            let buf = (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            ArrayQueue {
                buf,
                head: CachePadded::new(AtomicUsize::new(0)),
                tail: CachePadded::new(AtomicUsize::new(0)),
                cap,
            }
        }

        /// Capacity the queue was created with.
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Push an element; returns it back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut tail = self.tail.load(Ordering::Relaxed); // relaxed-ok: optimistic ticket read; the slot seq CAS publishes the claim
            loop {
                let slot = &self.buf[tail % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                // Vyukov protocol: seq == ticket → free for this producer;
                // seq behind the ticket → the previous lap's element has
                // not been consumed (queue full); seq ahead → another
                // producer claimed the ticket first.
                let diff = seq.wrapping_sub(tail) as isize;
                if diff == 0 {
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail.wrapping_add(1),
                        Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                        Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS above made us the unique
                            // owner of ticket `tail`, and seq == tail
                            // means the slot is empty; the release store
                            // below publishes it to the matching consumer.
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(t) => tail = t,
                    }
                } else if diff < 0 {
                    return Err(value);
                } else {
                    tail = self.tail.load(Ordering::Relaxed); // relaxed-ok: optimistic ticket re-read; the slot seq CAS publishes the claim
                }
            }
        }

        /// Pop the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            let mut head = self.head.load(Ordering::Relaxed); // relaxed-ok: optimistic ticket re-read; the slot seq CAS publishes the claim
            loop {
                let slot = &self.buf[head % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                // seq == ticket + 1 → published element for this consumer;
                // seq behind that → slot still empty (queue empty); ahead
                // → another consumer claimed the ticket first.
                let diff = seq.wrapping_sub(head.wrapping_add(1)) as isize;
                if diff == 0 {
                    match self.head.compare_exchange_weak(
                        head,
                        head.wrapping_add(1),
                        Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                        Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS made us the unique consumer
                            // of ticket `head`, and seq == head + 1 proves
                            // the producer's release store published the
                            // element.
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq
                                .store(head.wrapping_add(self.cap), Ordering::Release);
                            return Some(value);
                        }
                        Err(h) => head = h,
                    }
                } else if diff < 0 {
                    return None;
                } else {
                    head = self.head.load(Ordering::Relaxed); // relaxed-ok: optimistic ticket re-read; the slot seq CAS publishes the claim
                }
            }
        }

        /// Number of elements currently queued (approximate under
        /// concurrency).
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::Relaxed); // relaxed-ok: racy occupancy snapshot by documented contract
            let head = self.head.load(Ordering::Relaxed); // relaxed-ok: racy occupancy snapshot by documented contract
            tail.wrapping_sub(head).min(self.cap)
        }

        /// True if no elements are queued (approximate).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// True if the queue is at capacity (approximate).
        pub fn is_full(&self) -> bool {
            self.len() == self.cap
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            // Drain unconsumed elements so their destructors run. `&mut
            // self` means no concurrent access; wrapping walk handles
            // ticket counters that have wrapped past usize::MAX.
            let mut head = self.head.load(Ordering::Relaxed); // relaxed-ok: exclusive &mut self during drop
            let tail = self.tail.load(Ordering::Relaxed); // relaxed-ok: exclusive &mut self during drop
            while head != tail {
                let slot = &self.buf[head % self.cap];
                // SAFETY: sole owner during drop; tickets in [head, tail)
                // were published by producers and never consumed.
                unsafe { (*slot.value.get()).assume_init_drop() };
                head = head.wrapping_add(1);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        #[test]
        fn fifo_and_backpressure() {
            let q = ArrayQueue::new(2);
            q.push(1).unwrap();
            q.push(2).unwrap();
            assert_eq!(q.push(3), Err(3));
            assert_eq!(q.pop(), Some(1));
            q.push(3).unwrap();
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), Some(3));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn len_tracks() {
            let q = ArrayQueue::new(4);
            assert!(q.is_empty());
            q.push(9u8).unwrap();
            q.push(9u8).unwrap();
            assert_eq!(q.len(), 2);
            assert!(!q.is_full());
        }

        #[test]
        fn non_power_of_two_capacity() {
            let q = ArrayQueue::new(3);
            for i in 0..3 {
                q.push(i).unwrap();
            }
            assert!(q.is_full());
            for i in 0..3 {
                assert_eq!(q.pop(), Some(i));
            }
        }

        #[test]
        fn unconsumed_elements_dropped() {
            static DROPS: AtomicUsize = AtomicUsize::new(0);
            #[derive(Debug)]
            struct D;
            impl Drop for D {
                fn drop(&mut self) {
                    DROPS.fetch_add(1, Ordering::Relaxed);
                }
            }
            {
                let q = ArrayQueue::new(4);
                q.push(D).unwrap();
                q.push(D).unwrap();
                let _ = q.pop();
            }
            assert_eq!(DROPS.load(Ordering::Relaxed), 2);
        }

        #[test]
        fn mpmc_stress_no_loss_no_dup() {
            const PER_PRODUCER: u64 = 5_000;
            let q = Arc::new(ArrayQueue::new(16));
            let sum = Arc::new(AtomicUsize::new(0));
            let seen = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for p in 0..3u64 {
                let q = q.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut v = p * PER_PRODUCER + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(b) => {
                                    v = b;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                }));
            }
            for _ in 0..3 {
                let q = q.clone();
                let sum = sum.clone();
                let seen = seen.clone();
                handles.push(std::thread::spawn(move || loop {
                    if seen.load(Ordering::Relaxed) >= 3 * PER_PRODUCER as usize {
                        break;
                    }
                    if let Some(v) = q.pop() {
                        sum.fetch_add(v as usize, Ordering::Relaxed);
                        seen.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let n = 3 * PER_PRODUCER as usize;
            assert_eq!(seen.load(Ordering::Relaxed), n);
            assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
        }
    }
}
