//! Offline shim for `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature benchmark harness with criterion's API shape:
//! [`Criterion`], benchmark groups, `bench_function`, `iter` /
//! `iter_batched`, `criterion_group!` / `criterion_main!`. Measurement is
//! intentionally simple — a calibrated repetition loop around
//! `Instant::now()` printing mean ns/iter — because the workspace's
//! benchmarks report *virtual* (simulated) time; the harness only needs
//! repetition and readable output, not criterion's statistics engine.

use std::time::{Duration, Instant};

/// How throughput is reported for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched`; the shim treats all variants
/// alike.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, None, id, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let throughput = self.throughput;
        let id = format!("{}/{id}", self.group);
        run_bench(self.criterion, throughput, &id, f);
        self
    }

    /// End the group (reporting is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the measured iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
    }

    /// Measure `routine` over inputs built by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    throughput: Option<Throughput>,
    id: &str,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one sample costs ~1/20 of
    // the measurement budget, then take `sample_size` samples.
    let target = c.measurement_time.as_nanos().max(1) / 20;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed.as_nanos() >= target || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut total_ns = 0u128;
    let mut total_iters = 0u128;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_ns += b.elapsed.as_nanos();
        total_iters += iters as u128;
    }
    let per_iter = total_ns.checked_div(total_iters).unwrap_or(0);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0 => {
            format!(" ({:.1} Melem/s)", n as f64 * 1e3 / per_iter as f64)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0 => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 * 1e9 / (per_iter as f64 * 1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("{id}: {per_iter} ns/iter{rate}  [{total_iters} iters]");
}

/// Declare a benchmark group: plain `criterion_group!(name, fns..)` or
/// the `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10));
        let mut hits = 0u64;
        c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1));
            g.bench_function("count", |b| {
                b.iter(|| {
                    hits += 1;
                    hits
                })
            });
            g.bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
            });
            g.finish();
        }
        assert!(hits > 0);
    }

    criterion_group!(shim_group, noop_target);

    fn noop_target(c: &mut Criterion) {
        c.bench_function("target", |b| b.iter(|| 0u8));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        // Re-point the group at a tiny budget by calling the target
        // directly; the macro-generated fn uses defaults.
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5));
        noop_target(&mut c);
        let _ = shim_group; // named fn exists
    }
}
