#!/usr/bin/env bash
# CI gate: formatting, clippy (workspace lint table), labcheck static
# analysis + SPSC model check, then the test suite. Each step must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== labcheck (lints incl. lock discipline + interleaving model checks)"
cargo run -q -p labstor-labcheck -- --report lockcheck-report.json
test -s lockcheck-report.json

echo "== cargo test"
cargo test -q

echo "== labtelem tests + sample Chrome trace"
cargo test -q -p labstor-telemetry
cargo run -q --release --example telemetry
test -s results/telemetry_trace.json

echo "== bench_ipc smoke (SPSC fast-path regression gate)"
cargo run -q --release -p labstor-bench --bin bench_ipc -- --smoke
test -s BENCH_ipc.json

echo "== bench_datapath smoke (zero-copy + shard-scaling regression gate)"
cargo run -q --release -p labstor-bench --bin bench_datapath -- --smoke
test -s BENCH_datapath.json

echo "== bench_tenants smoke (noisy-neighbor tenant isolation gate)"
cargo run -q --release -p labstor-bench --bin bench_tenants -- --smoke
test -s BENCH_tenants.json

echo "== bench_reactor smoke (idle-fleet doorbell vs polling gate)"
cargo run -q --release -p labstor-bench --bin bench_reactor -- --smoke
test -s BENCH_reactor.json

echo "== bench_pushdown smoke (bytes-over-IPC + modeled-speedup + zero-copy gate)"
cargo run -q --release -p labstor-bench --bin bench_pushdown -- --smoke
test -s BENCH_pushdown.json

echo "== crash_fuzz smoke (crash-recovery prefix-consistency campaign)"
cargo run -q --release -p labstor-bench --bin crash_fuzz -- --smoke
test -s BENCH_crash_fuzz.json
test -s results/crash_fuzz_failures.json

echo "ci: all gates passed"
