#![warn(missing_docs)]

//! # labstor — facade crate for the LabStor-RS platform
//!
//! Rust reproduction of *"LabStor: A Modular and Extensible Platform for
//! Developing High-Performance, Customized I/O Stacks in Userspace"*
//! (SC 2022). This crate re-exports the public API of every workspace
//! member so examples and downstream users need a single dependency.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Example
//!
//! Mount a LabStack from a spec and do POSIX I/O through GenericFS:
//!
//! ```
//! use labstor::core::{Runtime, RuntimeConfig};
//! use labstor::mods::{DeviceRegistry, GenericFs};
//! use labstor::sim::DeviceKind;
//!
//! let devices = DeviceRegistry::new();
//! devices.add_preset("nvme0", DeviceKind::Nvme);
//! let rt = Runtime::start(RuntimeConfig::default());
//! labstor::mods::install_all(&rt.mm, &devices);
//!
//! rt.mount_stack_json(r#"{
//!     "mount": "fs::/b", "exec": "async", "authorized_uids": [0],
//!     "labmods": [
//!         { "uuid": "fs1",  "type": "labfs",
//!           "params": {"device": "nvme0"}, "outputs": ["drv1"] },
//!         { "uuid": "drv1", "type": "kernel_driver",
//!           "params": {"device": "nvme0"} }
//!     ]
//! }"#).unwrap();
//!
//! let client = rt.connect(labstor::ipc::Credentials::new(1, 0, 0), 1);
//! let mut fs = GenericFs::new(client);
//! let fd = fs.open("fs::/b/hello", true, false).unwrap();
//! fs.write(fd, b"hi").unwrap();
//! fs.seek(fd, 0).unwrap();
//! assert_eq!(fs.read(fd, 2).unwrap(), b"hi");
//! rt.shutdown();
//! ```

pub use labstor_core as core;
pub use labstor_ipc as ipc;
pub use labstor_kernel as kernel;
pub use labstor_mods as mods;
pub use labstor_pushdown as pushdown;
pub use labstor_qos as qos;
pub use labstor_sim as sim;
pub use labstor_telemetry as telemetry;
pub use labstor_workloads as workloads;
