//! End-to-end integration: client → IPC → Runtime workers → LabStack DAG
//! → simulated device, and back.

use labstor::core::{FsOp, KvsOp, Payload, RespPayload, Runtime, RuntimeConfig};
use labstor::ipc::Credentials;
use labstor::mods::{DeviceRegistry, GenericFs, GenericKvs};
use labstor::sim::DeviceKind;
use std::sync::Arc;

fn platform(workers: usize) -> (Arc<Runtime>, Arc<DeviceRegistry>) {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig {
        max_workers: workers,
        ..Default::default()
    });
    labstor::mods::install_all(&rt.mm, &devices);
    (rt, devices)
}

const FS_SPEC: &str = r#"{
    "mount": "fs::/b",
    "exec": "async",
    "authorized_uids": [0],
    "labmods": [
        { "uuid": "e2e_perm", "type": "permissions", "outputs": ["e2e_fs"] },
        { "uuid": "e2e_fs", "type": "labfs", "params": {"device": "nvme0", "workers": 4}, "outputs": ["e2e_lru"] },
        { "uuid": "e2e_lru", "type": "lru_cache", "params": {"capacity_bytes": 4194304}, "outputs": ["e2e_sched"] },
        { "uuid": "e2e_sched", "type": "noop_sched", "outputs": ["e2e_drv"] },
        { "uuid": "e2e_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
    ]
}"#;

#[test]
fn posix_lifecycle_through_full_stack() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(FS_SPEC).unwrap();
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));

    let fd = fs.open("fs::/b/a.bin", true, false).unwrap();
    let data: Vec<u8> = (0..100_000).map(|i| (i % 251) as u8).collect();
    assert_eq!(fs.write(fd, &data).unwrap(), data.len());
    fs.fsync(fd).unwrap();
    fs.seek(fd, 0).unwrap();
    assert_eq!(fs.read(fd, data.len()).unwrap(), data);
    // Partial read at an unaligned offset.
    fs.seek(fd, 12_345).unwrap();
    assert_eq!(fs.read(fd, 777).unwrap(), data[12_345..12_345 + 777]);
    fs.close(fd).unwrap();

    assert_eq!(fs.stat("fs::/b/a.bin").unwrap().size, data.len() as u64);
    fs.unlink("fs::/b/a.bin").unwrap();
    assert!(fs.stat("fs::/b/a.bin").is_err());
    rt.shutdown();
}

#[test]
fn permissions_enforced_through_stack() {
    let (rt, _d) = platform(1);
    rt.mount_stack_json(FS_SPEC).unwrap();
    let mut alice = GenericFs::new(rt.connect(Credentials::new(1, 100, 100), 1));
    let mut bob = GenericFs::new(rt.connect(Credentials::new(2, 200, 200), 1));

    let fd = alice.open("fs::/b/private", true, false).unwrap();
    alice.close(fd).unwrap();
    // Bob cannot open Alice's 0644-created file for create/write intent…
    // (the PermsMod records ownership at create; 0644 lets him read)
    assert!(bob.open("fs::/b/private", false, false).is_ok());
    // …but a 0600 file stays private. GenericFs.open(create) uses the
    // permissions mod default mode (0644); exercise through Stat denial
    // by making a directory read-protected instead.
    let mut root = GenericFs::new(rt.connect(Credentials::new(3, 0, 0), 1));
    assert!(
        root.open("fs::/b/private", false, false).is_ok(),
        "root always passes"
    );
    rt.shutdown();
}

#[test]
fn kvs_roundtrip_through_stack() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(
        r#"{
        "mount": "kv::/s",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "e2e_kv", "type": "labkvs", "params": {"device": "nvme0"}, "outputs": ["e2e_kvd"] },
            { "uuid": "e2e_kvd", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .unwrap();
    let mut kvs = GenericKvs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    for i in 0..50 {
        let val = vec![i as u8; 1000 + i * 13];
        kvs.put(&format!("kv::/s/key{i}"), val.clone()).unwrap();
        assert_eq!(kvs.get(&format!("kv::/s/key{i}")).unwrap(), val);
    }
    kvs.remove("kv::/s/key7").unwrap();
    assert!(kvs.get("kv::/s/key7").is_err());
    rt.shutdown();
}

#[test]
fn sync_and_async_stacks_agree_on_content() {
    let (rt, _d) = platform(2);
    let mut async_spec: labstor::core::StackSpec = serde_json::from_str(FS_SPEC).unwrap();
    async_spec.mount = "fs::/async".into();
    rt.mount_stack(&async_spec).unwrap();
    let mut sync_spec = async_spec.clone();
    sync_spec.mount = "fs::/sync".into();
    sync_spec.exec = "sync".into();
    rt.mount_stack(&sync_spec).unwrap();

    // Both mounts share LabMod instances (same UUIDs → same registry
    // entries, the paper's multi-view feature): a file written through the
    // async view is visible through the sync view.
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    let fd = fs.open("fs::/async/shared.txt", true, false).unwrap();
    fs.write(fd, b"multi-view").unwrap();
    fs.close(fd).unwrap();
    let fd = fs.open("fs::/sync/shared.txt", false, false).unwrap();
    assert_eq!(fs.read(fd, 10).unwrap(), b"multi-view");
    fs.close(fd).unwrap();
    rt.shutdown();
}

#[test]
fn rename_moves_files_across_the_namespace() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(FS_SPEC).unwrap();
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    let fd = fs.open("fs::/b/old_name", true, false).unwrap();
    fs.write(fd, b"contents survive renames").unwrap();
    fs.close(fd).unwrap();
    fs.rename("fs::/b/old_name", "fs::/b/new_name").unwrap();
    assert!(fs.stat("fs::/b/old_name").is_err());
    let fd = fs.open("fs::/b/new_name", false, false).unwrap();
    assert_eq!(fs.read(fd, 24).unwrap(), b"contents survive renames");
    fs.close(fd).unwrap();
    // POSIX semantics: rename over an existing target replaces it.
    let fd = fs.open("fs::/b/other", true, false).unwrap();
    fs.write(fd, b"doomed").unwrap();
    fs.close(fd).unwrap();
    fs.rename("fs::/b/new_name", "fs::/b/other").unwrap();
    let fd = fs.open("fs::/b/other", false, false).unwrap();
    assert_eq!(fs.read(fd, 24).unwrap(), b"contents survive renames");
    fs.close(fd).unwrap();
    // Missing source errors.
    assert!(fs.rename("fs::/b/ghost", "fs::/b/x").is_err());
    rt.shutdown();
}

#[test]
fn execve_fd_state_survives_address_space_swap() {
    // §III-F: "For execve, open fd state is copied to the LabStor Runtime
    // and is reloaded upon completion."
    let (rt, _d) = platform(2);
    rt.mount_stack_json(FS_SPEC).unwrap();
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    let fd = fs.open("fs::/b/exec.log", true, false).unwrap();
    fs.write(fd, b"before-exec|").unwrap();
    // "execve": serialize fd state, tear down the old connector, bring up
    // a new one in a fresh connection, restore.
    let blob = fs.save_fds();
    drop(fs);
    let new_client = rt.connect(Credentials::new(1, 0, 0), 1);
    let mut fs = GenericFs::restore_fds(new_client, &blob).unwrap();
    // The inherited fd keeps its position: the append lands after the
    // pre-exec bytes.
    fs.write(fd, b"after-exec").unwrap();
    fs.seek(fd, 0).unwrap();
    assert_eq!(fs.read(fd, 22).unwrap(), b"before-exec|after-exec");
    fs.close(fd).unwrap();
    rt.shutdown();
}

#[test]
fn unordered_queue_drained_by_multiple_workers() {
    // Unordered queues "can be processed by multiple workers" (§III-C1):
    // the MPMC queue pair stays loss- and duplication-free when two
    // consumers race on it.
    use labstor::ipc::{IpcManager, QueueFlags, QueuePair, QueueRole};
    let _: &labstor::ipc::IpcManager<u64>; // type anchor
    let qp: std::sync::Arc<QueuePair<u64>> = std::sync::Arc::new(QueuePair::new(
        1,
        4096,
        QueueFlags {
            ordered: false,
            role: QueueRole::Intermediate,
        },
    ));
    const N: u64 = 4000;
    for i in 0..N {
        qp.submit(i, 0, 1).unwrap();
    }
    let seen: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let qp = qp.clone();
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut ctx = labstor::sim::Ctx::new();
                    while let Some(env) = qp.consume(&mut ctx, 0) {
                        got.push(env.payload);
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let mut sorted = seen;
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..N).collect::<Vec<_>>(),
        "every element exactly once"
    );
    let _ = IpcManager::<u64>::new(1);
}

#[test]
fn many_clients_no_loss() {
    let (rt, _d) = platform(4);
    rt.mount_stack_json(
        r#"{
        "mount": "dummy::/",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [ { "uuid": "e2e_dummy", "type": "dummy", "params": {"work_ns": 500} } ]
    }"#,
    )
    .unwrap();
    let stack = rt.ns.get("dummy::/").unwrap();
    std::thread::scope(|s| {
        for c in 0..6 {
            let rt = rt.clone();
            let stack = stack.clone();
            s.spawn(move || {
                let mut client = rt.connect(Credentials::new(c + 10, 0, 0), 1);
                for _ in 0..500 {
                    let (resp, _) = client
                        .execute(&stack, Payload::Dummy { work_ns: 0 })
                        .unwrap();
                    assert!(matches!(resp, RespPayload::Ok));
                }
            });
        }
    });
    assert!(rt.total_processed() >= 3000);
    rt.shutdown();
}

#[test]
fn client_async_window_completes_out_of_order_submissions() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(
        r#"{
        "mount": "dummy::/",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [ { "uuid": "e2e_dummy2", "type": "dummy", "params": {"work_ns": 1000} } ]
    }"#,
    )
    .unwrap();
    let stack = rt.ns.get("dummy::/").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    for _ in 0..16 {
        client
            .submit(&stack, Payload::Dummy { work_ns: 0 })
            .unwrap();
    }
    let mut done = 0;
    while client.in_flight() > 0 {
        let (resp, latency) = client.reap_one().unwrap();
        assert!(resp.payload.is_ok());
        assert!(latency > 0);
        done += 1;
    }
    assert_eq!(done, 16);
    rt.shutdown();
}

#[test]
fn fs_and_kvs_payload_costs_show_in_virtual_time() {
    // A 1 MB write must cost more virtual time than a 4 KB write.
    let (rt, _d) = platform(1);
    rt.mount_stack_json(FS_SPEC).unwrap();
    let stack = rt.ns.get("fs::/b").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    let ino = match client
        .execute(
            &stack,
            Payload::Fs(FsOp::Create {
                path: "/c.bin".into(),
                mode: 0o644,
            }),
        )
        .unwrap()
        .0
    {
        RespPayload::Ino(i) => i,
        other => panic!("{other:?}"),
    };
    let (_, small) = client
        .execute(
            &stack,
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: vec![0u8; 4096],
            }),
        )
        .unwrap();
    let (_, large) = client
        .execute(
            &stack,
            Payload::Fs(FsOp::Write {
                ino,
                offset: 4096,
                data: vec![0u8; 1 << 20],
            }),
        )
        .unwrap();
    assert!(large > small * 10, "1MB {large} ns vs 4KB {small} ns");
    // And a KVS op flows too.
    rt.mount_stack_json(
        r#"{
        "mount": "kv::/t",
        "exec": "sync",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "e2e_kv2", "type": "labkvs", "params": {"device": "nvme0"}, "outputs": ["e2e_kvd2"] },
            { "uuid": "e2e_kvd2", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .unwrap();
    let kstack = rt.ns.get("kv::/t").unwrap();
    let (resp, _) = client
        .execute(
            &kstack,
            Payload::Kvs(KvsOp::Put {
                key: "k".into(),
                value: vec![1u8; 100],
            }),
        )
        .unwrap();
    assert!(resp.is_ok());
    rt.shutdown();
}
