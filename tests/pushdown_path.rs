//! End-to-end pushdown: verified bytecode programs running inside
//! kernel-side LabMods (LabFS filter/project over page slices, LabKVS
//! point-query with the in-stack level-walk resubmission hook and range
//! scans), with fuel accounted per tenant.

use labstor::core::{Runtime, RuntimeConfig};
use labstor::ipc::Credentials;
use labstor::mods::{DeviceRegistry, FilteredRead, GenericFs, GenericKvs, ScanReply};
use labstor::pushdown::Program;
use labstor::sim::DeviceKind;
use labstor::workloads::pushdown::{
    client_scan_count, client_scan_sum, make_records, KEY_OFF, RECORD_LEN,
};
use std::sync::Arc;

fn platform(workers: usize) -> (Arc<Runtime>, Arc<DeviceRegistry>) {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig {
        max_workers: workers,
        ..Default::default()
    });
    labstor::mods::install_all(&rt.mm, &devices);
    (rt, devices)
}

const FS_SPEC: &str = r#"{
    "mount": "fs::/pd",
    "exec": "async",
    "authorized_uids": [0],
    "labmods": [
        { "uuid": "pd_fs", "type": "labfs", "params": {"device": "nvme0", "workers": 2}, "outputs": ["pd_lru"] },
        { "uuid": "pd_lru", "type": "lru_cache", "params": {"capacity_bytes": 4194304}, "outputs": ["pd_drv"] },
        { "uuid": "pd_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
    ]
}"#;

const KV_SPEC: &str = r#"{
    "mount": "kv::/pd",
    "exec": "async",
    "authorized_uids": [0],
    "labmods": [
        { "uuid": "pdk_kv", "type": "labkvs", "params": {"device": "nvme0", "levels": 3}, "outputs": ["pdk_drv"] },
        { "uuid": "pdk_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
    ]
}"#;

fn write_records(fs: &mut GenericFs, path: &str, n: usize) -> (i32, Vec<u8>) {
    let data = make_records(n);
    let fd = fs.open(path, true, true).unwrap();
    assert_eq!(fs.write(fd, &data).unwrap(), data.len());
    fs.fsync(fd).unwrap();
    fs.seek(fd, 0).unwrap();
    (fd, data)
}

#[test]
fn labfs_count_and_sum_match_host_reference() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(FS_SPEC).unwrap();
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    let (fd, data) = write_records(&mut fs, "fs::/pd/recs.bin", 512);

    let count = Arc::new(
        Program::count_where_u32_eq(RECORD_LEN, KEY_OFF as u16, 7)
            .verify()
            .unwrap(),
    );
    match fs.read_filtered(fd, data.len(), count).unwrap() {
        FilteredRead::Agg(agg) => {
            assert_eq!(agg.records, 512);
            assert_eq!(agg.matches, client_scan_count(&data, 7));
            assert!(agg.fuel_used > 0);
        }
        other => panic!("expected aggregate, got {other:?}"),
    }

    // Sum the u64 column at offset 8 over matching records.
    let sum = Arc::new(
        Program::sum_u64_where_u32_eq(RECORD_LEN, 8, KEY_OFF as u16, 7)
            .verify()
            .unwrap(),
    );
    match fs.read_filtered(fd, data.len(), sum).unwrap() {
        FilteredRead::Agg(agg) => assert_eq!(agg.agg, client_scan_sum(&data, 7)),
        other => panic!("expected aggregate, got {other:?}"),
    }
    rt.shutdown();
}

#[test]
fn labfs_select_projects_matching_records() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(FS_SPEC).unwrap();
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    // 3 full key cycles of 100 → key 42 matches records 42, 142, 242.
    let (fd, data) = write_records(&mut fs, "fs::/pd/sel.bin", 300);

    let select = Arc::new(
        Program::select_where_u32_eq(RECORD_LEN, KEY_OFF as u16, 42)
            .verify()
            .unwrap(),
    );
    let expect: Vec<u8> = [42usize, 142, 242]
        .iter()
        .flat_map(|&i| data[i * RECORD_LEN..(i + 1) * RECORD_LEN].to_vec())
        .collect();
    let got = match fs.read_filtered(fd, data.len(), select.clone()).unwrap() {
        FilteredRead::Buf(h) => h.to_vec(),
        FilteredRead::Inline(d) => d,
        other => panic!("expected records, got {other:?}"),
    };
    assert_eq!(got, expect, "projected records are byte-identical");

    // A single 64-byte match rides inline in the envelope.
    fs.seek(fd, 0).unwrap();
    let got = match fs.read_filtered(fd, RECORD_LEN * 100, select).unwrap() {
        FilteredRead::Inline(d) => d,
        other => panic!("one 64 B match must ride inline, got {other:?}"),
    };
    assert_eq!(got, &data[42 * RECORD_LEN..43 * RECORD_LEN]);
    rt.shutdown();
}

#[test]
fn labfs_rejects_misaligned_requests_and_exhausted_fuel() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(FS_SPEC).unwrap();
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    let (fd, data) = write_records(&mut fs, "fs::/pd/bad.bin", 256);

    // Record length must pack the 4096-byte FS block exactly.
    let odd = Arc::new(Program::count_where_u32_eq(96, 0, 7).verify().unwrap());
    assert!(fs.read_filtered(fd, data.len(), odd).is_err());

    // Offset must be record-aligned.
    let prog = Arc::new(
        Program::count_where_u32_eq(RECORD_LEN, KEY_OFF as u16, 7)
            .verify()
            .unwrap(),
    );
    fs.seek(fd, 32).unwrap();
    assert!(fs.read_filtered(fd, RECORD_LEN * 4, prog).is_err());

    // A tiny fuel budget runs dry mid-scan: graceful error, no result.
    let starved = Arc::new(
        Program::count_where_u32_eq(RECORD_LEN, KEY_OFF as u16, 7)
            .with_fuel(8)
            .verify()
            .unwrap(),
    );
    fs.seek(fd, 0).unwrap();
    let err = fs.read_filtered(fd, data.len(), starved).unwrap_err();
    assert!(
        err.to_string().contains("fuel"),
        "expected a fuel error, got: {err}"
    );
    rt.shutdown();
}

#[test]
fn labkvs_get_where_walks_levels_in_stack() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(KV_SPEC).unwrap();
    let mut kvs = GenericKvs::new(rt.connect(Credentials::new(1, 0, 0), 1));

    let mut rec = vec![0u8; RECORD_LEN];
    rec[..4].copy_from_slice(&7u32.to_le_bytes());

    // Key at level 0: found on the first probe.
    kvs.put("kv::/pd/hot", rec.clone()).unwrap();
    let prog = Arc::new(
        Program::count_where_u32_eq(RECORD_LEN, 0, 7)
            .verify()
            .unwrap(),
    );
    assert_eq!(
        kvs.get_where("kv::/pd/hot", prog.clone()).unwrap(),
        Some(rec.clone())
    );

    // Key only at level 2: the resubmission hook walks the deeper table
    // levels inside the LabMod — one client round trip total. Seed the
    // level-2 entry through the raw request path (the level prefix is a
    // server-side naming scheme, not part of the client namespace).
    {
        let client = kvs.client_mut();
        let (stack, rel) = client.resolve("kv::/pd/cold").unwrap();
        let lkey = labstor::mods::labkvs::level_key(2, &rel);
        let (resp, _) = client
            .execute(
                &stack,
                labstor::core::Payload::Kvs(labstor::core::KvsOp::Put {
                    key: lkey,
                    value: rec.clone(),
                }),
            )
            .unwrap();
        assert!(matches!(resp, labstor::core::RespPayload::Len(_)));
    }
    assert!(kvs.get("kv::/pd/cold").is_err(), "level 0 misses");
    assert_eq!(
        kvs.get_where("kv::/pd/cold", prog.clone()).unwrap(),
        Some(rec.clone()),
        "get_where finds the level-2 entry without a client round trip per level"
    );

    // Predicate rejection: key exists, value doesn't match → None.
    let mut other = rec.clone();
    other[..4].copy_from_slice(&9u32.to_le_bytes());
    kvs.put("kv::/pd/miss", other).unwrap();
    assert_eq!(kvs.get_where("kv::/pd/miss", prog.clone()).unwrap(), None);

    // Absent everywhere → error.
    assert!(kvs.get_where("kv::/pd/ghost", prog).is_err());
    rt.shutdown();
}

#[test]
fn labkvs_scan_where_filters_by_prefix() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(KV_SPEC).unwrap();
    let mut kvs = GenericKvs::new(rt.connect(Credentials::new(1, 0, 0), 1));

    for i in 0..10u32 {
        let mut rec = vec![0u8; RECORD_LEN];
        rec[..4].copy_from_slice(&(i % 3).to_le_bytes());
        rec[8..16].copy_from_slice(&u64::from(i).to_le_bytes());
        kvs.put(&format!("kv::/pd/user{i:02}"), rec).unwrap();
    }

    // Select: ship back only the matching keys, sorted.
    let select = Arc::new(
        Program::select_where_u32_eq(RECORD_LEN, 0, 1)
            .verify()
            .unwrap(),
    );
    match kvs.scan_where("kv::/pd/user", select).unwrap() {
        ScanReply::Keys(keys) => {
            assert_eq!(keys, vec!["/user01", "/user04", "/user07"]);
        }
        other => panic!("expected keys, got {other:?}"),
    }

    // Sum: aggregate the u64 column over matching values (1 + 4 + 7).
    let sum = Arc::new(
        Program::sum_u64_where_u32_eq(RECORD_LEN, 8, 0, 1)
            .verify()
            .unwrap(),
    );
    match kvs.scan_where("kv::/pd/user", sum).unwrap() {
        ScanReply::Agg(agg) => {
            assert_eq!(agg.records, 10);
            assert_eq!(agg.matches, 3);
            assert_eq!(agg.agg, 12);
        }
        other => panic!("expected aggregate, got {other:?}"),
    }
    rt.shutdown();
}

#[test]
fn pushdown_fuel_is_accounted_per_tenant() {
    let (rt, _d) = platform(2);
    rt.mount_stack_json(FS_SPEC).unwrap();
    let creds = Credentials::new(1, 0, 0).with_tenant(42.into());
    let mut fs =
        GenericFs::new(rt.connect_with_policy(creds, 1, labstor::qos::TenantPolicy::default()));
    let (fd, data) = write_records(&mut fs, "fs::/pd/fuel.bin", 256);

    let prog = Arc::new(
        Program::count_where_u32_eq(RECORD_LEN, KEY_OFF as u16, 7)
            .verify()
            .unwrap(),
    );
    let fuel_used = match fs.read_filtered(fd, data.len(), prog).unwrap() {
        FilteredRead::Agg(agg) => agg.fuel_used,
        other => panic!("expected aggregate, got {other:?}"),
    };
    assert!(fuel_used > 0);

    // The runtime's tenant table saw exactly that fuel, attributed to
    // tenant 42 and exported for operators.
    let state = rt.tenants.resolve(42.into()).expect("tenant registered");
    assert_eq!(state.fuel_used(), fuel_used);
    let json = rt.tenants.export_json().to_string();
    assert!(json.contains("fuel_used"), "export carries fuel accounting");
    rt.shutdown();
}
