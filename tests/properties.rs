//! Property-based tests: core data structures and invariants checked
//! against reference models under randomized operation sequences.

use proptest::prelude::*;

use labstor::core::labmod::{LabMod, StackEnv};
use labstor::core::stack::{ExecMode, LabStack, Vertex};
use labstor::core::{FsOp, Payload, RespPayload};
use labstor::core::{ModuleManager, Request};
use labstor::ipc::Credentials;
use labstor::kernel::page_cache::LruMap;
use labstor::mods::compress_algo::{compress, decompress};
use labstor::mods::labfs::{BlockAllocator, LabFs, LogRecord};
use labstor::sim::{Ctx, DeviceKind, SimDevice};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Compression
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compression_roundtrips_any_data(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn compression_roundtrips_repetitive_data(
        unit in proptest::collection::vec(any::<u8>(), 1..32),
        reps in 1usize..2000,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = decompress(&data); // may Err, must not panic
    }
}

// ---------------------------------------------------------------------
// LRU map vs a reference model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LruOp {
    Insert(u8, u32),
    Get(u8),
    Remove(u8),
    PopLru,
}

fn lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(k, v)| LruOp::Insert(k, v)),
        any::<u8>().prop_map(LruOp::Get),
        any::<u8>().prop_map(LruOp::Remove),
        Just(LruOp::PopLru),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lru_matches_reference_model(ops in proptest::collection::vec(lru_op(), 0..400)) {
        let mut lru: LruMap<u8, u32> = LruMap::new();
        // Reference: map + recency list (front = most recent).
        let mut model: HashMap<u8, u32> = HashMap::new();
        let mut order: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                LruOp::Insert(k, v) => {
                    let got = lru.insert(k, v);
                    let expect = model.insert(k, v);
                    prop_assert_eq!(got, expect);
                    order.retain(|&x| x != k);
                    order.insert(0, k);
                }
                LruOp::Get(k) => {
                    let got = lru.get(&k).copied();
                    let expect = model.get(&k).copied();
                    prop_assert_eq!(got, expect);
                    if expect.is_some() {
                        order.retain(|&x| x != k);
                        order.insert(0, k);
                    }
                }
                LruOp::Remove(k) => {
                    let got = lru.remove(&k);
                    let expect = model.remove(&k);
                    prop_assert_eq!(got, expect);
                    order.retain(|&x| x != k);
                }
                LruOp::PopLru => {
                    let got = lru.pop_lru();
                    let expect = order.pop().map(|k| {
                        let v = model.remove(&k).expect("model in sync");
                        (k, v)
                    });
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(lru.len(), model.len());
        }
    }
}

// ---------------------------------------------------------------------
// Block allocator
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocator_never_double_allocates(
        workers in 1usize..8,
        total in 16u64..512,
        picks in proptest::collection::vec((0usize..8, any::<bool>()), 1..600),
    ) {
        let a = BlockAllocator::new(0, total, workers, 7);
        let mut seen = HashSet::new();
        let mut allocated = 0u64;
        for (w, decommission) in picks {
            if decommission {
                // Conservation must hold across worker decommissions.
                let before = a.free_blocks();
                a.decommission(w);
                prop_assert_eq!(a.free_blocks(), before);
                continue;
            }
            match a.alloc(w) {
                Some(b) => {
                    prop_assert!(b < total, "block {} out of range", b);
                    prop_assert!(seen.insert(b), "block {} allocated twice", b);
                    allocated += 1;
                }
                None => {
                    // Exhausted: every block must have been handed out.
                    prop_assert_eq!(allocated, total);
                    break;
                }
            }
        }
        prop_assert_eq!(a.free_blocks(), total - allocated);
    }
}

// ---------------------------------------------------------------------
// LabFS log records
// ---------------------------------------------------------------------

fn log_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        (
            "[a-z/]{1,24}",
            any::<u64>(),
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(path, ino, mode, uid, gid, is_dir)| LogRecord::Create {
                path,
                ino,
                mode,
                uid,
                gid,
                is_dir
            }),
        "[a-z/]{1,24}".prop_map(|path| LogRecord::Unlink { path }),
        (any::<u64>(), any::<u64>()).prop_map(|(ino, size)| LogRecord::SetSize { ino, size }),
        (any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(ino, page, block)| LogRecord::MapBlock { ino, page, block }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn log_records_roundtrip(records in proptest::collection::vec(log_record(), 0..50)) {
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        buf.extend_from_slice(&[0u8; 32]); // padding tail
        let mut pos = 0;
        let mut decoded = Vec::new();
        while let Some(r) = LogRecord::decode(&buf, &mut pos) {
            decoded.push(r);
        }
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn log_decode_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut pos = 0;
        while LogRecord::decode(&garbage, &mut pos).is_some() {
            if pos >= garbage.len() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// LabFS vs an in-memory file model (crash consistency included)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FsAction {
    Create(u8),
    Write {
        file: u8,
        offset: u16,
        len: u16,
        fill: u8,
    },
    Read {
        file: u8,
        offset: u16,
        len: u16,
    },
    Unlink(u8),
    Rename {
        from: u8,
        to: u8,
    },
    FsyncAndCrash,
}

fn fs_action() -> impl Strategy<Value = FsAction> {
    prop_oneof![
        3 => any::<u8>().prop_map(|f| FsAction::Create(f % 8)),
        4 => (any::<u8>(), any::<u16>(), 1u16..2048, any::<u8>()).prop_map(|(f, o, l, b)| {
            FsAction::Write { file: f % 8, offset: o % 8192, len: l, fill: b }
        }),
        3 => (any::<u8>(), any::<u16>(), 1u16..2048).prop_map(|(f, o, l)| {
            FsAction::Read { file: f % 8, offset: o % 8192, len: l }
        }),
        1 => any::<u8>().prop_map(|f| FsAction::Unlink(f % 8)),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(f, t)| FsAction::Rename {
            from: f % 8,
            to: t % 8
        }),
        1 => Just(FsAction::FsyncAndCrash),
    ]
}

/// Drive LabFS (sync stack over a driver) and a plain in-memory model with
/// the same operations; any divergence is a bug. `FsyncAndCrash` flushes
/// the log, wipes in-memory state and replays — afterwards the two must
/// still agree.
fn labfs_harness() -> (ModuleManager, LabStack, Arc<SimDevice>) {
    let devices = labstor::mods::DeviceRegistry::new();
    let dev = devices.add_preset("nvme0", DeviceKind::Nvme);
    let mm = ModuleManager::new();
    labstor::mods::install_all(&mm, &devices);
    mm.instantiate(
        "prop_fs",
        "labfs",
        &serde_json::json!({"device": "nvme0", "workers": 4}),
    )
    .unwrap();
    mm.instantiate(
        "prop_drv",
        "kernel_driver",
        &serde_json::json!({"device": "nvme0"}),
    )
    .unwrap();
    let stack = LabStack {
        id: 1,
        mount: "fs::/prop".into(),
        exec: ExecMode::Sync,
        vertices: vec![
            Vertex {
                uuid: "prop_fs".into(),
                outputs: vec![1],
            },
            Vertex {
                uuid: "prop_drv".into(),
                outputs: vec![],
            },
        ],
        authorized_uids: vec![0],
    };
    (mm, stack, dev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn labfs_matches_file_model(actions in proptest::collection::vec(fs_action(), 0..60)) {
        let (mm, stack, _dev) = labfs_harness();
        let env = StackEnv { stack: &stack, vertex: 0, registry: &mm, domain: 0 };
        let fs_mod = mm.get("prop_fs").unwrap();
        let mut ctx = Ctx::new();
        let exec = |payload: Payload, ctx: &mut Ctx| {
            fs_mod.process(ctx, Request::new(1, 1, payload, Credentials::ROOT), &env)
        };

        // Model: name → (ino, bytes). Unsynced model for live ops; synced
        // snapshot for post-crash comparison.
        let mut model: HashMap<String, (u64, Vec<u8>)> = HashMap::new();
        let mut synced: HashMap<String, (u64, Vec<u8>)> = HashMap::new();

        for action in actions {
            match action {
                FsAction::Create(f) => {
                    let path = format!("/f{f}");
                    let resp = exec(Payload::Fs(FsOp::Create { path: path.clone(), mode: 0o644 }), &mut ctx);
                    match resp {
                        RespPayload::Ino(ino) => {
                            prop_assert!(!model.contains_key(&path), "created over existing");
                            model.insert(path, (ino, Vec::new()));
                        }
                        RespPayload::Err(_) => prop_assert!(model.contains_key(&path)),
                        other => prop_assert!(false, "unexpected {:?}", other),
                    }
                }
                FsAction::Write { file, offset, len, fill } => {
                    let path = format!("/f{file}");
                    let Some(&(ino, _)) = model.get(&path) else { continue };
                    let data = vec![fill; len as usize];
                    let resp = exec(
                        Payload::Fs(FsOp::Write { ino, offset: offset as u64, data: data.clone() }),
                        &mut ctx,
                    );
                    prop_assert!(matches!(resp, RespPayload::Len(n) if n == len as usize));
                    let content = &mut model.get_mut(&path).unwrap().1;
                    let end = offset as usize + len as usize;
                    if content.len() < end {
                        content.resize(end, 0);
                    }
                    content[offset as usize..end].fill(fill);
                }
                FsAction::Read { file, offset, len } => {
                    let path = format!("/f{file}");
                    let Some((ino, content)) = model.get(&path) else { continue };
                    let resp = exec(
                        Payload::Fs(FsOp::Read { ino: *ino, offset: offset as u64, len: len as usize }),
                        &mut ctx,
                    );
                    let RespPayload::Data(got) = resp else {
                        prop_assert!(false, "read failed");
                        return Ok(());
                    };
                    let start = (offset as usize).min(content.len());
                    let end = (offset as usize + len as usize).min(content.len());
                    prop_assert_eq!(&got, &content[start..end]);
                }
                FsAction::Unlink(f) => {
                    let path = format!("/f{f}");
                    let resp = exec(Payload::Fs(FsOp::Unlink { path: path.clone() }), &mut ctx);
                    prop_assert_eq!(resp.is_ok(), model.remove(&path).is_some());
                }
                FsAction::Rename { from, to } => {
                    if from == to {
                        continue; // same-path rename: model ambiguity, skip
                    }
                    let (fp, tp) = (format!("/f{from}"), format!("/f{to}"));
                    let resp = exec(
                        Payload::Fs(FsOp::Rename { from: fp.clone(), to: tp.clone() }),
                        &mut ctx,
                    );
                    prop_assert_eq!(resp.is_ok(), model.contains_key(&fp));
                    if resp.is_ok() {
                        let entry = model.remove(&fp).expect("exists");
                        model.insert(tp, entry);
                    }
                }
                FsAction::FsyncAndCrash => {
                    // fsync everything that exists, then crash + replay.
                    for (ino, _) in model.values() {
                        let resp = exec(Payload::Fs(FsOp::Fsync { ino: *ino }), &mut ctx);
                        prop_assert!(resp.is_ok());
                    }
                    synced = model.clone();
                    let fs = fs_mod.as_any().downcast_ref::<LabFs>().unwrap();
                    fs.state_repair();
                    model = synced.clone();
                    // Every synced file must be back with its contents.
                    for (path, (ino, content)) in &model {
                        let resp = exec(Payload::Fs(FsOp::Stat { path: path.clone() }), &mut ctx);
                        prop_assert!(resp.is_ok(), "{} lost in replay", path);
                        if !content.is_empty() {
                            let resp = exec(
                                Payload::Fs(FsOp::Read { ino: *ino, offset: 0, len: content.len() }),
                                &mut ctx,
                            );
                            let RespPayload::Data(got) = resp else {
                                prop_assert!(false, "read after replay failed");
                                return Ok(());
                            };
                            prop_assert_eq!(&got, content);
                        }
                    }
                }
            }
        }
        let _ = synced;
    }
}
