//! Integration tests for the IPC fast path: SPSC lane selection at
//! connect time, the drain-and-handoff protocol under live orchestrator
//! reassignment, and batched-verb equivalence with the single verbs.

use proptest::prelude::*;

use labstor::core::orchestrator::{Assignment, QueueLoad};
use labstor::core::{OrchestratorPolicy, Payload, Runtime, RuntimeConfig};
use labstor::ipc::{Credentials, Envelope, LaneKind, QueueFlags, QueuePair, QueueRole};
use labstor::sim::Ctx;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const DUMMY_SPEC: &str = r#"{
    "mount": "dummy::/",
    "exec": "async",
    "authorized_uids": [0],
    "labmods": [ { "uuid": "fp_dummy", "type": "dummy", "params": {"work_ns": 1000} } ]
}"#;

fn platform(max_workers: usize) -> Arc<Runtime> {
    let devices = labstor::mods::DeviceRegistry::new();
    devices.add_preset("nvme0", labstor::sim::DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig {
        max_workers,
        ..Default::default()
    });
    labstor::mods::install_all(&rt.mm, &devices);
    rt.mount_stack_json(DUMMY_SPEC).unwrap();
    rt
}

// ---------------------------------------------------------------------
// Lane selection
// ---------------------------------------------------------------------

#[test]
fn runtime_connect_puts_clients_on_the_spsc_lane() {
    let rt = platform(2);
    let client = rt.connect(Credentials::new(1, 0, 0), 3);
    assert_eq!(client.conn.queues.len(), 3);
    for q in &client.conn.queues {
        assert_eq!(q.lane(), LaneKind::Spsc, "ordered primary queue");
        assert!(q.flags().ordered);
    }
    // Queues the Runtime allocates outside connect stay on the safe lane.
    let inter = rt.ipc.alloc_queue(QueueFlags {
        ordered: false,
        role: QueueRole::Intermediate,
    });
    assert_eq!(inter.lane(), LaneKind::Mpmc);
    rt.shutdown();
}

// ---------------------------------------------------------------------
// Drain-and-handoff under live reassignment
// ---------------------------------------------------------------------

/// A policy that moves every queue to a different worker each time it is
/// consulted: assignment `i -> (i + calls) % workers`. Each `rebalance()`
/// therefore exercises the full drain-and-handoff protocol.
struct ShiftPolicy {
    calls: AtomicUsize,
}

impl OrchestratorPolicy for ShiftPolicy {
    fn name(&self) -> &'static str {
        "shift-every-call"
    }

    fn rebalance(&self, queues: &[QueueLoad], max_workers: usize) -> Assignment {
        let n = max_workers.max(1);
        let off = self.calls.fetch_add(1, Ordering::Relaxed); // relaxed-ok: test-only round counter; atomicity alone suffices
        let mut out: Assignment = vec![Vec::new(); n];
        for (i, q) in queues.iter().enumerate() {
            out[(i + off) % n].push(q.qid);
        }
        out
    }
}

#[test]
fn handoff_under_live_reassignment_loses_nothing_and_keeps_fifo() {
    let rt = platform(4);
    rt.set_policy(Arc::new(ShiftPolicy {
        calls: AtomicUsize::new(0),
    }));
    let stack = rt.ns.get("dummy::/").unwrap();
    // One queue: every request flows through the same ordered SPSC pair,
    // so completions must come back in exact submission order even while
    // the queue is bounced between the four workers.
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flipper = {
        let rt = rt.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                rt.rebalance();
                std::thread::yield_now();
            }
        })
    };

    const BURSTS: usize = 100;
    const BURST: usize = 32;
    let mut submitted: Vec<u64> = Vec::with_capacity(BURSTS * BURST);
    let mut reap_order: Vec<u64> = Vec::with_capacity(BURSTS * BURST);
    for _ in 0..BURSTS {
        let payloads = vec![Payload::Dummy { work_ns: 100 }; BURST];
        let ids = client.submit_all(&stack, payloads).unwrap();
        assert_eq!(ids.len(), BURST);
        submitted.extend(&ids);
        while client.in_flight() > 0 {
            let (resp, _lat) = client.reap_one().unwrap();
            assert!(resp.payload.is_ok(), "request {} failed", resp.id);
            reap_order.push(resp.id);
        }
    }
    stop.store(true, Ordering::Release);
    flipper.join().unwrap();

    // No loss, no duplicates, FIFO: with a single ordered queue the reap
    // order must be exactly the submission order.
    assert_eq!(reap_order, submitted);
    rt.shutdown();
}

#[test]
fn doorbell_rings_during_handoff_strand_no_envelope() {
    // Every rebalance here moves the client's queue to a new worker via
    // the full drain-and-handoff protocol, while the client keeps
    // submitting and *parking* on its completion doorbell (post-PR 9
    // `wait` no longer spins). A submission doorbell that rings while
    // the old worker is draining must either be seen by that worker's
    // final scan or by the new worker's first scan after it registers on
    // the queue — if neither happens the envelope is stranded and the
    // roundtrip below times out.
    let rt = platform(4);
    rt.set_policy(Arc::new(ShiftPolicy {
        calls: AtomicUsize::new(0),
    }));
    let stack = rt.ns.get("dummy::/").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flipper = {
        let rt = rt.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                rt.rebalance();
            }
        })
    };

    const OPS: usize = 400;
    let started = std::time::Instant::now();
    for i in 0..OPS {
        let (resp, _lat) = client
            .execute(&stack, Payload::Dummy { work_ns: 100 })
            .unwrap_or_else(|e| panic!("op {i} stranded during handoff: {e:?}"));
        assert!(resp.is_ok(), "op {i} failed: {resp:?}");
    }
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Release);
    flipper.join().unwrap();

    // Liveness must come from doorbells, not from the workers' 25 ms
    // safety-net timeout: systematically lost wakeups would put every op
    // through at least one safety sleep (400 × 25 ms = 10 s).
    assert!(
        elapsed < std::time::Duration::from_secs(6),
        "roundtrips relied on the park safety net: {elapsed:?} for {OPS} ops"
    );
    rt.shutdown();
}

// ---------------------------------------------------------------------
// Batched verbs ≡ N single verbs
// ---------------------------------------------------------------------

/// Run `payloads` through a queue pair with the four *single* verbs and
/// return (consumed trace, reaped trace, worker clock, client clock).
type Trace = Vec<(u64, u64, u64)>;

fn run_singles(lane: LaneKind, payloads: &[u64], submit_vt: u64) -> (Trace, Trace, u64, u64) {
    let qp: QueuePair<u64> = QueuePair::with_lane(1, 64, QueueFlags::default(), lane);
    let mut wctx = Ctx::new();
    let mut cctx = Ctx::new();
    for &p in payloads {
        qp.submit(p, submit_vt, 1).unwrap();
    }
    let mut consumed = Trace::new();
    while let Some(env) = qp.consume(&mut wctx, 0) {
        consumed.push((env.payload, env.submit_vt, env.dequeue_vt));
        qp.complete(env.payload, env.dequeue_vt, 0).unwrap();
    }
    let mut reaped = Trace::new();
    while let Some(env) = qp.reap(&mut cctx, 1) {
        reaped.push((env.payload, env.submit_vt, env.dequeue_vt));
    }
    (consumed, reaped, wctx.now(), cctx.now())
}

/// Same workload through the *batched* verbs in bursts of `batch`.
fn run_batched(
    lane: LaneKind,
    payloads: &[u64],
    submit_vt: u64,
    batch: usize,
) -> (Trace, Trace, u64, u64) {
    let qp: QueuePair<u64> = QueuePair::with_lane(1, 64, QueueFlags::default(), lane);
    let mut wctx = Ctx::new();
    let mut cctx = Ctx::new();
    let mut pend: Vec<u64> = payloads.to_vec();
    while !pend.is_empty() {
        assert!(qp.submit_batch(&mut pend, submit_vt, 1) > 0, "depth fits");
    }
    let mut consumed = Trace::new();
    let mut inbox: Vec<Envelope<u64>> = Vec::new();
    let mut done: Vec<(u64, u64)> = Vec::new();
    loop {
        inbox.clear();
        if qp.consume_batch(&mut wctx, 0, &mut inbox, batch) == 0 {
            break;
        }
        for env in inbox.drain(..) {
            consumed.push((env.payload, env.submit_vt, env.dequeue_vt));
            done.push((env.payload, env.dequeue_vt));
        }
        while !done.is_empty() {
            assert!(qp.complete_batch(&mut done, 0) > 0, "depth fits");
        }
    }
    let mut reaped = Trace::new();
    let mut outbox: Vec<Envelope<u64>> = Vec::new();
    loop {
        outbox.clear();
        if qp.reap_batch(&mut cctx, 1, &mut outbox, batch) == 0 {
            break;
        }
        for env in outbox.drain(..) {
            reaped.push((env.payload, env.submit_vt, env.dequeue_vt));
        }
    }
    (consumed, reaped, wctx.now(), cctx.now())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batched verbs must be observationally identical to N single
    /// verbs on both lanes: same envelope order, same per-envelope
    /// virtual-time stamps, same final worker and client clocks.
    #[test]
    fn batch_verbs_equal_n_singles(
        payloads in proptest::collection::vec(any::<u64>(), 1..48),
        batch in 1usize..9,
        spsc in any::<bool>(),
        submit_vt in 0u64..10_000,
    ) {
        let lane = if spsc { LaneKind::Spsc } else { LaneKind::Mpmc };
        let (c1, r1, w1, k1) = run_singles(lane, &payloads, submit_vt);
        let (c2, r2, w2, k2) = run_batched(lane, &payloads, submit_vt, batch);
        prop_assert_eq!(c1.len(), payloads.len());
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(w1, w2);
        prop_assert_eq!(k1, k2);
    }
}
