//! Property-based tests for the kernel substrate: baseline filesystems
//! against a reference model, VFS fd semantics, and the PFS striping
//! layer.

use proptest::prelude::*;

use labstor::kernel::fs::{FsProfile, KernelFs};
use labstor::kernel::vfs::{Cred, OpenFlags, Vfs};
use labstor::kernel::BlockLayer;
use labstor::sim::{Ctx, DeviceKind, SimDevice};
use labstor::workloads::pfs::{Pfs, PfsConfig};
use labstor::workloads::targets::{FsTarget, KernelFsTarget};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum KfsAction {
    Create(u8),
    Write {
        file: u8,
        offset: u16,
        len: u16,
        fill: u8,
    },
    Read {
        file: u8,
        offset: u16,
        len: u16,
    },
    Truncate {
        file: u8,
        size: u16,
    },
    Fsync(u8),
    Unlink(u8),
    Rename {
        from: u8,
        to: u8,
    },
}

fn kfs_action() -> impl Strategy<Value = KfsAction> {
    prop_oneof![
        3 => any::<u8>().prop_map(|f| KfsAction::Create(f % 6)),
        4 => (any::<u8>(), any::<u16>(), 1u16..3000, any::<u8>()).prop_map(|(f, o, l, b)| {
            KfsAction::Write { file: f % 6, offset: o % 10_000, len: l, fill: b }
        }),
        3 => (any::<u8>(), any::<u16>(), 1u16..3000).prop_map(|(f, o, l)| {
            KfsAction::Read { file: f % 6, offset: o % 10_000, len: l }
        }),
        1 => (any::<u8>(), any::<u16>()).prop_map(|(f, s)| KfsAction::Truncate {
            file: f % 6,
            size: s % 10_000
        }),
        1 => any::<u8>().prop_map(|f| KfsAction::Fsync(f % 6)),
        1 => any::<u8>().prop_map(|f| KfsAction::Unlink(f % 6)),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(f, t)| KfsAction::Rename {
            from: f % 6,
            to: t % 6
        }),
    ]
}

fn check_kernel_fs(profile: FsProfile, actions: Vec<KfsAction>) -> Result<(), TestCaseError> {
    use labstor::kernel::vfs::Filesystem;
    let dev = SimDevice::preset(DeviceKind::Nvme);
    let fs = KernelFs::new(profile, BlockLayer::new(dev), 4 << 20);
    let mut ctx = Ctx::new();
    let mut model: HashMap<String, (u64, Vec<u8>)> = HashMap::new();
    for a in actions {
        match a {
            KfsAction::Create(f) => {
                let path = format!("/f{f}");
                let r = fs.create(&mut ctx, 0, &path, 0o644, Cred::ROOT);
                prop_assert_eq!(r.is_ok(), !model.contains_key(&path));
                if let Ok(ino) = r {
                    model.insert(path, (ino, Vec::new()));
                }
            }
            KfsAction::Write {
                file,
                offset,
                len,
                fill,
            } => {
                let path = format!("/f{file}");
                let Some(&(ino, _)) = model.get(&path) else {
                    continue;
                };
                let data = vec![fill; len as usize];
                let n = fs.write(&mut ctx, 0, ino, offset as u64, &data).unwrap();
                prop_assert_eq!(n, len as usize);
                let content = &mut model.get_mut(&path).unwrap().1;
                let end = offset as usize + len as usize;
                if content.len() < end {
                    content.resize(end, 0);
                }
                content[offset as usize..end].fill(fill);
            }
            KfsAction::Read { file, offset, len } => {
                let path = format!("/f{file}");
                let Some((ino, content)) = model.get(&path) else {
                    continue;
                };
                let mut buf = vec![0u8; len as usize];
                let n = fs.read(&mut ctx, 0, *ino, offset as u64, &mut buf).unwrap();
                let start = (offset as usize).min(content.len());
                let end = (offset as usize + len as usize).min(content.len());
                prop_assert_eq!(n, end - start);
                prop_assert_eq!(&buf[..n], &content[start..end]);
            }
            KfsAction::Truncate { file, size } => {
                let path = format!("/f{file}");
                let Some(&(ino, _)) = model.get(&path) else {
                    continue;
                };
                fs.truncate(&mut ctx, 0, ino, size as u64).unwrap();
                let content = &mut model.get_mut(&path).unwrap().1;
                content.resize(size as usize, 0);
            }
            KfsAction::Fsync(f) => {
                let path = format!("/f{f}");
                let Some(&(ino, _)) = model.get(&path) else {
                    continue;
                };
                fs.fsync(&mut ctx, 0, ino).unwrap();
            }
            KfsAction::Unlink(f) => {
                let path = format!("/f{f}");
                let r = fs.unlink(&mut ctx, 0, &path, Cred::ROOT);
                prop_assert_eq!(r.is_ok(), model.remove(&path).is_some());
            }
            KfsAction::Rename { from, to } => {
                let (fp, tp) = (format!("/f{from}"), format!("/f{to}"));
                let r = fs.rename(&mut ctx, 0, &fp, &tp, Cred::ROOT);
                prop_assert_eq!(r.is_ok(), model.contains_key(&fp));
                if r.is_ok() && from != to {
                    let entry = model.remove(&fp).expect("exists");
                    model.insert(tp, entry);
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ext4_like_matches_model(actions in proptest::collection::vec(kfs_action(), 0..50)) {
        check_kernel_fs(FsProfile::ext4_like(), actions)?;
    }

    #[test]
    fn xfs_like_matches_model(actions in proptest::collection::vec(kfs_action(), 0..50)) {
        check_kernel_fs(FsProfile::xfs_like(), actions)?;
    }

    #[test]
    fn f2fs_like_matches_model(actions in proptest::collection::vec(kfs_action(), 0..50)) {
        check_kernel_fs(FsProfile::f2fs_like(), actions)?;
    }

    #[test]
    fn pfs_roundtrips_arbitrary_extents(
        writes in proptest::collection::vec(
            (0u64..600_000, proptest::collection::vec(any::<u8>(), 1..30_000)),
            1..8
        )
    ) {
        // Overlapping striped writes must read back like a flat byte array.
        let vfs = Vfs::new();
        let mdev = SimDevice::preset(DeviceKind::Nvme);
        vfs.mount("/m", KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(mdev), 8 << 20));
        let pool: Vec<Box<dyn FsTarget + Send>> = (0..2)
            .map(|i| {
                Box::new(KernelFsTarget::new(vfs.clone(), "/m", "ext4", i + 1, i as usize))
                    as Box<dyn FsTarget + Send>
            })
            .collect();
        let data_servers = (0..3).map(|_| SimDevice::preset(DeviceKind::Nvme)).collect();
        let pfs = Pfs::new(pool, data_servers, PfsConfig::default());

        let mut ctx = Ctx::new();
        let mut flat: Vec<u8> = Vec::new();
        for (offset, data) in &writes {
            pfs.write(&mut ctx, "file", *offset, data).unwrap();
            let end = *offset as usize + data.len();
            if flat.len() < end {
                flat.resize(end, 0);
            }
            flat[*offset as usize..end].copy_from_slice(data);
        }
        let got = pfs.read(&mut ctx, "file", 0, flat.len()).unwrap();
        prop_assert_eq!(got, flat);
    }
}

#[test]
fn vfs_fd_positions_are_per_process() {
    let vfs = Vfs::new();
    let dev = SimDevice::preset(DeviceKind::Nvme);
    vfs.mount(
        "/m",
        KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(dev), 1 << 20),
    );
    let mut ctx = Ctx::new();
    let fd_a = vfs
        .open(
            &mut ctx,
            0,
            1,
            Cred::ROOT,
            "/m/x",
            OpenFlags {
                create: true,
                ..Default::default()
            },
            0o644,
        )
        .unwrap();
    vfs.write(&mut ctx, 0, 1, fd_a, b"0123456789").unwrap();
    // Process 2 opens the same file: independent cursor.
    let fd_b = vfs
        .open(&mut ctx, 0, 2, Cred::ROOT, "/m/x", OpenFlags::default(), 0)
        .unwrap();
    let mut buf = [0u8; 4];
    vfs.read(&mut ctx, 0, 2, fd_b, &mut buf).unwrap();
    assert_eq!(&buf, b"0123");
    // Process 1's cursor is still at EOF.
    let mut buf1 = [0u8; 4];
    assert_eq!(vfs.read(&mut ctx, 0, 1, fd_a, &mut buf1).unwrap(), 0);
}

#[test]
fn kernel_fs_virtual_contention_is_monotone_in_threads() {
    // More concurrent creators never *increase* per-create throughput
    // beyond the journal pipeline bound — the Fig. 7 plateau.
    let vfs = Vfs::new();
    let dev = SimDevice::preset(DeviceKind::Nvme);
    vfs.mount(
        "/m",
        KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(dev), 1 << 20),
    );
    let hold = FsProfile::ext4_like().meta_hold_ns;
    let mut targets: Vec<KernelFsTarget> = (0..4)
        .map(|t| KernelFsTarget::new(vfs.clone(), "/m", "ext4", t + 1, t as usize))
        .collect();
    const FILES: usize = 200;
    for i in 0..FILES {
        for (t, target) in targets.iter_mut().enumerate() {
            let fd = target.open(&format!("/t{t}_{i}"), true, false).unwrap();
            target.close(fd).unwrap();
        }
    }
    let span = targets.iter().map(|t| t.ctx.now()).max().unwrap();
    let total_ops = (FILES * targets.len()) as u64;
    // Throughput is capped by serialized journal holds.
    let min_span = total_ops * hold;
    assert!(
        span as f64 > min_span as f64 * 0.8,
        "span {span} cannot beat the journal pipeline bound {min_span}"
    );
}
