//! Integration tests for LabStack composition: specs, namespaces,
//! multi-view deployment, live DAG modification, and authorization.

use labstor::core::stack::Vertex;
use labstor::core::{BlockOp, Payload, RespPayload, Runtime, RuntimeConfig, StackSpec};
use labstor::ipc::Credentials;
use labstor::mods::DeviceRegistry;
use labstor::sim::{BlockDevice, DeviceKind};
use std::sync::Arc;

fn platform() -> (Arc<Runtime>, Arc<DeviceRegistry>) {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    devices.add_pmem("pmemdax0", labstor::sim::PmemDevice::preset());
    let rt = Runtime::start(RuntimeConfig {
        max_workers: 2,
        ..Default::default()
    });
    labstor::mods::install_all(&rt.mm, &devices);
    (rt, devices)
}

#[test]
fn compression_stack_shrinks_device_traffic() {
    let (rt, d) = platform();
    rt.mount_stack_json(
        r#"{
        "mount": "blk::/z", "exec": "sync", "authorized_uids": [0],
        "labmods": [
            { "uuid": "sc_zip", "type": "compress", "outputs": ["sc_drv"] },
            { "uuid": "sc_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .unwrap();
    let stack = rt.ns.get("blk::/z").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    let data: Vec<u8> = std::iter::repeat_n(b"AAAABBBB", 8192)
        .flatten()
        .copied()
        .collect();
    let before = d.block("nvme0").unwrap().stats().snapshot().bytes_written;
    let (resp, _) = client
        .execute(
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: data.clone(),
            }),
        )
        .unwrap();
    assert!(resp.is_ok());
    let written = d.block("nvme0").unwrap().stats().snapshot().bytes_written - before;
    assert!(
        written < data.len() as u64 / 4,
        "compression reduced traffic: {written}"
    );
    let (resp, _) = client
        .execute(
            &stack,
            Payload::Block(BlockOp::Read {
                lba: 0,
                len: data.len(),
            }),
        )
        .unwrap();
    assert!(matches!(resp, RespPayload::Data(d2) if d2 == data));
    rt.shutdown();
}

#[test]
fn dax_stack_serves_byte_addressable_pmem() {
    let (rt, _d) = platform();
    rt.mount_stack_json(
        r#"{
        "mount": "blk::/pm", "exec": "sync", "authorized_uids": [0],
        "labmods": [ { "uuid": "sc_dax", "type": "dax", "params": {"device": "pmemdax0"} } ]
    }"#,
    )
    .unwrap();
    let stack = rt.ns.get("blk::/pm").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    // Arbitrary length — no sector alignment needed on DAX.
    let (resp, _) = client
        .execute(
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 3,
                data: b"bytes".to_vec(),
            }),
        )
        .unwrap();
    assert!(resp.is_ok());
    let (resp, _) = client
        .execute(&stack, Payload::Block(BlockOp::Read { lba: 3, len: 5 }))
        .unwrap();
    assert!(matches!(resp, RespPayload::Data(d) if d == b"bytes"));
    rt.shutdown();
}

#[test]
fn modify_stack_inserts_and_removes_vertices_live() {
    let (rt, d) = platform();
    rt.mount_stack_json(
        r#"{
        "mount": "blk::/m", "exec": "sync", "authorized_uids": [500],
        "labmods": [
            { "uuid": "sc_sched", "type": "noop_sched", "outputs": ["sc_mdrv"] },
            { "uuid": "sc_mdrv", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .unwrap();
    // Insert a consistency stage live (authorized uid).
    rt.mm
        .instantiate(
            "sc_cons",
            "consistency",
            &serde_json::json!({"policy": "flush_each"}),
        )
        .unwrap();
    let old = rt.ns.get("blk::/m").unwrap();
    let mut vs = old.vertices.clone();
    vs.push(Vertex {
        uuid: "sc_cons".into(),
        outputs: vec![1],
    });
    let cons = vs.len() - 1;
    vs[0].outputs = vec![cons];
    rt.ns.modify("blk::/m", 500, vs).unwrap();

    let stack = rt.ns.get("blk::/m").unwrap();
    assert_eq!(stack.vertices.len(), 3);
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    let dev = d.block("nvme0").unwrap();
    let ops_before = dev.stats().snapshot().ops();
    let (resp, _) = client
        .execute(
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![1u8; 512],
            }),
        )
        .unwrap();
    assert!(resp.is_ok());
    // flush_each adds a barrier after the write (two queue entries).
    assert!(dev.stats().snapshot().ops() > ops_before);

    // Remove the stage again.
    let mut vs = stack.vertices.clone();
    vs[0].outputs = vec![1];
    vs.truncate(2);
    rt.ns.modify("blk::/m", 500, vs).unwrap();
    assert_eq!(rt.ns.get("blk::/m").unwrap().vertices.len(), 2);
    rt.shutdown();
}

#[test]
fn unauthorized_modification_rejected() {
    let (rt, _d) = platform();
    rt.mount_stack_json(
        r#"{
        "mount": "blk::/sec", "exec": "sync", "authorized_uids": [500],
        "labmods": [ { "uuid": "sc_sdrv", "type": "kernel_driver", "params": {"device": "nvme0"} } ]
    }"#,
    )
    .unwrap();
    let vs = rt.ns.get("blk::/sec").unwrap().vertices.clone();
    assert!(
        rt.ns.modify("blk::/sec", 777, vs.clone()).is_err(),
        "stranger rejected"
    );
    assert!(
        rt.ns.modify("blk::/sec", 500, vs.clone()).is_ok(),
        "authorized user allowed"
    );
    assert!(rt.ns.modify("blk::/sec", 0, vs).is_ok(), "root allowed");
    assert!(rt.ns.unmount("blk::/sec", 777).is_err());
    assert!(rt.ns.unmount("blk::/sec", 500).is_ok());
    rt.shutdown();
}

#[test]
fn bad_specs_rejected_at_mount() {
    let (rt, _d) = platform();
    // Unknown LabMod type.
    assert!(rt
        .mount_stack_json(
            r#"{"mount": "x::/a", "labmods": [ {"uuid": "g", "type": "ghost_mod"} ]}"#
        )
        .is_err());
    // Cyclic DAG.
    assert!(rt
        .mount_stack_json(
            r#"{"mount": "x::/b", "labmods": [
                {"uuid": "a", "type": "dummy", "outputs": ["b"]},
                {"uuid": "b", "type": "dummy", "outputs": ["a"]}
            ]}"#
        )
        .is_err());
    // Duplicate mount.
    rt.mount_stack_json(r#"{"mount": "x::/c", "labmods": [ {"uuid": "c1", "type": "dummy"} ]}"#)
        .unwrap();
    assert!(rt
        .mount_stack_json(r#"{"mount": "x::/c", "labmods": [ {"uuid": "c2", "type": "dummy"} ]}"#)
        .is_err());
    rt.shutdown();
}

#[test]
fn uuid_reuse_shares_instances_across_stacks() {
    let (rt, _d) = platform();
    let spec_a = r#"{"mount": "d::/a", "labmods": [ {"uuid": "shared_dummy", "type": "dummy"} ]}"#;
    let spec_b = r#"{"mount": "d::/b", "labmods": [ {"uuid": "shared_dummy", "type": "dummy"} ]}"#;
    rt.mount_stack_json(spec_a).unwrap();
    rt.mount_stack_json(spec_b).unwrap();
    let a = rt.ns.get("d::/a").unwrap();
    let b = rt.ns.get("d::/b").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    client.execute(&a, Payload::Dummy { work_ns: 10 }).unwrap();
    client.execute(&b, Payload::Dummy { work_ns: 10 }).unwrap();
    let m = rt.mm.get("shared_dummy").unwrap();
    let dm = m
        .as_any()
        .downcast_ref::<labstor::mods::dummy::DummyMod>()
        .unwrap();
    assert_eq!(dm.count(), 2, "one instance served both mounts");
    rt.shutdown();
}

#[test]
fn cache_policy_hot_swap_through_upgrade_protocol() {
    // The paper's running modify.mods example: swap the LRU cache for the
    // adaptive one while traffic flows; warm blocks migrate.
    let (rt, d) = platform();
    rt.mount_stack_json(
        r#"{
        "mount": "blk::/hs", "exec": "async", "authorized_uids": [0],
        "labmods": [
            { "uuid": "hs_cache", "type": "lru_cache", "params": {"capacity_bytes": 1048576}, "outputs": ["hs_drv"] },
            { "uuid": "hs_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .unwrap();
    let stack = rt.ns.get("blk::/hs").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    for lba in 0..8u64 {
        let (resp, _) = client
            .execute(
                &stack,
                Payload::Block(BlockOp::Write {
                    lba: lba * 8,
                    data: vec![lba as u8; 4096],
                }),
            )
            .unwrap();
        assert!(resp.is_ok());
    }
    rt.request_upgrade(labstor::core::UpgradeRequest {
        uuid: "hs_cache".into(),
        type_name: "arc_cache".into(),
        params: serde_json::json!({"capacity_bytes": 1048576}),
        kind: labstor::core::UpgradeKind::Centralized,
        code_bytes: 1 << 20,
        code_device: Some(d.block("nvme0").unwrap()),
    });
    // Keep the app running through the swap.
    for lba in 0..8u64 {
        let (resp, _) = client
            .execute(
                &stack,
                Payload::Block(BlockOp::Read {
                    lba: lba * 8,
                    len: 4096,
                }),
            )
            .unwrap();
        assert!(matches!(resp, RespPayload::Data(dta) if dta == vec![lba as u8; 4096]));
    }
    // Wait for the swap to land (pending_upgrades drops when the admin
    // *starts*; poll the registry for the installed instance instead).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let arc_mod = loop {
        let m = rt.mm.get("hs_cache").unwrap();
        if m.as_any().is::<labstor::mods::arc_cache::ArcCacheMod>() {
            break m;
        }
        assert!(std::time::Instant::now() < deadline, "swap never landed");
        std::thread::yield_now();
    };
    let arc = arc_mod
        .as_any()
        .downcast_ref::<labstor::mods::arc_cache::ArcCacheMod>()
        .expect("swapped to the adaptive policy");
    let dev_reads_before = d.block("nvme0").unwrap().stats().snapshot().reads;
    for lba in 0..8u64 {
        let (resp, _) = client
            .execute(
                &stack,
                Payload::Block(BlockOp::Read {
                    lba: lba * 8,
                    len: 4096,
                }),
            )
            .unwrap();
        assert!(resp.is_ok());
    }
    assert_eq!(
        d.block("nvme0").unwrap().stats().snapshot().reads,
        dev_reads_before,
        "warm blocks migrated: re-reads served from the swapped-in cache"
    );
    let (hits, _) = arc.hit_stats();
    assert!(hits >= 8);
    rt.shutdown();
}

#[test]
fn untrusted_mods_cannot_run_in_runtime_address_space() {
    // §III-D: untrusted LabMods may be used and debugged, but only in a
    // separate address space — i.e. sync (client-side) stacks.
    let (rt, _d) = platform();
    rt.mm.mount_repo("community", 1000).unwrap();
    rt.mm
        .register_factory_in_repo(
            "community",
            "sketchy_dummy",
            std::sync::Arc::new(|params| {
                // Reuse the dummy implementation under a new type name.
                let work = params.get("work_ns").and_then(|v| v.as_u64()).unwrap_or(0);
                std::sync::Arc::new(labstor::mods::dummy::DummyMod::new(1, work))
                    as std::sync::Arc<dyn labstor::core::LabMod>
            }),
        )
        .unwrap();
    // Async mount rejected…
    let err = rt
        .mount_stack_json(
            r#"{"mount": "u::/a", "exec": "async",
                "labmods": [ {"uuid": "sk1", "type": "sketchy_dummy"} ]}"#,
        )
        .unwrap_err();
    assert!(err.contains("untrusted"), "{err}");
    // …sync mount allowed and functional.
    rt.mount_stack_json(
        r#"{"mount": "u::/a", "exec": "sync",
            "labmods": [ {"uuid": "sk1", "type": "sketchy_dummy"} ]}"#,
    )
    .unwrap();
    let stack = rt.ns.get("u::/a").unwrap();
    let mut client = rt.connect(Credentials::new(1, 1000, 1000), 1);
    let (resp, _) = client
        .execute(&stack, Payload::Dummy { work_ns: 10 })
        .unwrap();
    assert!(resp.is_ok());
    rt.shutdown();
}

#[test]
fn spec_roundtrips_through_json() {
    let spec = StackSpec::chain(
        "fs::/rt",
        labstor::core::ExecMode::Async,
        &[
            ("p1", "permissions"),
            ("f1", "labfs"),
            ("d1", "kernel_driver"),
        ],
    );
    let json = spec.to_json();
    let again = StackSpec::parse(&json).unwrap();
    let stack = again.to_stack().unwrap();
    assert_eq!(stack.vertices.len(), 3);
    assert_eq!(stack.vertices[0].outputs, vec![1]);
    assert_eq!(stack.vertices[1].outputs, vec![2]);
}

#[test]
fn shared_memory_grants_isolate_processes() {
    // ShMemMod semantics at the IPC layer (§III-C1).
    let shm = labstor::ipc::ShmManager::new();
    let region = shm.create_region(4096, 100);
    shm.grant(region, 200).unwrap();
    let a = shm.attach(region, 100).unwrap();
    let b = shm.attach(region, 200).unwrap();
    assert!(shm.attach(region, 999).is_err(), "ungranted pid rejected");
    a.write(0, b"shared state").unwrap();
    let mut out = vec![0u8; 12];
    b.read(0, &mut out).unwrap();
    assert_eq!(&out, b"shared state");
}
