//! Copy-accounting proof for the PR 10 data-path changes, asserted via
//! the global copy counter (`labstor::ipc::payload_copies`):
//!
//! - small (≤ 64 B) `read(2)`/`get` results ride **inline** in the
//!   response envelope — zero counted copies end to end (satellite 1);
//! - large `read(2)`/`get` results delegate to the zero-copy buffer path
//!   plus exactly **one** client-side copy-out — the legacy server-side
//!   copy is gone (satellite 2);
//! - a pushdown filtered read ships an aggregate with **zero** counted
//!   copies: the interpreter consumed page slices in place.
//!
//! This file intentionally holds a single test: the counter is
//! process-global, and rust integration-test files are separate
//! processes, so the delta assertions cannot race with unrelated suites.

use labstor::core::{Runtime, RuntimeConfig};
use labstor::ipc::Credentials;
use labstor::mods::{DeviceRegistry, FilteredRead, GenericFs, GenericKvs};
use labstor::pushdown::Program;
use labstor::sim::DeviceKind;
use std::sync::Arc;

const FS_SPEC: &str = r#"{
    "mount": "fs::/zc",
    "exec": "async",
    "authorized_uids": [0],
    "labmods": [
        { "uuid": "zcp_fs", "type": "labfs", "params": {"device": "nvme0", "workers": 2}, "outputs": ["zcp_lru"] },
        { "uuid": "zcp_lru", "type": "lru_cache", "params": {"capacity_bytes": 4194304}, "outputs": ["zcp_drv"] },
        { "uuid": "zcp_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
    ]
}"#;

const KV_SPEC: &str = r#"{
    "mount": "kv::/zc",
    "exec": "async",
    "authorized_uids": [0],
    "labmods": [
        { "uuid": "zcp_kv", "type": "labkvs", "params": {"device": "nvme0"}, "outputs": ["zcp_kvd"] },
        { "uuid": "zcp_kvd", "type": "kernel_driver", "params": {"device": "nvme0"} }
    ]
}"#;

const PAGE: usize = 4096;

fn copies<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = labstor::ipc::payload_copies();
    let r = f();
    (r, labstor::ipc::payload_copies() - before)
}

#[test]
fn small_results_ride_inline_large_results_pay_one_copy_out() {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt: Arc<Runtime> = Runtime::start(RuntimeConfig {
        max_workers: 2,
        ..Default::default()
    });
    labstor::mods::install_all(&rt.mm, &devices);
    rt.mount_stack_json(FS_SPEC).unwrap();
    rt.mount_stack_json(KV_SPEC).unwrap();
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    let mut kvs = GenericKvs::new(rt.connect(Credentials::new(1, 0, 0), 1));

    // ---- filesystem ----------------------------------------------------
    let page: Vec<u8> = (0..PAGE).map(|i| (i % 251) as u8).collect();
    let fd = fs.open("fs::/zc/f.bin", true, false).unwrap();
    let mut buf = labstor::ipc::default_pool().alloc(PAGE).unwrap();
    assert!(buf.write_with(|b| b.copy_from_slice(&page)));
    assert_eq!(fs.write_buf(fd, buf).unwrap(), PAGE);
    fs.fsync(fd).unwrap();
    // Warm the cache so reads are served from pool handles.
    fs.seek(fd, 0).unwrap();
    let _ = fs.read_buf(fd, PAGE).unwrap();

    // Small read: the 64-byte result rides inline in the envelope —
    // zero counted payload copies end to end (threshold pinned in
    // `crates/ipc/src/inline.rs`).
    fs.seek(fd, 0).unwrap();
    let (small, delta) = copies(|| fs.read(fd, 64).unwrap());
    assert_eq!(small, page[..64]);
    assert_eq!(delta, 0, "≤64 B read must ship inline, uncopied");

    // Large read: delegates to the ReadBuf zero-copy path; the only
    // counted copy is the client-side materialization into the owned
    // Vec the read(2) signature requires.
    fs.seek(fd, 0).unwrap();
    let (large, delta) = copies(|| fs.read(fd, PAGE).unwrap());
    assert_eq!(large, page);
    assert_eq!(delta, 1, "large read pays exactly the one client copy-out");

    // ---- KVS -----------------------------------------------------------
    let small_val = vec![0x5au8; 48];
    let large_val: Vec<u8> = (0..PAGE).map(|i| (i % 241) as u8).collect();
    kvs.put("kv::/zc/small", small_val.clone()).unwrap();
    kvs.put("kv::/zc/large", large_val.clone()).unwrap();

    let (got, delta) = copies(|| kvs.get("kv::/zc/small").unwrap());
    assert_eq!(got, small_val);
    assert_eq!(delta, 0, "≤64 B get must ship inline, uncopied");

    let (got, delta) = copies(|| kvs.get("kv::/zc/large").unwrap());
    assert_eq!(got, large_val);
    assert_eq!(delta, 1, "large get pays exactly the one client copy-out");

    // ---- pushdown ------------------------------------------------------
    // A filtered read scans pages in place and ships a 32-byte inline
    // aggregate: zero counted copies on the whole hit path.
    let mut rec_page = vec![0u8; PAGE];
    for (i, rec) in rec_page.chunks_exact_mut(64).enumerate() {
        rec[..4].copy_from_slice(&((i as u32) % 4).to_le_bytes());
    }
    let fd2 = fs.open("fs::/zc/recs.bin", true, false).unwrap();
    let mut buf2 = labstor::ipc::default_pool().alloc(PAGE).unwrap();
    assert!(buf2.write_with(|b| b.copy_from_slice(&rec_page)));
    assert_eq!(fs.write_buf(fd2, buf2).unwrap(), PAGE);
    fs.fsync(fd2).unwrap();
    fs.seek(fd2, 0).unwrap();
    let _ = fs.read_buf(fd2, PAGE).unwrap(); // warm
    fs.seek(fd2, 0).unwrap();
    let prog = Arc::new(Program::count_where_u32_eq(64, 0, 3).verify().unwrap());
    let (reply, delta) = copies(|| fs.read_filtered(fd2, PAGE, prog).unwrap());
    match reply {
        FilteredRead::Agg(agg) => {
            assert_eq!(agg.records, 64);
            assert_eq!(agg.matches, 16);
        }
        other => panic!("expected aggregate, got {other:?}"),
    }
    assert_eq!(delta, 0, "pushdown hit path must not copy payload bytes");

    rt.shutdown();
}
