//! Tier-1 crash-recovery fuzzing (DESIGN.md §12): seeded fio/filebench
//! mixes are killed at randomized virtual times, a fresh module instance
//! is booted over the same media, `state_repair` replays the journal, and
//! the recovered state must equal the model state after some prefix of
//! the acknowledged-operation history — never shorter than the last
//! acknowledged durability point (fsync / log flush).
//!
//! The heavyweight campaign (hundreds of crash points) runs in the
//! `crash_fuzz` bench binary during `./ci.sh --smoke`; this file is the
//! always-on gate plus the randomized repair-idempotence properties.

use proptest::prelude::*;

use labstor::workloads::crash::{
    check_repair_idempotence, run_campaign, run_trial, CampaignConfig, CrashWorkload,
};

#[test]
fn crash_campaign_gate_is_prefix_consistent() {
    let report = run_campaign(&CampaignConfig {
        trials_per_workload: 4,
        flows: 4,
        base_seed: 0xC0FFEE,
    });
    assert_eq!(report.trials.len(), 16);
    assert_eq!(report.crashes(), 16, "every trial must arm a crash point");
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "prefix-consistency violations:\n{violations:#?}"
    );
    // The campaign is only exercising recovery if some crash points leave
    // torn or uncommitted work for repair to discard.
    assert!(
        report.torn_tails() > 0,
        "no crash point left anything to discard: {}",
        report.summary()
    );
}

#[test]
fn repair_reports_are_recorded_by_the_trials() {
    // A mid-run crash on the fsync-heavy varmail mix replays at least one
    // committed transaction and records the result in the typed report.
    let mut replayed_something = false;
    for seed in 0..4u64 {
        let t = run_trial(CrashWorkload::Varmail, 900 + seed, 4, 800);
        assert!(t.violation.is_none(), "{:?}", t.violation);
        replayed_something |= t.repair.txns_replayed > 0;
    }
    assert!(replayed_something, "no trial replayed any transaction");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replay idempotence: after any crash, repairing twice leaves the
    /// same state as repairing once, and a crash *during* repair followed
    /// by a clean repair converges to that state too — for both LabFS
    /// mixes and the LabKVS mix.
    #[test]
    fn repair_is_idempotent(
        seed in 0u64..10_000,
        permille in 100u32..900,
        which in 0usize..4,
    ) {
        let workload = CrashWorkload::all()[which];
        if let Err(e) = check_repair_idempotence(workload, seed, 3, permille) {
            return Err(TestCaseError::fail(format!(
                "{}: {e}", workload.label()
            )));
        }
    }

    /// Prefix consistency holds at arbitrary seeds and crash fractions,
    /// not just the campaign's fixed schedule.
    #[test]
    fn random_crash_points_recover_consistently(
        seed in 0u64..10_000,
        permille in 50u32..950,
        which in 0usize..4,
    ) {
        let workload = CrashWorkload::all()[which];
        let t = run_trial(workload, seed, 3, permille);
        prop_assert!(
            t.violation.is_none(),
            "{}: {:?}", workload.label(), t.violation
        );
        if let Some(k) = t.matched_prefix {
            prop_assert!(k >= t.durable_floor);
        }
    }
}
