//! End-to-end zero-copy proof: a LabFS `WriteBuf` → `ReadBuf` round trip
//! through the full platform (client → IPC → worker → perms → LabFS →
//! LRU cache) is byte-identical AND performs zero intermediate payload
//! copies on the read-hit path, asserted via the global copy-counter
//! hook (`labstor::ipc::payload_copies`).
//!
//! This file intentionally holds a single test: the counter is
//! process-global, and rust integration-test files are separate
//! processes, so the delta assertion cannot race with unrelated suites.

use labstor::core::{Runtime, RuntimeConfig};
use labstor::ipc::Credentials;
use labstor::mods::{DeviceRegistry, GenericFs};
use labstor::sim::DeviceKind;
use std::sync::Arc;

const SPEC: &str = r#"{
    "mount": "fs::/zc",
    "exec": "async",
    "authorized_uids": [0],
    "labmods": [
        { "uuid": "zc_perm", "type": "permissions", "outputs": ["zc_fs"] },
        { "uuid": "zc_fs", "type": "labfs", "params": {"device": "nvme0", "workers": 2}, "outputs": ["zc_lru"] },
        { "uuid": "zc_lru", "type": "lru_cache", "params": {"capacity_bytes": 4194304}, "outputs": ["zc_drv"] },
        { "uuid": "zc_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
    ]
}"#;

const PAGE: usize = 4096;

#[test]
fn labfs_readbuf_round_trip_is_byte_identical_and_copy_free() {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt: Arc<Runtime> = Runtime::start(RuntimeConfig {
        max_workers: 2,
        ..Default::default()
    });
    labstor::mods::install_all(&rt.mm, &devices);
    rt.mount_stack_json(SPEC).unwrap();
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));

    // Fill a full page in place inside a pool buffer — the client-side
    // half of the zero-copy contract — and write it through the stack.
    let fd = fs.open("fs::/zc/hot.bin", true, false).unwrap();
    let mut buf = labstor::ipc::default_pool()
        .alloc(PAGE)
        .expect("pool has a 4 KiB slot");
    assert!(buf.write_with(|b| {
        for (i, x) in b.iter_mut().enumerate() {
            *x = (i % 251) as u8;
        }
    }));
    let expect: Vec<u8> = (0..PAGE).map(|i| (i % 251) as u8).collect();
    assert_eq!(fs.write_buf(fd, buf).unwrap(), PAGE);
    fs.fsync(fd).unwrap();

    // The write-through cache now holds the block as a pool handle. A
    // page-aligned single-page read must come back as refcount bumps end
    // to end: LRU hit → DataBuf slice → LabFS slice → client handle.
    fs.seek(fd, 0).unwrap();
    let before = labstor::ipc::payload_copies();
    let h = fs.read_buf(fd, PAGE).unwrap();
    let after = labstor::ipc::payload_copies();
    assert_eq!(h.len(), PAGE);
    assert_eq!(h.as_slice(), &expect[..], "round trip is byte-identical");
    assert_eq!(
        after - before,
        0,
        "read-hit path must not copy payload bytes"
    );

    // Re-reading through a second handle shares the same cached page.
    fs.seek(fd, 0).unwrap();
    let before = labstor::ipc::payload_copies();
    let h2 = fs.read_buf(fd, PAGE).unwrap();
    assert_eq!(labstor::ipc::payload_copies() - before, 0);
    assert_eq!(h2.as_slice(), h.as_slice());

    // The legacy copying API still agrees on content (and is *allowed*
    // to copy — no delta assertion here).
    fs.seek(fd, 0).unwrap();
    assert_eq!(fs.read(fd, PAGE).unwrap(), expect);

    fs.close(fd).unwrap();
    rt.shutdown();
}
