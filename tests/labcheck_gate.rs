//! Tier-1 wiring for labcheck (ROADMAP: `cargo test -q` at the root is
//! the tier-1 gate, and root-package tests are what it runs): the
//! static-analysis pass must be clean on the whole tree and the SPSC ring
//! must survive exhaustive interleaving exploration.
//!
//! The full fixture suite lives in `crates/labcheck/tests/`; this file is
//! only the gate.

use labstor_labcheck::{
    explore, explore_rc, gate_mc_bug_configs, gate_mc_configs, gate_rc_bug_configs,
    gate_rc_configs, lint_workspace, render_text, workspace_root, Config,
};

#[test]
fn workspace_passes_labcheck_lints() {
    let root = workspace_root();
    let diags = lint_workspace(&Config::labstor(), &root).expect("scan workspace");
    assert!(
        diags.is_empty(),
        "labcheck violations (fix or annotate — see DESIGN.md §static analysis):\n{}",
        render_text(&diags)
    );
}

#[test]
fn spsc_ring_passes_interleaving_model_check() {
    for cfg in gate_mc_configs() {
        explore(&cfg).unwrap_or_else(|f| panic!("mc failed on {cfg:?}:\n{f}"));
    }
    for cfg in gate_mc_bug_configs() {
        assert!(
            explore(&cfg).is_err(),
            "planted bug {:?} went undetected",
            cfg.variant
        );
    }
}

#[test]
fn buffer_pool_release_protocol_passes_model_check() {
    for cfg in gate_rc_configs() {
        explore_rc(&cfg).unwrap_or_else(|f| panic!("rc mc failed on {cfg:?}:\n{f}"));
    }
    for cfg in gate_rc_bug_configs() {
        assert!(
            explore_rc(&cfg).is_err(),
            "planted refcount bug {:?} went undetected",
            cfg.variant
        );
    }
}
