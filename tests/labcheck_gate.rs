//! Tier-1 wiring for labcheck (ROADMAP: `cargo test -q` at the root is
//! the tier-1 gate, and root-package tests are what it runs): the
//! static-analysis pass must be clean on the whole tree and the SPSC ring
//! must survive exhaustive interleaving exploration.
//!
//! The full fixture suite lives in `crates/labcheck/tests/`; this file is
//! only the gate.

use labstor_labcheck::{
    explore, explore_doorbell, explore_fuel, explore_journal, explore_lock, explore_rc,
    gate_doorbell_bug_configs, gate_doorbell_configs, gate_fuel_bug_configs, gate_fuel_configs,
    gate_journal_bug_configs, gate_journal_configs, gate_lock_bug_configs, gate_lock_configs,
    gate_mc_bug_configs, gate_mc_configs, gate_rc_bug_configs, gate_rc_configs, lint_workspace,
    render_text, workspace_root, Config, DoorbellViolation, FuelVariant, FuelViolation,
    JournalVariant, JournalViolation, LockViolation,
};

#[test]
fn workspace_passes_labcheck_lints() {
    let root = workspace_root();
    let diags = lint_workspace(&Config::labstor(), &root).expect("scan workspace");
    assert!(
        diags.is_empty(),
        "labcheck violations (fix or annotate — see DESIGN.md §static analysis):\n{}",
        render_text(&diags)
    );
}

#[test]
fn spsc_ring_passes_interleaving_model_check() {
    for cfg in gate_mc_configs() {
        explore(&cfg).unwrap_or_else(|f| panic!("mc failed on {cfg:?}:\n{f}"));
    }
    for cfg in gate_mc_bug_configs() {
        assert!(
            explore(&cfg).is_err(),
            "planted bug {:?} went undetected",
            cfg.variant
        );
    }
}

#[test]
fn lock_discipline_passes_model_check() {
    // The fixed PR 5 protocols survive every interleaving…
    for cfg in gate_lock_configs() {
        explore_lock(&cfg).unwrap_or_else(|f| panic!("lock mc failed on {cfg:?}:\n{f}"));
    }
    // …and each planted bug is caught, with the violation kind the bug
    // plants (a checker that flags the wrong thing is also broken).
    for cfg in gate_lock_bug_configs() {
        let failure = explore_lock(&cfg).expect_err(&format!(
            "planted lock bug {:?} went undetected",
            cfg.variant
        ));
        let ok = matches!(
            failure.violation,
            LockViolation::SelfDeadlock { .. }
                | LockViolation::OrderViolation { .. }
                | LockViolation::Deadlock
        );
        assert!(ok, "{:?} produced {:?}", cfg.variant, failure.violation);
    }
}

#[test]
fn journal_commit_protocol_passes_model_check() {
    // The shipped two-write commit protocol survives every crash point
    // and device-tear choice…
    for cfg in gate_journal_configs() {
        explore_journal(&cfg).unwrap_or_else(|f| panic!("journal mc failed on {cfg:?}:\n{f}"));
    }
    // …and each planted bug is caught with the violation kind it plants.
    for cfg in gate_journal_bug_configs() {
        let failure = explore_journal(&cfg).expect_err(&format!(
            "planted journal bug {:?} went undetected",
            cfg.variant
        ));
        let ok = match cfg.variant {
            JournalVariant::LostCommit => {
                matches!(failure.violation, JournalViolation::AckedLost { .. })
            }
            JournalVariant::ReplayTwice => {
                matches!(failure.violation, JournalViolation::AppliedTwice { .. })
            }
            JournalVariant::TornCrcAccept => {
                matches!(
                    failure.violation,
                    JournalViolation::CorruptionAccepted { .. }
                )
            }
            JournalVariant::Correct => false,
        };
        assert!(ok, "{:?} produced {:?}", cfg.variant, failure.violation);
    }
}

#[test]
fn doorbell_protocol_passes_model_check() {
    // The reactor's capture/recheck park protocol is lost-wakeup free on
    // every interleaving, including one-ring-per-burst batch shapes…
    for cfg in gate_doorbell_configs() {
        explore_doorbell(&cfg).unwrap_or_else(|f| panic!("doorbell mc failed on {cfg:?}:\n{f}"));
    }
    // …and both planted bugs — parking without the under-mutex epoch
    // re-check, and ringing only on a stale empty→non-empty belief —
    // are caught as the lost wakeup they cause.
    for cfg in gate_doorbell_bug_configs() {
        let failure = explore_doorbell(&cfg).expect_err(&format!(
            "planted doorbell bug {:?} went undetected",
            cfg.variant
        ));
        assert!(
            matches!(failure.violation, DoorbellViolation::LostWakeup { queued } if queued > 0),
            "{:?} produced {:?}",
            cfg.variant,
            failure.violation
        );
    }
}

#[test]
fn pushdown_fuel_model_passes_model_check() {
    // The verify-then-execute pipeline terminates within budget with
    // every retired instruction charged, over every branch outcome —
    // and the backward-jump program in the correct set is rejected by
    // the model verifier before execution (that *is* the safe outcome).
    for cfg in gate_fuel_configs() {
        let report =
            explore_fuel(&cfg).unwrap_or_else(|f| panic!("fuel mc failed on {cfg:?}:\n{f}"));
        if !report.rejected {
            assert!(report.terminals >= 1, "no terminal state for {cfg:?}");
        }
    }
    // Each planted bug is caught with the violation kind it plants: an
    // accepted backward jump breaks forward progress (Runaway), an
    // uncharged taken branch desynchronizes the meter (FuelLeak).
    for cfg in gate_fuel_bug_configs() {
        let failure = explore_fuel(&cfg).expect_err(&format!(
            "planted fuel bug {:?} went undetected",
            cfg.variant
        ));
        let ok = match cfg.variant {
            FuelVariant::BackwardJumpAccepted => {
                matches!(failure.violation, FuelViolation::Runaway { .. })
            }
            FuelVariant::FuelNotChargedOnTakenBranch => {
                matches!(
                    failure.violation,
                    FuelViolation::FuelLeak { steps, charged } if charged < steps
                )
            }
            FuelVariant::Correct => false,
        };
        assert!(ok, "{:?} produced {:?}", cfg.variant, failure.violation);
    }
}

#[test]
fn buffer_pool_release_protocol_passes_model_check() {
    for cfg in gate_rc_configs() {
        explore_rc(&cfg).unwrap_or_else(|f| panic!("rc mc failed on {cfg:?}:\n{f}"));
    }
    for cfg in gate_rc_bug_configs() {
        assert!(
            explore_rc(&cfg).is_err(),
            "planted refcount bug {:?} went undetected",
            cfg.variant
        );
    }
}
