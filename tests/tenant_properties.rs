//! Randomized property tests for the labtenant QoS subsystem
//! (DESIGN.md §11): the token bucket conserves tokens in virtual time —
//! no admission window ever exceeds `burst + rate × elapsed`, and the
//! long-run admit rate of a saturating tenant converges to `rate` — and
//! the weighted-fair pass keeps two equal-weight tenants' service within
//! a bounded ratio under saturation.

use proptest::prelude::*;

use labstor::core::orchestrator::{apply_weighted_fair, QueueLoad};
use labstor::qos::TokenBucket;

fn q(qid: u64, demand_milli: u64) -> QueueLoad {
    QueueLoad {
        qid,
        est_load_ns: 0,
        max_item_ns: 0,
        demand_milli,
        p50_item_ns: 0,
        p99_item_ns: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Token conservation: over any script of (advance, cost) steps the
    /// total admitted bytes never exceed the initial burst plus what the
    /// refill rate could have produced in the elapsed virtual time, and
    /// the visible tank never exceeds `burst`.
    #[test]
    fn token_bucket_conserves_tokens(
        rate in 1u64..2_000_000,
        burst in 1u64..4_000_000,
        script in proptest::collection::vec(
            (0u64..200_000_000, 1u64..1_000_000), 1..200),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut now = 0u64;
        let mut admitted: u128 = 0;
        for (dt, cost) in script {
            now += dt;
            if bucket.try_admit(now, cost).is_ok() {
                // Oversize costs are clamped to `burst` at charge time so
                // a single huge request drains at most one full bucket.
                admitted += cost.min(burst) as u128;
            }
            prop_assert!(bucket.tokens() <= burst,
                "tank {} exceeds burst {}", bucket.tokens(), burst);
        }
        // burst (initial tank) + rate tokens/sec × elapsed virtual ns.
        let earned = burst as u128
            + (rate as u128 * now as u128) / 1_000_000_000u128;
        prop_assert!(admitted <= earned,
            "admitted {admitted} > earned {earned} (rate {rate}, burst {burst}, elapsed {now})");
    }

    /// Saturation convergence: a tenant hammering a fixed-cost request
    /// every tick is admitted at `rate` in the long run — within the
    /// one-burst slack the bucket legitimately grants up front.
    ///
    /// Parameters are coupled so the run has no cap-truncation loss:
    /// `cost` at least one tick's earning (the bucket never refills past
    /// `burst` mid-run after the first admit) and `burst >= 2 * cost`.
    /// Under those conditions admitted tokens account exactly for
    /// `burst + earned` minus at most two stranded requests.
    #[test]
    fn saturated_admit_rate_converges_to_rate(
        rate in 1_000u64..1_000_000,
        burst_mult in 2u64..8,
        raw_cost in 1u64..50_000,
        ticks in 200u64..2_000,
    ) {
        let tick_ns = 1_000_000u64; // 1 ms of virtual time per attempt
        // Earned per tick = rate * tick_ns / 1e9 = rate / 1000 tokens.
        let cost = raw_cost.max(rate.div_ceil(1_000));
        let burst = cost * burst_mult;
        let mut bucket = TokenBucket::new(rate, burst);
        let mut admitted_bytes: u128 = 0;
        for i in 1..=ticks {
            if bucket.try_admit(i * tick_ns, cost).is_ok() {
                admitted_bytes += cost as u128;
            }
        }
        let elapsed_ns = (ticks * tick_ns) as u128;
        let expected = (rate as u128 * elapsed_ns) / 1_000_000_000u128;
        // Upper bound: earned tokens plus the initial burst.
        prop_assert!(admitted_bytes <= expected + burst as u128,
            "admitted {admitted_bytes} > expected {expected} + burst {burst}");
        // Lower bound: everything earned is admitted except the one-time
        // first-tick cap loss (< cost, the tank starts full) and the
        // final stranded partial accumulation (< cost).
        let floor = (expected + burst as u128).saturating_sub(cost as u128 * 2);
        prop_assert!(admitted_bytes >= floor,
            "admitted {admitted_bytes} below floor {floor} \
             (expected {expected}, burst {burst}, cost {cost})");
    }

    /// Fairness: two equal-weight tenants with identical saturating
    /// demand receive service within a bounded ratio, and a head start
    /// granted to one of them is never amplified — the gap between the
    /// tenants shrinks toward the per-round oscillation band.
    #[test]
    fn equal_weight_tenants_converge_under_saturation(
        head_start in 0u64..10_000_000,
        demand in 1_000u64..100_000,
        rounds in 100usize..300,
    ) {
        let capacity = 1_000_000u64; // 1 ms of service per round
        // service[qid] in virtual ns; tenant 1 starts ahead.
        let mut service = [head_start, 0u64];
        for _ in 0..rounds {
            let mut loads = vec![q(1, demand), q(2, demand)];
            // Equal weights: normalized service == raw service (milli).
            let norm: std::collections::HashMap<u64, u64> =
                [(1, service[0] * 1000), (2, service[1] * 1000)]
                    .into_iter()
                    .collect();
            apply_weighted_fair(&mut loads, &norm);
            // Serve each tenant proportionally to its scaled demand out
            // of the per-round capacity (saturation: total demand always
            // exceeds capacity).
            let total: u64 = loads.iter().map(|l| l.demand_milli).sum();
            prop_assert!(total > 0);
            for l in &loads {
                let share = (capacity as u128 * l.demand_milli as u128
                    / total as u128) as u64;
                service[(l.qid - 1) as usize] += share;
            }
            // The pass never amplifies imbalance: the trailing tenant
            // gets at least half the round, so the gap is bounded by the
            // initial head start plus one round of overshoot.
            let gap = service[0].abs_diff(service[1]);
            prop_assert!(gap <= head_start + capacity,
                "gap {gap} exceeds head start {head_start} + capacity");
        }
        // The head start has been worked off: the remaining gap is within
        // the convergence band, and cumulative service is near-equal
        // (the head start is small next to rounds * capacity).
        let gap = service[0].abs_diff(service[1]);
        prop_assert!(gap <= (head_start / 2).max(2 * capacity),
            "gap {gap} did not converge (head start {head_start})");
        let a = service[0].max(1);
        let b = service[1].max(1);
        let ratio = a.max(b) as f64 / a.min(b) as f64;
        prop_assert!(ratio < 2.0,
            "cumulative service diverged: a={a} b={b} ratio={ratio:.2}");
    }
}
