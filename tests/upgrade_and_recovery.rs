//! Integration tests for live upgrades, crash recovery, and failure
//! injection across the whole platform.

use labstor::core::{
    FsOp, Payload, RespPayload, Runtime, RuntimeConfig, UpgradeKind, UpgradeRequest,
};
use labstor::ipc::Credentials;
use labstor::mods::dummy::DummyMod;
use labstor::mods::DeviceRegistry;
use labstor::sim::DeviceKind;
use std::sync::Arc;

fn platform() -> (Arc<Runtime>, Arc<DeviceRegistry>) {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig {
        max_workers: 2,
        ..Default::default()
    });
    labstor::mods::install_all(&rt.mm, &devices);
    (rt, devices)
}

const DUMMY_SPEC: &str = r#"{
    "mount": "dummy::/",
    "exec": "async",
    "authorized_uids": [0],
    "labmods": [ { "uuid": "ur_dummy", "type": "dummy", "params": {"work_ns": 2000} } ]
}"#;

#[test]
fn centralized_upgrade_under_traffic_preserves_state() {
    let (rt, d) = platform();
    rt.mount_stack_json(DUMMY_SPEC).unwrap();
    let stack = rt.ns.get("dummy::/").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);

    const N: usize = 5000;
    for i in 0..N {
        if i == N / 2 {
            rt.request_upgrade(UpgradeRequest {
                uuid: "ur_dummy".into(),
                type_name: "dummy".into(),
                params: serde_json::json!({"work_ns": 2000}),
                kind: UpgradeKind::Centralized,
                code_bytes: 1 << 20,
                code_device: Some(d.block("nvme0").unwrap()),
            });
        }
        let (resp, _) = client
            .execute(&stack, Payload::Dummy { work_ns: 0 })
            .unwrap();
        assert!(
            matches!(resp, RespPayload::Ok),
            "message {i} failed after upgrade"
        );
    }
    let m = rt.mm.get("ur_dummy").unwrap();
    let dm = m.as_any().downcast_ref::<DummyMod>().unwrap();
    assert!(dm.version >= 2, "new code installed");
    assert_eq!(
        dm.count(),
        N as u64,
        "counter transferred and kept counting"
    );
    rt.shutdown();
}

#[test]
fn decentralized_upgrade_also_works() {
    let (rt, d) = platform();
    rt.mount_stack_json(DUMMY_SPEC).unwrap();
    let stack = rt.ns.get("dummy::/").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    for _ in 0..100 {
        client
            .execute(&stack, Payload::Dummy { work_ns: 0 })
            .unwrap();
    }
    rt.request_upgrade(UpgradeRequest {
        uuid: "ur_dummy".into(),
        type_name: "dummy".into(),
        params: serde_json::Value::Null,
        kind: UpgradeKind::Decentralized,
        code_bytes: 1 << 20,
        code_device: Some(d.block("nvme0").unwrap()),
    });
    for _ in 0..200 {
        let (resp, _) = client
            .execute(&stack, Payload::Dummy { work_ns: 0 })
            .unwrap();
        assert!(resp.is_ok());
    }
    let m = rt.mm.get("ur_dummy").unwrap();
    assert_eq!(m.as_any().downcast_ref::<DummyMod>().unwrap().count(), 300);
    rt.shutdown();
}

#[test]
fn upgrade_pause_costs_virtual_time() {
    let (rt, d) = platform();
    rt.mount_stack_json(DUMMY_SPEC).unwrap();
    let stack = rt.ns.get("dummy::/").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    for _ in 0..50 {
        client
            .execute(&stack, Payload::Dummy { work_ns: 0 })
            .unwrap();
    }
    let before = client.ctx.now();
    rt.request_upgrade(UpgradeRequest {
        uuid: "ur_dummy".into(),
        type_name: "dummy".into(),
        params: serde_json::Value::Null,
        kind: UpgradeKind::Centralized,
        code_bytes: 1 << 20,
        code_device: Some(d.block("nvme0").unwrap()),
    });
    // Let the admin thread pick the upgrade up (real-time wait), then the
    // resumed timeline must reflect the pause.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while rt.mm.pending_upgrades() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "admin never processed the upgrade"
        );
        std::thread::yield_now();
    }
    for _ in 0..50 {
        client
            .execute(&stack, Payload::Dummy { work_ns: 0 })
            .unwrap();
    }
    // The ~4 ms upgrade (1 MB code read + link) lands on the timeline.
    assert!(
        client.ctx.now() - before > 3_000_000,
        "upgrade pause missing from virtual time: {} ns",
        client.ctx.now() - before
    );
    rt.shutdown();
}

#[test]
fn crash_then_restart_recovers_labfs_state() {
    let (rt, _d) = platform();
    rt.mount_stack_json(
        r#"{
        "mount": "fs::/r",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "ur_fs", "type": "labfs", "params": {"device": "nvme0"}, "outputs": ["ur_drv"] },
            { "uuid": "ur_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .unwrap();
    let stack = rt.ns.get("fs::/r").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);

    let ino = match client
        .execute(
            &stack,
            Payload::Fs(FsOp::Create {
                path: "/kept".into(),
                mode: 0o644,
            }),
        )
        .unwrap()
        .0
    {
        RespPayload::Ino(i) => i,
        other => panic!("{other:?}"),
    };
    let data = vec![0xABu8; 12_288];
    client
        .execute(
            &stack,
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: data.clone(),
            }),
        )
        .unwrap();
    client
        .execute(&stack, Payload::Fs(FsOp::Fsync { ino }))
        .unwrap();

    rt.crash();
    assert!(!rt.ipc.is_online());
    rt.restart();

    let (resp, _) = client
        .execute_with_retry(
            &stack,
            Payload::Fs(FsOp::Read {
                ino,
                offset: 0,
                len: data.len(),
            }),
        )
        .unwrap();
    match resp {
        RespPayload::Data(d) => assert_eq!(d, data, "log replay restored the mapping"),
        other => panic!("read failed after recovery: {other:?}"),
    }
    rt.shutdown();
}

#[test]
fn client_sees_runtime_down_without_restart() {
    let (rt, _d) = platform();
    rt.mount_stack_json(DUMMY_SPEC).unwrap();
    let stack = rt.ns.get("dummy::/").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    client.offline_timeout = std::time::Duration::from_millis(100);
    client
        .execute(&stack, Payload::Dummy { work_ns: 0 })
        .unwrap();
    rt.crash();
    let err = client
        .execute(&stack, Payload::Dummy { work_ns: 0 })
        .unwrap_err();
    assert_eq!(err, labstor::core::client::ClientError::RuntimeDown);
    rt.shutdown();
}

#[test]
fn runtime_down_detection_parks_and_honors_the_timeout() {
    // Post-PR 9 the crashed-runtime wait parks on the liveness doorbell
    // instead of spin-checking. A crash with no restart must still
    // resolve: the client waits out `offline_timeout` (no bell ever
    // rings "online") and returns the typed error — neither hanging on
    // the park nor returning before the restart window has passed.
    let (rt, _d) = platform();
    rt.mount_stack_json(DUMMY_SPEC).unwrap();
    let stack = rt.ns.get("dummy::/").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    client.offline_timeout = std::time::Duration::from_millis(200);
    rt.crash();
    let started = std::time::Instant::now();
    let err = client
        .execute(&stack, Payload::Dummy { work_ns: 0 })
        .unwrap_err();
    let elapsed = started.elapsed();
    assert_eq!(err, labstor::core::client::ClientError::RuntimeDown);
    assert!(
        elapsed >= std::time::Duration::from_millis(150),
        "gave up before the restart window: {elapsed:?}"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "parked wait failed to time out: {elapsed:?}"
    );
    rt.shutdown();
}

#[test]
fn device_faults_surface_as_errors_not_hangs() {
    let (rt, d) = platform();
    rt.mount_stack_json(
        r#"{
        "mount": "blk::/f",
        "exec": "sync",
        "authorized_uids": [0],
        "labmods": [ { "uuid": "ur_fdrv", "type": "kernel_driver", "params": {"device": "nvme0"} } ]
    }"#,
    )
    .unwrap();
    let stack = rt.ns.get("blk::/f").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    d.block("nvme0").unwrap().faults().set_period(2); // every 2nd op fails
    let mut failures = 0;
    for i in 0..10 {
        let (resp, _) = client
            .execute(
                &stack,
                Payload::Block(labstor::core::BlockOp::Write {
                    lba: i * 8,
                    data: vec![0u8; 512],
                }),
            )
            .unwrap();
        if !resp.is_ok() {
            failures += 1;
        }
    }
    assert_eq!(
        failures, 5,
        "deterministic injection: every 2nd command fails"
    );
    rt.shutdown();
}

#[test]
fn crash_between_handoff_and_policy_apply_loses_no_envelopes() {
    use labstor::ipc::UpgradeFlag;
    use labstor::qos::TenantPolicy;
    use std::collections::HashSet;

    // Manual admin: the test plays the admin thread so it can kill the
    // Runtime at an exact point of the admin sequence — after the
    // rebalance drain-and-handoff paused the tenant's queues, before
    // `apply_pending` applies the staged policy update.
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig {
        max_workers: 2,
        auto_admin: false,
        ..Default::default()
    });
    labstor::mods::install_all(&rt.mm, &devices);
    rt.mount_stack_json(DUMMY_SPEC).unwrap();
    let stack = rt.ns.get("dummy::/").unwrap();

    let creds = Credentials::new(9, 9, 9);
    let mut client = rt.connect_with_policy(creds, 2, TenantPolicy::default().with_weight(1));
    let m = rt.mm.get("ur_dummy").unwrap();
    let dm = m.as_any().downcast_ref::<DummyMod>().unwrap();

    // Warm-up traffic establishes an applied queue shape.
    const WARM: u64 = 50;
    for _ in 0..WARM {
        client
            .execute(&stack, Payload::Dummy { work_ns: 1000 })
            .unwrap();
    }
    rt.admin_tick();
    assert_eq!(dm.count(), WARM);

    // The admin pauses the queues for a drain-and-handoff
    // (UPDATE_PENDING) and the workers ack, parking the rings…
    let queues = rt.ipc.primary_queues();
    for q in &queues {
        q.mark_update_pending();
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while queues
        .iter()
        .any(|q| q.upgrade_flag() == UpgradeFlag::UpdatePending)
    {
        assert!(
            std::time::Instant::now() < deadline,
            "workers never acked the pause"
        );
        std::thread::yield_now();
    }

    // …so a burst submitted now is genuinely in flight: admitted into
    // the rings, consumed by nobody.
    const BURST: usize = 48;
    let ids = client
        .submit_all(&stack, vec![Payload::Dummy { work_ns: 1000 }; BURST])
        .unwrap();
    assert_eq!(client.in_flight(), BURST);
    assert_eq!(dm.count(), WARM, "paused queues must not be consumed");

    // A tenant policy update is staged but not yet applied…
    rt.tenants
        .request_policy_update(creds.tenant, TenantPolicy::default().with_weight(4));
    assert_eq!(rt.tenants.policy(creds.tenant).unwrap().weight, 1);

    // …and the Runtime dies right there, between the handoff and
    // `apply_pending`. The pause flags and the staged update both
    // survive the crash (they live outside the workers).
    rt.crash();
    assert!(!rt.ipc.is_online());

    // Restart; the next admin tick applies the staged policy.
    rt.restart();
    rt.admin_tick();
    assert_eq!(rt.tenants.policy(creds.tenant).unwrap().weight, 4);

    // Every parked envelope completes exactly once: none lost to the
    // stale pause flags, none duplicated by a second consumer.
    let mut seen = HashSet::new();
    for _ in 0..BURST {
        let (resp, _) = client.reap_one().expect("in-flight envelope lost");
        assert!(resp.payload.is_ok());
        assert!(seen.insert(resp.id), "envelope {} completed twice", resp.id);
    }
    let submitted: HashSet<u64> = ids.into_iter().collect();
    assert_eq!(
        seen, submitted,
        "completions must match the submitted burst"
    );
    assert_eq!(
        dm.count(),
        WARM + BURST as u64,
        "each envelope processed exactly once across the crash"
    );
    rt.shutdown();
}

#[test]
fn repair_all_is_idempotent() {
    let (rt, _d) = platform();
    rt.mount_stack_json(DUMMY_SPEC).unwrap();
    rt.mm.repair_all();
    rt.mm.repair_all();
    let stack = rt.ns.get("dummy::/").unwrap();
    let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
    let (resp, _) = client
        .execute(&stack, Payload::Dummy { work_ns: 0 })
        .unwrap();
    assert!(resp.is_ok());
    rt.shutdown();
}
