//! Journaled commit protocol shared by the LabFS metadata log and the
//! LabKVS op log.
//!
//! A flush becomes a *transaction* framed for crash consistency:
//!
//! ```text
//! block k   : [ header | payload ... ]   <- one device write
//! block k+1…: [ payload continued    ]
//! block k+n : [ commit record        ]   <- a second, separate write
//! ```
//!
//! The header carries a monotonically increasing sequence number, the
//! payload length and CRC32, and its own CRC32; the commit record repeats
//! the sequence number and payload CRC under its own CRC32 and is written
//! *after* the payload write returns — the classic write-ahead ordering
//! (jbd2-style): a transaction is durable iff its commit record is intact.
//!
//! Recovery ([`replay_scan`]) discovers the log extent from media alone:
//! it walks the region from the start, validating header → payload CRC →
//! commit per transaction and *stops at the first invalid frame*. Whatever
//! follows — a torn payload, a payload without its commit record, stale
//! bytes from a previous era — is discarded, making replay
//! prefix-consistent: the recovered state is exactly the first N committed
//! transactions for some N, never a subset with holes.

use std::fmt;

/// Magic tag opening a transaction header.
pub const TXN_MAGIC: u32 = 0x4C42_4A31; // "LBJ1"
/// Magic tag opening a commit record.
pub const COMMIT_MAGIC: u32 = 0x4C42_434D; // "LBCM"

/// Encoded header size: magic, seq, payload_len, payload_crc, header_crc.
pub const HEADER_SIZE: usize = 4 + 8 + 4 + 4 + 4;
/// Encoded commit-record size: magic, seq, payload_crc, commit_crc.
pub const COMMIT_SIZE: usize = 4 + 8 + 4 + 4;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled so the journal has no
// dependency the build environment would have to download.
// ---------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------

/// Encode one transaction: returns `(body, commit)` where `body` is the
/// block-padded header + payload (one write) and `commit` is one
/// block-padded commit record (a second write, issued only after the body
/// write has been accepted).
pub fn encode_txn(seq: u64, payload: &[u8], block_size: usize) -> (Vec<u8>, Vec<u8>) {
    let mut body = Vec::with_capacity(HEADER_SIZE + payload.len());
    body.extend_from_slice(&TXN_MAGIC.to_le_bytes());
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    body.extend_from_slice(&crc32(payload).to_le_bytes());
    let header_crc = crc32(&body);
    body.extend_from_slice(&header_crc.to_le_bytes());
    body.extend_from_slice(payload);
    let body_blocks = body.len().div_ceil(block_size);
    body.resize(body_blocks * block_size, 0);

    let mut commit = Vec::with_capacity(COMMIT_SIZE);
    commit.extend_from_slice(&COMMIT_MAGIC.to_le_bytes());
    commit.extend_from_slice(&seq.to_le_bytes());
    commit.extend_from_slice(&crc32(payload).to_le_bytes());
    let commit_crc = crc32(&commit);
    commit.extend_from_slice(&commit_crc.to_le_bytes());
    commit.resize(block_size, 0);
    (body, commit)
}

/// Blocks one transaction occupies on media: block-padded header+payload
/// plus the commit block.
pub fn txn_blocks(payload_len: usize, block_size: usize) -> u64 {
    (HEADER_SIZE + payload_len).div_ceil(block_size) as u64 + 1
}

/// A validated transaction header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnHeader {
    /// Transaction sequence number.
    pub seq: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// CRC32 of the payload.
    pub payload_crc: u32,
}

/// Outcome of parsing a header block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderParse {
    /// A well-formed header.
    Valid(TxnHeader),
    /// All-zero bytes: never-written region (clean end of log).
    Empty,
    /// Nonzero bytes that are not a valid header (torn or stale).
    Corrupt,
}

/// Parse the transaction header at the start of `block`.
pub fn parse_header(block: &[u8]) -> HeaderParse {
    if block.len() < HEADER_SIZE {
        return HeaderParse::Corrupt;
    }
    if block.iter().all(|&b| b == 0) {
        return HeaderParse::Empty;
    }
    let magic = u32::from_le_bytes(block[0..4].try_into().expect("sized"));
    if magic != TXN_MAGIC {
        return HeaderParse::Corrupt;
    }
    let stored_crc = u32::from_le_bytes(block[20..24].try_into().expect("sized"));
    if crc32(&block[0..20]) != stored_crc {
        return HeaderParse::Corrupt;
    }
    HeaderParse::Valid(TxnHeader {
        seq: u64::from_le_bytes(block[4..12].try_into().expect("sized")),
        payload_len: u32::from_le_bytes(block[12..16].try_into().expect("sized")),
        payload_crc: u32::from_le_bytes(block[16..20].try_into().expect("sized")),
    })
}

/// Validate the commit record at the start of `block` against the header
/// it should seal.
pub fn commit_valid(block: &[u8], seq: u64, payload_crc: u32) -> bool {
    if block.len() < COMMIT_SIZE {
        return false;
    }
    let magic = u32::from_le_bytes(block[0..4].try_into().expect("sized"));
    let rec_seq = u64::from_le_bytes(block[4..12].try_into().expect("sized"));
    let rec_crc = u32::from_le_bytes(block[12..16].try_into().expect("sized"));
    let stored = u32::from_le_bytes(block[16..20].try_into().expect("sized"));
    magic == COMMIT_MAGIC
        && rec_seq == seq
        && rec_crc == payload_crc
        && crc32(&block[0..16]) == stored
}

// ---------------------------------------------------------------------
// Prefix-consistent region scan
// ---------------------------------------------------------------------

/// Result of scanning one log region.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Committed transactions in order: `(seq, payload)`.
    pub txns: Vec<(u64, Vec<u8>)>,
    /// First free block after the last committed transaction, relative to
    /// the region start — the resume point for new appends.
    pub next_block: u64,
    /// Torn or uncommitted transactions discarded at the tail.
    pub txns_discarded: u64,
    /// Payloads of discarded transactions whose bytes were intact (header
    /// and payload CRC valid, commit record missing or bad) — countable
    /// but NOT replayable without violating the commit protocol.
    pub discarded_payloads: Vec<Vec<u8>>,
    /// True when the scan stopped on nonzero garbage rather than a clean
    /// (all-zero) end of log.
    pub torn_tail: bool,
}

/// Walk a log region transaction by transaction, validating each frame and
/// stopping at the first invalid one.
///
/// `read` fetches raw bytes: `read(block_offset, n_blocks)` returns the
/// bytes of `n_blocks` blocks starting `block_offset` blocks into the
/// region, or `None` on device error (treated as end of scan). Reads are
/// incremental — proportional to the actual log extent, not the region
/// size — so recovery cost scales with what was written.
pub fn replay_scan<F>(region_blocks: u64, block_size: usize, mut read: F) -> ScanOutcome
where
    F: FnMut(u64, u64) -> Option<Vec<u8>>,
{
    let mut out = ScanOutcome::default();
    let mut block = 0u64;
    let mut expected_seq = 1u64;
    while block < region_blocks {
        let Some(hdr_block) = read(block, 1) else {
            break;
        };
        let header = match parse_header(&hdr_block) {
            HeaderParse::Valid(h) => h,
            HeaderParse::Empty => break, // clean end of log
            HeaderParse::Corrupt => {
                out.torn_tail = true;
                out.txns_discarded += 1;
                break;
            }
        };
        // A stale sequence number means this frame predates the current
        // log era (e.g. leftover bytes past a shorter newer log); it is
        // not part of this log's prefix.
        if header.seq != expected_seq {
            out.torn_tail = true;
            out.txns_discarded += 1;
            break;
        }
        let body_blocks = (HEADER_SIZE + header.payload_len as usize).div_ceil(block_size) as u64;
        if block + body_blocks + 1 > region_blocks {
            // Payload claims to extend past the region: corrupt length.
            out.torn_tail = true;
            out.txns_discarded += 1;
            break;
        }
        let Some(body) = read(block, body_blocks) else {
            break;
        };
        let payload = &body[HEADER_SIZE..HEADER_SIZE + header.payload_len as usize];
        if crc32(payload) != header.payload_crc {
            // Torn payload: the header landed, the data did not.
            out.torn_tail = true;
            out.txns_discarded += 1;
            break;
        }
        let Some(commit_block) = read(block + body_blocks, 1) else {
            break;
        };
        if !commit_valid(&commit_block, header.seq, header.payload_crc) {
            // Intact payload without its commit record: the crash hit
            // between the two writes. The bytes are readable but the
            // transaction never committed, so it is discarded — replaying
            // it would admit states the client was never acked.
            out.torn_tail = true;
            out.txns_discarded += 1;
            out.discarded_payloads.push(payload.to_vec());
            break;
        }
        out.txns.push((header.seq, payload.to_vec()));
        block += body_blocks + 1;
        out.next_block = block;
        expected_seq += 1;
    }
    out
}

// ---------------------------------------------------------------------
// Repair report
// ---------------------------------------------------------------------

/// What `state_repair` found and did, aggregated across all log regions.
/// Replaces the old behavior of silently swallowing malformed entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Committed transactions replayed.
    pub txns_replayed: u64,
    /// Log records applied from committed transactions.
    pub records_replayed: u64,
    /// Torn or uncommitted transactions discarded.
    pub txns_discarded: u64,
    /// Records counted inside discarded-but-intact payloads (a lower
    /// bound: torn payloads cannot be counted reliably).
    pub records_discarded: u64,
    /// True if any log region ended in nonzero garbage (torn tail).
    pub torn_tail: bool,
}

impl RepairReport {
    /// Fold another region's findings into this report.
    pub fn merge(&mut self, other: &RepairReport) {
        self.txns_replayed += other.txns_replayed;
        self.records_replayed += other.records_replayed;
        self.txns_discarded += other.txns_discarded;
        self.records_discarded += other.records_discarded;
        self.torn_tail |= other.torn_tail;
    }

    /// True when the log replayed without discarding anything.
    pub fn is_clean(&self) -> bool {
        self.txns_discarded == 0 && !self.torn_tail
    }
}

impl fmt::Display for RepairReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repair: {} txns ({} records) replayed, {} txns ({}+ records) discarded{}",
            self.txns_replayed,
            self.records_replayed,
            self.txns_discarded,
            self.records_discarded,
            if self.torn_tail { ", torn tail" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BS: usize = 4096;

    /// In-memory "region" the scan closures read from.
    fn reader(region: Vec<u8>) -> impl FnMut(u64, u64) -> Option<Vec<u8>> {
        move |block, n| {
            let start = block as usize * BS;
            let end = start + n as usize * BS;
            region.get(start..end).map(|s| s.to_vec())
        }
    }

    fn region_with(txns: &[&[u8]]) -> Vec<u8> {
        let mut region = vec![0u8; 64 * BS];
        let mut block = 0usize;
        for (i, payload) in txns.iter().enumerate() {
            let (body, commit) = encode_txn(i as u64 + 1, payload, BS);
            region[block * BS..block * BS + body.len()].copy_from_slice(&body);
            block += body.len() / BS;
            region[block * BS..block * BS + commit.len()].copy_from_slice(&commit);
            block += 1;
        }
        region
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_scan_recovers_all_txns() {
        let region = region_with(&[b"alpha", b"beta-beta", b"gamma"]);
        let out = replay_scan(64, BS, reader(region));
        assert_eq!(out.txns.len(), 3);
        assert_eq!(out.txns[0], (1, b"alpha".to_vec()));
        assert_eq!(out.txns[2], (3, b"gamma".to_vec()));
        assert_eq!(out.next_block, 6); // 3 × (1 body + 1 commit)
        assert_eq!(out.txns_discarded, 0);
        assert!(!out.torn_tail);
    }

    #[test]
    fn multi_block_payload_roundtrips() {
        let big = vec![0x5Au8; 3 * BS + 100];
        let region = region_with(&[&big]);
        let out = replay_scan(64, BS, reader(region));
        assert_eq!(out.txns.len(), 1);
        assert_eq!(out.txns[0].1, big);
        assert_eq!(out.next_block, txn_blocks(big.len(), BS));
    }

    #[test]
    fn missing_commit_record_discards_tail_txn() {
        let mut region = region_with(&[b"first", b"second"]);
        // Zero the second txn's commit block (blocks: body0, commit0,
        // body1, commit1).
        region[3 * BS..4 * BS].fill(0);
        let out = replay_scan(64, BS, reader(region));
        assert_eq!(out.txns.len(), 1);
        assert_eq!(out.txns_discarded, 1);
        assert_eq!(out.discarded_payloads, vec![b"second".to_vec()]);
        assert!(out.torn_tail);
        assert_eq!(out.next_block, 2, "appends resume after the last commit");
    }

    #[test]
    fn torn_payload_fails_crc_and_is_discarded() {
        let mut region = region_with(&[b"first", b"second"]);
        // Corrupt one payload byte of the second txn.
        region[2 * BS + HEADER_SIZE] ^= 0xFF;
        let out = replay_scan(64, BS, reader(region));
        assert_eq!(out.txns.len(), 1);
        assert_eq!(out.txns_discarded, 1);
        assert!(out.torn_tail);
        assert!(
            out.discarded_payloads.is_empty(),
            "torn bytes are not countable"
        );
    }

    #[test]
    fn corrupt_header_stops_scan() {
        let mut region = region_with(&[b"first", b"second"]);
        region[2 * BS + 2] ^= 0x40; // flip a header byte of txn 2
        let out = replay_scan(64, BS, reader(region));
        assert_eq!(out.txns.len(), 1);
        assert!(out.torn_tail);
    }

    #[test]
    fn remnants_past_an_overwritten_torn_tail_are_ignored() {
        // Era 1: txn 1 committed, then a big torn txn 2 (2 payload blocks,
        // commit never written). Recovery resumes at block 2; era 2 writes
        // a *shorter* txn 2 there, leaving era-1 payload fragments beyond
        // it. Those fragments must not parse as log.
        let mut region = vec![0u8; 64 * BS];
        let (b1, c1) = encode_txn(1, b"one", BS);
        region[..b1.len()].copy_from_slice(&b1);
        region[BS..BS + c1.len()].copy_from_slice(&c1);
        let torn = vec![0x77u8; 2 * BS]; // body spans blocks 2..5
        let (b2, _never_written) = encode_txn(2, &torn, BS);
        region[2 * BS..2 * BS + b2.len()].copy_from_slice(&b2);
        // Era 2 overwrite: short txn 2 at blocks 2 (body) + 3 (commit).
        let (nb, nc) = encode_txn(2, b"short", BS);
        region[2 * BS..2 * BS + nb.len()].copy_from_slice(&nb);
        region[3 * BS..3 * BS + nc.len()].copy_from_slice(&nc);
        let out = replay_scan(64, BS, reader(region));
        assert_eq!(out.txns.len(), 2);
        assert_eq!(out.txns[1].1, b"short".to_vec());
        assert_eq!(out.next_block, 4);
        // Block 4 holds era-1 payload bytes (0x77…): flagged torn, not
        // replayed.
        assert!(out.torn_tail);
    }

    #[test]
    fn seq_gap_stops_scan() {
        // A frame whose seq does not chain is stale, not part of the
        // prefix.
        let mut region = vec![0u8; 64 * BS];
        let (b1, c1) = encode_txn(1, b"one", BS);
        region[..b1.len()].copy_from_slice(&b1);
        region[BS..BS + c1.len()].copy_from_slice(&c1);
        let (b3, c3) = encode_txn(3, b"three", BS); // gap: no seq 2
        region[2 * BS..2 * BS + b3.len()].copy_from_slice(&b3);
        region[3 * BS..3 * BS + c3.len()].copy_from_slice(&c3);
        let out = replay_scan(64, BS, reader(region));
        assert_eq!(out.txns.len(), 1);
        assert_eq!(out.txns_discarded, 1);
        assert!(out.torn_tail);
    }

    #[test]
    fn empty_region_is_clean() {
        let out = replay_scan(64, BS, reader(vec![0u8; 64 * BS]));
        assert!(out.txns.is_empty());
        assert_eq!(out.next_block, 0);
        assert!(!out.torn_tail);
    }

    #[test]
    fn oversized_payload_len_rejected() {
        let mut region = vec![0u8; 4 * BS];
        // Hand-craft a header claiming a payload beyond the region.
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&TXN_MAGIC.to_le_bytes());
        hdr.extend_from_slice(&1u64.to_le_bytes());
        hdr.extend_from_slice(&(100 * BS as u32).to_le_bytes());
        hdr.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&hdr);
        hdr.extend_from_slice(&crc.to_le_bytes());
        region[..hdr.len()].copy_from_slice(&hdr);
        let out = replay_scan(4, BS, reader(region));
        assert!(out.txns.is_empty());
        assert!(out.torn_tail);
    }

    #[test]
    fn repair_report_merge_and_display() {
        let mut a = RepairReport {
            txns_replayed: 2,
            records_replayed: 10,
            ..Default::default()
        };
        let b = RepairReport {
            txns_replayed: 1,
            records_replayed: 3,
            txns_discarded: 1,
            records_discarded: 2,
            torn_tail: true,
        };
        a.merge(&b);
        assert_eq!(a.txns_replayed, 3);
        assert_eq!(a.records_replayed, 13);
        assert!(a.torn_tail);
        assert!(!a.is_clean());
        assert!(a.to_string().contains("torn tail"));
        assert!(RepairReport::default().is_clean());
    }
}
