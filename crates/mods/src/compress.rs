//! The compression LabMod (the paper's "Active Storage" example and the
//! C-LabStack of the request-partitioning experiment, Fig. 5b).
//!
//! Compresses block writes before forwarding them downstream and
//! transparently decompresses reads. Real compression runs
//! ([`crate::compress_algo`]); the *modeled* CPU cost is calibrated to the
//! paper's ZLIB anchor (32 MB ≈ 20 ms), which is what makes the
//! C-LabStack "computational" to the Work Orchestrator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use labstor_core::{
    BlockOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_sim::Ctx;
use labstor_telemetry::PerfCounters;

use crate::compress_algo::{compress, compress_cost_ns, decompress, decompress_cost_ns};

/// Compressed-extent bookkeeping: original and stored lengths per LBA.
#[derive(Debug, Clone, Copy)]
struct Extent {
    orig_len: usize,
    /// Exact compressed token-stream length (before sector padding).
    comp_len: usize,
    /// Sector-padded length actually stored downstream.
    stored_len: usize,
    /// Incompressible data is stored raw.
    raw: bool,
}

/// The compression LabMod.
pub struct CompressMod {
    extents: RwLock<HashMap<u64, Extent>>,
    perf: PerfCounters,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl CompressMod {
    /// New compressor.
    pub fn new() -> Self {
        CompressMod {
            extents: RwLock::new(HashMap::new()),
            perf: PerfCounters::new(),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
        }
    }

    /// Cumulative (input bytes, stored bytes) — the achieved ratio.
    pub fn ratio_stats(&self) -> (u64, u64) {
        // relaxed-ok: stat counter; readers tolerate lag
        (
            self.bytes_in.load(Ordering::Relaxed),
            self.bytes_out.load(Ordering::Relaxed),
        )
    }

    /// Compress `data`, record the extent, and forward the stored bytes.
    /// Compression is a transform, not a copy: the stored stream is new
    /// bytes either way, so `Write` and `WriteBuf` share this path.
    fn do_write(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        lba: u64,
        data: &[u8],
    ) -> RespPayload {
        let orig_len = data.len();
        ctx.advance(compress_cost_ns(orig_len));
        let compressed = compress(data);
        let (stored, raw) = if compressed.len() < orig_len {
            (compressed, false)
        } else {
            labstor_ipc::note_payload_copy(orig_len);
            // copy-ok: incompressible payloads are stored verbatim; counted just above
            (data.to_vec(), true)
        };
        let comp_len = stored.len();
        let stored = pad_to_sectors(stored);
        self.bytes_in.fetch_add(orig_len as u64, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.bytes_out
            .fetch_add(stored.len() as u64, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.extents.write().insert(
            lba,
            Extent {
                orig_len,
                comp_len,
                stored_len: stored.len(),
                raw,
            },
        );
        let mut fwd = Request::new(
            req.id,
            req.stack,
            Payload::Block(BlockOp::Write { lba, data: stored }),
            req.creds,
        );
        fwd.vertex = req.vertex;
        fwd.core = req.core;
        fwd.qid_hint = req.qid_hint;
        match env.forward(ctx, fwd) {
            r if r.is_ok() => RespPayload::Len(orig_len),
            err => err,
        }
    }

    /// Fetch an extent's stored bytes and decode them to the original.
    fn fetch_decoded(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        lba: u64,
        e: Extent,
    ) -> Result<Vec<u8>, RespPayload> {
        let mut fwd = Request::new(
            req.id,
            req.stack,
            Payload::Block(BlockOp::Read {
                lba,
                len: e.stored_len,
            }),
            req.creds,
        );
        fwd.vertex = req.vertex;
        fwd.core = req.core;
        fwd.qid_hint = req.qid_hint;
        let stored = match env.forward(ctx, fwd) {
            RespPayload::Data(stored) => stored,
            RespPayload::DataBuf(h) => h.to_vec(), // copy-ok: decoder needs owned bytes; to_vec self-counts
            other => return Err(other),
        };
        if e.raw {
            let mut d = stored;
            d.truncate(e.orig_len);
            Ok(d)
        } else {
            ctx.advance(decompress_cost_ns(e.orig_len));
            decompress(&stored[..e.comp_len.min(stored.len())])
                .map_err(|err| RespPayload::Err(format!("decompression failed: {err}")))
        }
    }
}

impl Default for CompressMod {
    fn default() -> Self {
        Self::new()
    }
}

fn pad_to_sectors(mut data: Vec<u8>) -> Vec<u8> {
    let sector = labstor_sim::SECTOR_SIZE;
    let padded = data.len().div_ceil(sector) * sector;
    data.resize(padded.max(sector), 0);
    data
}

// labmod-default-ok: extent map and stats migrate in state_update; after a crash the stack re-reads extents from the device, so no repair pass is needed
impl LabMod for CompressMod {
    fn type_name(&self) -> &'static str {
        "compress"
    }

    fn mod_type(&self) -> ModType {
        ModType::Filter
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let before = ctx.busy();
        let resp = match &req.payload {
            Payload::Block(BlockOp::Write { lba, data }) => {
                // Legacy Vec ingress: compress borrows the payload in
                // place, so even this path copies nothing extra.
                self.do_write(ctx, env, &req, *lba, data)
            }
            Payload::Block(BlockOp::WriteBuf { lba, buf }) => {
                // Zero-copy ingress: compress straight out of the shared
                // buffer — no `Vec` materialization of the input.
                let (lba, buf) = (*lba, buf.clone());
                self.do_write(ctx, env, &req, lba, buf.as_slice())
            }
            Payload::Block(BlockOp::Read { lba, len }) => {
                let (lba, len) = (*lba, *len);
                let extent = self.extents.read().get(&lba).copied();
                match extent {
                    Some(e) => match self.fetch_decoded(ctx, env, &req, lba, e) {
                        Ok(mut data) => {
                            data.truncate(len.min(data.len()));
                            RespPayload::Data(data)
                        }
                        Err(resp) => resp,
                    },
                    // Unknown extent: pass through untouched.
                    None => env.forward(ctx, req),
                }
            }
            Payload::Block(BlockOp::ReadBuf { lba, len }) => {
                let (lba, len) = (*lba, *len);
                let extent = self.extents.read().get(&lba).copied();
                match extent {
                    Some(e) => match self.fetch_decoded(ctx, env, &req, lba, e) {
                        Ok(mut data) => {
                            data.truncate(len.min(data.len()));
                            // The decoder's output lands in a pool buffer so
                            // upstream stages share it by refcount.
                            match labstor_ipc::default_pool().alloc_from(&data) {
                                Some(h) => RespPayload::DataBuf(h),
                                None => RespPayload::Data(data), // pool dry: legacy Vec fallback
                            }
                        }
                        Err(resp) => resp,
                    },
                    // Unknown extent: downstream answers zero-copy directly.
                    None => env.forward(ctx, req),
                }
            }
            _ => env.forward(ctx, req),
        };
        self.perf.observe(ctx.busy() - before);
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        // Deliberately size-scaled and never EWMA-overridden: the
        // orchestrator's CQ/LQ split keys off this model, and an average
        // over mixed request sizes would misclassify small requests.
        compress_cost_ns(req.payload_bytes())
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<CompressMod>() {
            self.perf.absorb(&prev.perf);
            *self.extents.write() = prev.extents.read().clone();
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the factory (no parameters).
pub fn install(mm: &ModuleManager) {
    mm.register_factory(
        "compress",
        Arc::new(|_params| Arc::new(CompressMod::new()) as Arc<dyn LabMod>),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;
    use parking_lot::Mutex;

    struct MemDev {
        blocks: Mutex<HashMap<u64, Vec<u8>>>,
        bytes_written: AtomicU64,
    }
    impl LabMod for MemDev {
        fn type_name(&self) -> &'static str {
            "memdev"
        }
        fn mod_type(&self) -> ModType {
            ModType::Driver
        }
        fn process(&self, _ctx: &mut Ctx, req: Request, _env: &StackEnv<'_>) -> RespPayload {
            match req.payload {
                Payload::Block(BlockOp::Write { lba, data }) => {
                    self.bytes_written
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    let n = data.len();
                    self.blocks.lock().insert(lba, data);
                    RespPayload::Len(n)
                }
                Payload::Block(BlockOp::Read { lba, len }) => match self.blocks.lock().get(&lba) {
                    Some(d) => RespPayload::Data(d[..len.min(d.len())].to_vec()),
                    None => RespPayload::Data(vec![0u8; len]),
                },
                _ => RespPayload::Ok,
            }
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn setup() -> (ModuleManager, LabStack, Arc<MemDev>) {
        let mm = ModuleManager::new();
        install(&mm);
        mm.instantiate("cz", "compress", &serde_json::Value::Null)
            .unwrap();
        let dev = Arc::new(MemDev {
            blocks: Mutex::new(HashMap::new()),
            bytes_written: AtomicU64::new(0),
        });
        mm.insert_instance("dev", dev.clone());
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "cz".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "dev".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        (mm, stack, dev)
    }

    fn exec(mm: &ModuleManager, stack: &LabStack, payload: Payload, ctx: &mut Ctx) -> RespPayload {
        let env = StackEnv {
            stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        mm.get("cz")
            .unwrap()
            .process(ctx, Request::new(1, 1, payload, Credentials::ROOT), &env)
    }

    #[test]
    fn compressible_writes_shrink_on_device() {
        let (mm, stack, dev) = setup();
        let mut ctx = Ctx::new();
        let data: Vec<u8> = std::iter::repeat_n(b"particle:0042 vx=1.0 vy=2.0 ", 4096)
            .flatten()
            .copied()
            .collect();
        let orig = data.len();
        let w = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: data.clone(),
            }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(n) if n == orig));
        assert!(
            dev.bytes_written.load(Ordering::Relaxed) < orig as u64 / 2,
            "device received compressed bytes"
        );
        let r = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Read { lba: 0, len: orig }),
            &mut ctx,
        );
        assert!(
            matches!(r, RespPayload::Data(d) if d == data),
            "transparent decompression"
        );
    }

    #[test]
    fn incompressible_writes_stored_raw() {
        let (mm, stack, _dev) = setup();
        let mut ctx = Ctx::new();
        let mut x = 0x9e3779b9u32;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 8,
                data: data.clone(),
            }),
            &mut ctx,
        );
        let r = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Read {
                lba: 8,
                len: data.len(),
            }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(d) if d == data));
    }

    #[test]
    fn zero_copy_write_read_roundtrip() {
        let (mm, stack, dev) = setup();
        let mut ctx = Ctx::new();
        let data: Vec<u8> = std::iter::repeat_n(b"sensor:17 t=300K p=1.0atm he=4 ", 2048)
            .flatten()
            .copied()
            .collect();
        let mut h = labstor_ipc::default_pool()
            .alloc(data.len())
            .expect("pool has a big-enough class");
        h.write_with(|b| b.copy_from_slice(&data));
        let w = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::WriteBuf { lba: 4, buf: h }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(n) if n == data.len()));
        assert!(
            dev.bytes_written.load(Ordering::Relaxed) < data.len() as u64 / 2,
            "device received compressed bytes"
        );
        let r = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::ReadBuf {
                lba: 4,
                len: data.len(),
            }),
            &mut ctx,
        );
        match r {
            RespPayload::DataBuf(h) => assert_eq!(h.as_slice(), &data[..]),
            other => panic!("expected a zero-copy DataBuf, got {other:?}"),
        }
    }

    #[test]
    fn compression_cost_dominates_clock() {
        let (mm, stack, _dev) = setup();
        let mut ctx = Ctx::new();
        let data = vec![7u8; 32 << 20]; // the paper's 32 MB request
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write { lba: 0, data }),
            &mut ctx,
        );
        assert!(
            ctx.now() >= 15_000_000,
            "32 MB ≈ 20 ms of compression, got {} ns",
            ctx.now()
        );
    }

    #[test]
    fn extent_map_survives_upgrade() {
        let (mm, stack, _dev) = setup();
        let mut ctx = Ctx::new();
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![1u8; 4096],
            }),
            &mut ctx,
        );
        let old = mm.get("cz").unwrap();
        let newer = CompressMod::new();
        newer.state_update(old.as_ref());
        assert_eq!(newer.extents.read().len(), 1);
    }
}
