//! A self-contained LZ77-style compressor.
//!
//! The paper's compression LabMod wraps ZLIB; no compression crate is on
//! the allowed dependency list, so this module implements a small, honest
//! LZ with a greedy hash-chain matcher — real compression with real
//! round-trip correctness, not a stub. Throughput and ratio are in the
//! LZ4-class ballpark the compression experiments assume.
//!
//! Format: a stream of tokens. `0x00 len  <len literals>` emits literals
//! (len ≤ 255); `0x01 len  off_lo off_hi` copies `len` bytes from `off`
//! bytes back (len ≤ 255, off ≤ 65535).

/// Minimum match length worth encoding (shorter matches cost more than
/// literals).
const MIN_MATCH: usize = 6;
/// Maximum encodable match length.
const MAX_MATCH: usize = 255;
/// Maximum encodable back-reference distance.
const MAX_OFFSET: usize = 65_535;
/// Hash table size (power of two).
const HASH_SIZE: usize = 1 << 14;

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> 18) as usize & (HASH_SIZE - 1)
}

/// Compress `input`. Always succeeds; worst case output is
/// `input + input/255 * 2 + 2` bytes (all literals).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; HASH_SIZE];
    let mut lit_start = 0usize;
    let mut i = 0usize;

    fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
        for chunk in lits.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
    }

    while i + 4 <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i;
        if candidate != usize::MAX && i - candidate <= MAX_OFFSET {
            // Extend the match.
            let mut len = 0usize;
            let max = (input.len() - i).min(MAX_MATCH);
            while len < max && input[candidate + len] == input[i + len] {
                len += 1;
            }
            if len >= MIN_MATCH {
                flush_literals(&mut out, &input[lit_start..i]);
                let off = (i - candidate) as u16;
                out.push(0x01);
                out.push(len as u8);
                out.extend_from_slice(&off.to_le_bytes());
                i += len;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    flush_literals(&mut out, &input[lit_start..]);
    out
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut i = 0usize;
    while i < input.len() {
        match input[i] {
            0x00 => {
                let len = *input.get(i + 1).ok_or("truncated literal header")? as usize;
                let start = i + 2;
                let end = start + len;
                if end > input.len() {
                    return Err("truncated literal run".into());
                }
                out.extend_from_slice(&input[start..end]);
                i = end;
            }
            0x01 => {
                if i + 4 > input.len() {
                    return Err("truncated match token".into());
                }
                let len = input[i + 1] as usize;
                let off = u16::from_le_bytes([input[i + 2], input[i + 3]]) as usize;
                if off == 0 || off > out.len() {
                    return Err(format!("bad back-reference {off} at {}", out.len()));
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
                i += 4;
            }
            t => return Err(format!("bad token {t:#x} at {i}")),
        }
    }
    Ok(out)
}

/// Modeled compression throughput: ~1.6 GB/s (the paper's 32 MB requests
/// take "roughly 20ms").
pub const COMPRESS_BYTES_PER_SEC: u64 = 1_600_000_000;

/// Modeled decompression throughput (LZ decode is faster than encode).
pub const DECOMPRESS_BYTES_PER_SEC: u64 = 3_200_000_000;

/// Modeled CPU cost of compressing `bytes`.
pub fn compress_cost_ns(bytes: usize) -> u64 {
    (bytes as u64).saturating_mul(1_000_000_000) / COMPRESS_BYTES_PER_SEC
}

/// Modeled CPU cost of decompressing to `bytes`.
pub fn decompress_cost_ns(bytes: usize) -> u64 {
    (bytes as u64).saturating_mul(1_000_000_000) / DECOMPRESS_BYTES_PER_SEC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("valid stream");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn compressible_data_shrinks() {
        let data: Vec<u8> = std::iter::repeat_n(b"scientific data block ", 1000)
            .flatten()
            .copied()
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn zeros_compress_hard() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        assert!(c.len() < data.len() / 20);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // A simple xorshift stream: no 4-byte matches to find.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_range_matches() {
        let mut data = vec![0u8; 0];
        let phrase: Vec<u8> = (0..200).map(|i| (i * 7 % 251) as u8).collect();
        for _ in 0..50 {
            data.extend_from_slice(&phrase);
            data.extend_from_slice(b"X");
        }
        roundtrip(&data);
    }

    #[test]
    fn corrupt_stream_rejected() {
        assert!(decompress(&[0x02, 0, 0]).is_err());
        assert!(decompress(&[0x00, 200, 1, 2]).is_err()); // truncated run
        assert!(decompress(&[0x01, 5, 0, 0]).is_err()); // offset 0
    }

    #[test]
    fn cost_model_matches_paper_anchor() {
        // 32 MB should cost roughly 20 ms.
        let ns = compress_cost_ns(32 << 20);
        assert!((15_000_000..25_000_000).contains(&ns), "{ns}");
    }
}
