//! LabKVS: the key-value store LabMod (paper §III-E).
//!
//! "LabKVS is similarly designed to LabFS; however, LabKVS implements a
//! put/get/remove API, which creates keys and stores data using a single
//! syscall, as opposed to the three (open-modify-close) required by
//! POSIX." It shares LabFS's architecture: sharded key map, per-worker
//! block allocation, per-worker operation log, replay-based recovery.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use labstor_core::{
    BlockOp, KvsOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_sim::{BlockDevice, Ctx, SimDevice};
use labstor_telemetry::PerfCounters;

use crate::devices::{device_param, DeviceRegistry};
use crate::flush::{FlushDaemon, FLUSH_KICK_BYTES};
use crate::journal::{self, RepairReport};
use crate::labfs::BlockAllocator;

const KV_BLOCK: usize = 4096;
const BLOCK_SECTORS: u64 = (KV_BLOCK / labstor_sim::SECTOR_SIZE) as u64;
const LOG_BLOCKS_PER_WORKER: u64 = 1024;

/// CPU cost of one key-map operation.
const KV_CPU_NS: u64 = 250;

/// A stored value's location: its length and the device blocks holding it.
#[derive(Debug, Clone)]
struct ValueLoc {
    len: usize,
    blocks: Vec<u64>,
}

/// KVS log record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum KvRecord {
    Put {
        key: String,
        len: u64,
        blocks: Vec<u64>,
    },
    Remove {
        key: String,
    },
}

impl KvRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            KvRecord::Put { key, len, blocks } => {
                out.push(1);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for b in blocks {
                    out.extend_from_slice(&b.to_le_bytes());
                }
            }
            KvRecord::Remove { key } => {
                out.push(2);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
            }
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Option<KvRecord> {
        fn take<'b>(buf: &'b [u8], pos: &mut usize, n: usize) -> Option<&'b [u8]> {
            let s = &buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        }
        let tag = *buf.get(*pos)?;
        *pos += 1;
        match tag {
            1 => {
                let klen = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
                // copy-ok: log-record decode of a key string — metadata, not payload bytes
                let key = String::from_utf8(take(buf, pos, klen)?.to_vec()).ok()?;
                let len = u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?);
                let n = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
                let mut blocks = Vec::with_capacity(n);
                for _ in 0..n {
                    blocks.push(u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?));
                }
                Some(KvRecord::Put { key, len, blocks })
            }
            2 => {
                let klen = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
                // copy-ok: log-record decode of a key string — metadata, not payload bytes
                let key = String::from_utf8(take(buf, pos, klen)?.to_vec()).ok()?;
                Some(KvRecord::Remove { key })
            }
            _ => None,
        }
    }
}

/// One worker's op log. Like LabFS's `MetaLog`, each flush becomes a
/// journal transaction (see [`crate::journal`]).
struct KvLog {
    buffer: Vec<u8>,
    region_start: u64,
    next_block: u64,
    region_blocks: u64,
    next_seq: u64,
}

/// The LabKVS LabMod.
pub struct LabKvs {
    shards: Vec<RwLock<HashMap<String, ValueLoc>>>,
    allocator: BlockAllocator,
    logs: Vec<Mutex<KvLog>>,
    log_device: Arc<SimDevice>,
    /// Background half of the double-buffered log flush (see
    /// [`crate::flush`]).
    flush: FlushDaemon,
    perf: PerfCounters,
    /// What the most recent `state_repair` found (see [`RepairReport`]).
    last_repair: Mutex<Option<RepairReport>>,
    /// Table levels the `GetWhere` resubmission hook walks on a miss
    /// (LSM-style: level 0 is the primary namespace, deeper levels are
    /// probed in-stack instead of bouncing back to the client).
    resub_levels: u32,
}

/// The key a value lives under at table `level` (level 0 is the key
/// itself). Deeper levels use a reserved prefix so they never collide
/// with user keys; `GetWhere` walks them in-stack on a miss.
pub fn level_key(level: u32, key: &str) -> String {
    if level == 0 {
        key.to_string()
    } else {
        format!("~L{level}~{key}")
    }
}

impl LabKvs {
    /// Build LabKVS over `device` with `workers` allocator/log shards
    /// and the default two resubmission levels.
    pub fn new(device: Arc<SimDevice>, workers: usize) -> Self {
        Self::with_levels(device, workers, 2)
    }

    /// Build LabKVS with an explicit number of `GetWhere` table levels.
    pub fn with_levels(device: Arc<SimDevice>, workers: usize, levels: u32) -> Self {
        let workers = workers.max(1);
        let total_blocks = device.model().capacity_sectors() / BLOCK_SECTORS;
        let log_blocks = LOG_BLOCKS_PER_WORKER * workers as u64;
        let n_shards = workers.next_power_of_two().max(16);
        LabKvs {
            shards: (0..n_shards).map(|_| RwLock::new(HashMap::new())).collect(),
            allocator: BlockAllocator::new(log_blocks, total_blocks, workers, 4096),
            logs: (0..workers as u64)
                .map(|w| {
                    Mutex::new(KvLog {
                        buffer: Vec::new(),
                        region_start: w * LOG_BLOCKS_PER_WORKER,
                        next_block: w * LOG_BLOCKS_PER_WORKER,
                        region_blocks: LOG_BLOCKS_PER_WORKER,
                        next_seq: 1,
                    })
                })
                .collect(),
            flush: FlushDaemon::new(device.clone(), KV_BLOCK),
            log_device: device,
            perf: PerfCounters::new(),
            last_repair: Mutex::new(None),
            resub_levels: levels.max(1),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, ValueLoc>> {
        let mut h = 0xcbf29ce484222325u64;
        for b in key.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
        }
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Append a record to the originating worker's log. Once the buffer
    /// crosses the kick threshold it is streamed to the flush daemon in
    /// the background, so the append path never blocks on the device.
    fn log(&self, ctx: &mut Ctx, core: usize, rec: &KvRecord) {
        ctx.advance(80);
        let mut log = self.logs[core % self.logs.len()].lock();
        rec.encode(&mut log.buffer);
        if log.buffer.len() >= FLUSH_KICK_BYTES {
            // Region-full is not actionable here; the next flush's kick
            // surfaces it (the buffer just keeps accumulating).
            let _ = self.kick_log(ctx.now(), &mut log);
        }
    }

    /// Foreground half of the double-buffered flush: reserve this log's
    /// next transaction (blocks + sequence number), swap the buffer out,
    /// and hand it to the daemon. Cursors advance here, so appends keep
    /// filling the fresh buffer while the old one flushes; a region-full
    /// error leaves the log untouched.
    fn kick_log(&self, now: u64, log: &mut KvLog) -> Result<(), String> {
        if log.buffer.is_empty() {
            return Ok(());
        }
        let blocks = journal::txn_blocks(log.buffer.len(), KV_BLOCK);
        if log.next_block + blocks > log.region_start + log.region_blocks {
            return Err("kvs log region full".into());
        }
        let payload = std::mem::take(&mut log.buffer);
        self.flush
            .submit(log.next_seq, payload, log.next_block, now);
        log.next_block += blocks;
        log.next_seq += 1;
        Ok(())
    }

    /// Persist buffered log records as one journal transaction per log,
    /// then wait for durability. The daemon writes header+payload first
    /// and the commit record only after that write was accepted
    /// (write-ahead ordering).
    pub fn flush_logs(&self, ctx: &mut Ctx) -> Result<(), String> {
        for log in &self.logs {
            self.kick_log(ctx.now(), &mut log.lock())?;
        }
        self.flush.sync(ctx)
    }

    /// Apply one replayed record to the key map.
    fn apply(&self, rec: KvRecord) {
        match rec {
            KvRecord::Put { key, len, blocks } => {
                self.shard(&key).write().insert(
                    key,
                    ValueLoc {
                        len: len as usize,
                        blocks,
                    },
                );
            }
            KvRecord::Remove { key } => {
                self.shard(&key).write().remove(&key);
            }
        }
    }

    /// Rebuild the key map by scanning the on-device journal regions,
    /// replaying the longest prefix of committed transactions and
    /// discarding any torn or uncommitted tail (see
    /// [`crate::journal::replay_scan`]). The scan trusts media, not
    /// in-memory cursors.
    pub fn replay_from_device(&self) -> RepairReport {
        // Quiesce the flush daemon and clear its error latch: queued
        // buffers predate the crash and the scan below trusts media.
        self.flush.reset();
        for shard in &self.shards {
            shard.write().clear();
        }
        let mut report = RepairReport::default();
        let mut ctx = Ctx::new();
        for log in &self.logs {
            let mut log = log.lock();
            let region_start = log.region_start;
            let device = &self.log_device;
            let outcome = journal::replay_scan(log.region_blocks, KV_BLOCK, |block, n| {
                let mut buf = vec![0u8; n as usize * KV_BLOCK];
                device
                    .read(&mut ctx, (region_start + block) * BLOCK_SECTORS, &mut buf)
                    .ok()
                    .map(|_| buf)
            });
            for (_seq, payload) in &outcome.txns {
                let mut pos = 0usize;
                while pos < payload.len() {
                    match KvRecord::decode(payload, &mut pos) {
                        Some(rec) => {
                            self.apply(rec);
                            report.records_replayed += 1;
                        }
                        None => {
                            report.records_discarded += 1;
                            break;
                        }
                    }
                }
            }
            for payload in &outcome.discarded_payloads {
                let mut pos = 0usize;
                while pos < payload.len() {
                    match KvRecord::decode(payload, &mut pos) {
                        Some(_) => report.records_discarded += 1,
                        None => break,
                    }
                }
            }
            report.txns_replayed += outcome.txns.len() as u64;
            report.txns_discarded += outcome.txns_discarded;
            report.torn_tail |= outcome.torn_tail;
            log.next_block = region_start + outcome.next_block;
            log.next_seq = outcome.txns.last().map(|(s, _)| s + 1).unwrap_or(1);
            log.buffer.clear();
        }
        *self.last_repair.lock() = Some(report);
        report
    }

    /// What the most recent repair found, if one has run.
    pub fn last_repair(&self) -> Option<RepairReport> {
        *self.last_repair.lock()
    }

    /// Number of live keys.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Allocate blocks for a `len`-byte value on `core`.
    fn alloc_blocks(&self, ctx: &mut Ctx, core: usize, len: usize) -> Option<Vec<u64>> {
        let n_blocks = len.div_ceil(KV_BLOCK);
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            ctx.advance(40);
            blocks.push(self.allocator.alloc(core)?);
        }
        Some(blocks)
    }

    /// Record a completed put in the log and key map.
    fn commit_put(&self, ctx: &mut Ctx, core: usize, key: &str, len: usize, blocks: Vec<u64>) {
        self.log(
            ctx,
            core,
            &KvRecord::Put {
                key: key.to_string(),
                len: len as u64,
                blocks: blocks.clone(),
            },
        );
        self.shard(key)
            .write()
            .insert(key.to_string(), ValueLoc { len, blocks });
    }

    /// Zero-copy put: full blocks of the caller's pool buffer travel
    /// downstream as refcounted [`labstor_ipc::BufHandle`] slices; only
    /// the zero-padded tail block is materialized as a `Vec`.
    fn do_put_buf(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        key: &str,
        buf: &labstor_ipc::BufHandle,
    ) -> RespPayload {
        ctx.advance(KV_CPU_NS);
        let Some(blocks) = self.alloc_blocks(ctx, req.core, buf.len()) else {
            return RespPayload::Err("no space".into());
        };
        let full_bytes = (buf.len() / KV_BLOCK) * KV_BLOCK;
        let mut ops = Vec::new();
        let mut i = 0usize;
        while i < blocks.len() {
            let mut j = i;
            while j + 1 < blocks.len() && blocks[j + 1] == blocks[j] + 1 {
                j += 1;
            }
            let byte_from = i * KV_BLOCK;
            let byte_to = ((j + 1) * KV_BLOCK).min(buf.len().next_multiple_of(KV_BLOCK));
            let zc_to = byte_to.min(full_bytes);
            let mut copy_from = byte_from;
            if byte_from < zc_to {
                if let Some(s) = buf.slice(byte_from, zc_to - byte_from) {
                    ops.push(BlockOp::WriteBuf {
                        lba: blocks[i] * BLOCK_SECTORS,
                        buf: s,
                    });
                    copy_from = zc_to;
                }
            }
            if copy_from < byte_to {
                let mut payload = vec![0u8; byte_to - copy_from];
                let n = buf.len().saturating_sub(copy_from).min(payload.len());
                labstor_ipc::note_payload_copy(n);
                // copy-ok: the zero-padded tail block cannot alias the pool buffer; counted via note_payload_copy
                payload[..n].copy_from_slice(&buf.as_slice()[copy_from..copy_from + n]);
                let block = blocks[i] + ((copy_from - byte_from) / KV_BLOCK) as u64;
                ops.push(BlockOp::Write {
                    lba: block * BLOCK_SECTORS,
                    data: payload,
                });
            }
            i = j + 1;
        }
        for op in ops {
            let mut fwd = Request::new(req.id, req.stack, Payload::Block(op), req.creds);
            fwd.vertex = env.vertex;
            fwd.core = req.core;
            let r = env.forward(ctx, fwd);
            if !r.is_ok() {
                return r;
            }
        }
        self.commit_put(ctx, req.core, key, buf.len(), blocks);
        RespPayload::Len(buf.len())
    }

    /// Fetch a stored value. Single-block values ride the zero-copy path
    /// end to end: the driver lands the DMA in a pool buffer and we hand
    /// back a refcounted slice of it as [`RespPayload::DataBuf`].
    fn read_value(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        loc: &ValueLoc,
    ) -> RespPayload {
        if loc.blocks.len() == 1 && loc.len > 0 {
            let mut fwd = Request::new(
                req.id,
                req.stack,
                Payload::Block(BlockOp::ReadBuf {
                    lba: loc.blocks[0] * BLOCK_SECTORS,
                    len: KV_BLOCK,
                }),
                req.creds,
            );
            fwd.vertex = env.vertex;
            fwd.core = req.core;
            return match env.forward(ctx, fwd) {
                RespPayload::DataBuf(h) => {
                    let want = loc.len.min(h.len());
                    // Small values skip the BufferPool round trip and
                    // ride by value in the envelope — the client-side
                    // copy-out this saves is a counted one.
                    if let Some(d) =
                        labstor_ipc::InlineData::from_slice(h.as_slice().get(..want).unwrap_or(&[]))
                    {
                        return RespPayload::Inline(d);
                    }
                    match h.slice(0, want) {
                        Some(s) => RespPayload::DataBuf(s),
                        None => RespPayload::Data(h.to_vec()), // copy-ok: unreachable slice failure; to_vec self-counts
                    }
                }
                // copy-ok: legacy Vec from a pool-dry driver; truncation copy counted below
                RespPayload::Data(d) => {
                    let want = loc.len.min(d.len());
                    labstor_ipc::note_payload_copy(want);
                    RespPayload::Data(d[..want].to_vec()) // copy-ok: counted just above
                }
                other => other,
            };
        }
        let mut out = Vec::with_capacity(loc.len);
        for (idx, b) in loc.blocks.iter().enumerate() {
            let want = (loc.len - idx * KV_BLOCK).min(KV_BLOCK);
            let mut fwd = Request::new(
                req.id,
                req.stack,
                Payload::Block(BlockOp::Read {
                    lba: b * BLOCK_SECTORS,
                    len: KV_BLOCK,
                }),
                req.creds,
            );
            fwd.vertex = env.vertex;
            fwd.core = req.core;
            match env.forward(ctx, fwd) {
                RespPayload::Data(d) => {
                    labstor_ipc::note_payload_copy(want);
                    // copy-ok: multi-block reassembly into one contiguous value; counted just above
                    out.extend_from_slice(&d[..want]);
                }
                RespPayload::DataBuf(h) => {
                    labstor_ipc::note_payload_copy(want);
                    // copy-ok: multi-block reassembly into one contiguous value; counted just above
                    out.extend_from_slice(&h.as_slice()[..want]);
                }
                other => return other,
            }
        }
        RespPayload::Data(out)
    }

    /// Pushdown point-query with the in-stack resubmission hook: probe
    /// the key at level 0 and, on a miss, walk the deeper table levels
    /// right here instead of bouncing a "not found" back to the client
    /// for each level. A found value is evaluated in place; only a
    /// matching value ships. Returns [`RespPayload::Ok`] when the key
    /// exists but the predicate rejects it.
    fn do_get_where(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        key: &str,
        prog: &labstor_pushdown::VerifiedProgram,
    ) -> RespPayload {
        for level in 0..self.resub_levels {
            ctx.advance(KV_CPU_NS); // one key-map probe per level walked
            let lkey = level_key(level, key);
            let loc = self.shard(&lkey).read().get(&lkey).cloned();
            let Some(loc) = loc else {
                continue; // resubmission hook: try the next level in-stack
            };
            let resp = self.read_value(ctx, env, req, &loc);
            let mut fuel = prog.fuel_budget();
            let mut out = labstor_pushdown::ScanOut::default();
            let scanned = match resp.data_bytes() {
                Some(bytes) => labstor_pushdown::scan(prog, bytes, 0, &mut fuel, &mut out),
                None => return resp, // downstream error; propagate as-is
            };
            let used = prog.fuel_budget() - fuel;
            if let Err(retry_vns) = env.charge_fuel(ctx, &req.creds, used) {
                return RespPayload::Err(format!(
                    "pushdown: tenant {} over fuel budget, retry in {retry_vns} vns",
                    req.creds.tenant.as_u32()
                ));
            }
            if scanned.is_err() {
                return RespPayload::Err("pushdown: out of fuel".into());
            }
            return if out.matches > 0 {
                resp
            } else {
                // Key present, predicate rejected it: nothing ships.
                RespPayload::Ok
            };
        }
        RespPayload::Err(format!("no key '{key}'"))
    }

    /// Pushdown range scan: evaluate the program over every value whose
    /// key starts with `prefix`, shipping back only matching keys
    /// ([`labstor_pushdown::Action::Select`]) or a 32-byte aggregate.
    fn do_scan_where(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        prefix: &str,
        prog: &labstor_pushdown::VerifiedProgram,
    ) -> RespPayload {
        use labstor_pushdown::Action;
        // Deterministic scan order across the sharded map.
        let mut entries: Vec<(String, ValueLoc)> = Vec::new();
        for shard in &self.shards {
            let m = shard.read();
            for (k, loc) in m.iter() {
                if k.starts_with(prefix) {
                    entries.push((k.clone(), loc.clone()));
                }
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut fuel = prog.fuel_budget();
        let mut out = labstor_pushdown::ScanOut::default();
        let mut matched_keys: Vec<String> = Vec::new();
        for (k, loc) in &entries {
            ctx.advance(KV_CPU_NS); // per-entry key-map touch
            let resp = self.read_value(ctx, env, req, loc);
            let Some(bytes) = resp.data_bytes() else {
                return resp; // downstream error; propagate as-is
            };
            let before_matches = out.matches;
            let scanned = labstor_pushdown::scan(prog, bytes, 0, &mut fuel, &mut out);
            if scanned.is_err() {
                let used = prog.fuel_budget() - fuel;
                let _ = env.charge_fuel(ctx, &req.creds, used);
                return RespPayload::Err(format!(
                    "pushdown: out of fuel after {} values",
                    out.records
                ));
            }
            if out.matches > before_matches {
                matched_keys.push(k.clone());
            }
        }
        let used = prog.fuel_budget() - fuel;
        if let Err(retry_vns) = env.charge_fuel(ctx, &req.creds, used) {
            return RespPayload::Err(format!(
                "pushdown: tenant {} over fuel budget, retry in {retry_vns} vns",
                req.creds.tenant.as_u32()
            ));
        }
        match prog.action() {
            Action::Select => RespPayload::Names(matched_keys),
            Action::Count | Action::Sum => {
                let reply = labstor_pushdown::AggReply {
                    records: out.records,
                    matches: out.matches,
                    agg: out.agg,
                    fuel_used: used,
                };
                match labstor_ipc::InlineData::from_slice(&reply.encode()) {
                    Some(d) => RespPayload::Inline(d),
                    None => RespPayload::Err("pushdown: aggregate too large".into()),
                }
            }
        }
    }
}

impl LabMod for LabKvs {
    fn type_name(&self) -> &'static str {
        "labkvs"
    }

    fn mod_type(&self) -> ModType {
        ModType::Kvs
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let before = ctx.busy();
        let resp = match &req.payload {
            Payload::Kvs(KvsOp::Put { key, value }) => {
                ctx.advance(KV_CPU_NS);
                let Some(blocks) = self.alloc_blocks(ctx, req.core, value.len()) else {
                    return RespPayload::Err("no space".into());
                };
                // One downstream write per contiguous block run.
                let mut i = 0usize;
                while i < blocks.len() {
                    let mut j = i;
                    while j + 1 < blocks.len() && blocks[j + 1] == blocks[j] + 1 {
                        j += 1;
                    }
                    let byte_from = i * KV_BLOCK;
                    let byte_to = ((j + 1) * KV_BLOCK).min(value.len().next_multiple_of(KV_BLOCK));
                    let mut payload = vec![0u8; byte_to - byte_from];
                    let copy_to = value.len().min(byte_to) - byte_from.min(value.len());
                    if byte_from < value.len() {
                        labstor_ipc::note_payload_copy(copy_to);
                        // copy-ok: legacy Vec put path; counted just above (PutBuf avoids this)
                        payload[..copy_to].copy_from_slice(&value[byte_from..byte_from + copy_to]);
                    }
                    let mut fwd = Request::new(
                        req.id,
                        req.stack,
                        Payload::Block(BlockOp::Write {
                            lba: blocks[i] * BLOCK_SECTORS,
                            data: payload,
                        }),
                        req.creds,
                    );
                    fwd.vertex = env.vertex;
                    fwd.core = req.core;
                    let r = env.forward(ctx, fwd);
                    if !r.is_ok() {
                        return r;
                    }
                    i = j + 1;
                }
                self.commit_put(ctx, req.core, key, value.len(), blocks);
                RespPayload::Len(value.len())
            }
            Payload::Kvs(KvsOp::PutBuf { key, buf }) => self.do_put_buf(ctx, env, &req, key, buf),
            Payload::Kvs(KvsOp::Get { key }) => {
                ctx.advance(KV_CPU_NS);
                let loc = self.shard(key).read().get(key).cloned();
                match loc {
                    Some(loc) => self.read_value(ctx, env, &req, &loc),
                    None => RespPayload::Err(format!("no key '{key}'")),
                }
            }
            Payload::Kvs(KvsOp::GetWhere { key, prog }) => {
                self.do_get_where(ctx, env, &req, key, prog)
            }
            Payload::Kvs(KvsOp::ScanWhere { prefix, prog }) => {
                self.do_scan_where(ctx, env, &req, prefix, prog)
            }
            Payload::Kvs(KvsOp::Remove { key }) => {
                ctx.advance(KV_CPU_NS);
                let removed = self.shard(key).write().remove(key);
                match removed {
                    Some(_) => {
                        self.log(ctx, req.core, &KvRecord::Remove { key: key.clone() });
                        RespPayload::Ok
                    }
                    None => RespPayload::Err(format!("no key '{key}'")),
                }
            }
            _ => env.forward(ctx, req),
        };
        self.perf.observe(ctx.busy() - before);
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        self.perf.est_ns(KV_CPU_NS + req.payload_bytes() as u64)
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<LabKvs>() {
            self.perf.absorb(&prev.perf);
            for (mine, theirs) in self.shards.iter().zip(prev.shards.iter()) {
                *mine.write() = theirs.read().clone();
            }
            // Carry journal cursors so post-upgrade flushes append after
            // the old instance's transactions instead of restarting the
            // log (which would orphan pre-upgrade entries on a crash).
            // Absorb first: it drains the old instance's flush daemon, so
            // the cursors copied below are final and its durability clock
            // / error latch carry over.
            self.flush.absorb(&prev.flush);
            for (mine, theirs) in self.logs.iter().zip(prev.logs.iter()) {
                let mut m = mine.lock();
                let t = theirs.lock();
                m.buffer = t.buffer.clone();
                m.next_block = t.next_block;
                m.next_seq = t.next_seq;
            }
        }
    }

    fn state_repair(&self) {
        self.replay_from_device();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the factory. Params: `{"device": "<name>", "workers": <n>,
/// "levels": <n>}` (levels: `GetWhere` resubmission depth, default 2).
pub fn install(mm: &ModuleManager, devices: &Arc<DeviceRegistry>) {
    let reg = devices.clone();
    mm.register_factory(
        "labkvs",
        Arc::new(move |params| {
            let name = device_param(params);
            let dev = reg
                .block(&name)
                .unwrap_or_else(|| panic!("no block device '{name}'"));
            let workers = params.get("workers").and_then(|v| v.as_u64()).unwrap_or(8) as usize;
            let levels = params.get("levels").and_then(|v| v.as_u64()).unwrap_or(2) as u32;
            Arc::new(LabKvs::with_levels(dev, workers, levels)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;
    use labstor_sim::DeviceKind;

    fn setup() -> (ModuleManager, LabStack) {
        let devices = DeviceRegistry::new();
        devices.add_preset("nvme0", DeviceKind::Nvme);
        let mm = ModuleManager::new();
        install(&mm, &devices);
        crate::drivers::install(&mm, &devices);
        mm.instantiate(
            "kv",
            "labkvs",
            &serde_json::json!({"device": "nvme0", "workers": 4}),
        )
        .unwrap();
        mm.instantiate("drv", "spdk", &serde_json::json!({"device": "nvme0"}))
            .unwrap();
        let stack = LabStack {
            id: 1,
            mount: "kv::/".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "kv".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "drv".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        (mm, stack)
    }

    fn exec(mm: &ModuleManager, stack: &LabStack, payload: Payload, ctx: &mut Ctx) -> RespPayload {
        let env = StackEnv {
            stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        mm.get("kv")
            .unwrap()
            .process(ctx, Request::new(1, 1, payload, Credentials::ROOT), &env)
    }

    #[test]
    fn put_get_roundtrip() {
        let (mm, stack) = setup();
        let mut ctx = Ctx::new();
        let value: Vec<u8> = (0..10_000).map(|i| (i % 249) as u8).collect();
        let w = exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Put {
                key: "a".into(),
                value: value.clone(),
            }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(n) if n == value.len()));
        let r = exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Get { key: "a".into() }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(d) if d == value));
    }

    #[test]
    fn overwrite_replaces_value() {
        let (mm, stack) = setup();
        let mut ctx = Ctx::new();
        exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Put {
                key: "k".into(),
                value: vec![1u8; 100],
            }),
            &mut ctx,
        );
        exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Put {
                key: "k".into(),
                value: vec![2u8; 50],
            }),
            &mut ctx,
        );
        let r = exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Get { key: "k".into() }),
            &mut ctx,
        );
        assert_eq!(r.data_bytes(), Some(&[2u8; 50][..]));
    }

    #[test]
    fn put_buf_roundtrips_with_zero_copy_full_blocks() {
        let (mm, stack) = setup();
        let mut ctx = Ctx::new();
        // Not a block multiple: two full blocks ride as refcounted
        // slices, the 777-byte tail is zero-padded and copied.
        let n = KV_BLOCK * 2 + 777;
        let mut h = labstor_ipc::default_pool()
            .alloc(n)
            .expect("pool has a big-enough class");
        h.write_with(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i % 251) as u8;
            }
        });
        let expect = h.to_vec();
        let w = exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::PutBuf {
                key: "zc".into(),
                buf: h,
            }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(m) if m == n));
        let r = exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Get { key: "zc".into() }),
            &mut ctx,
        );
        assert_eq!(r.data_bytes(), Some(&expect[..]));
    }

    #[test]
    fn single_block_get_answers_with_pool_buffer() {
        let (mm, stack) = setup();
        let mut ctx = Ctx::new();
        let value = vec![0x5au8; 500];
        exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Put {
                key: "s".into(),
                value: value.clone(),
            }),
            &mut ctx,
        );
        let r = exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Get { key: "s".into() }),
            &mut ctx,
        );
        match r {
            RespPayload::DataBuf(h) => assert_eq!(h.as_slice(), &value[..]),
            other => panic!("expected a zero-copy DataBuf, got {other:?}"),
        }
    }

    #[test]
    fn remove_then_get_fails() {
        let (mm, stack) = setup();
        let mut ctx = Ctx::new();
        exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Put {
                key: "x".into(),
                value: vec![1],
            }),
            &mut ctx,
        );
        assert!(exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Remove { key: "x".into() }),
            &mut ctx
        )
        .is_ok());
        assert!(!exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Get { key: "x".into() }),
            &mut ctx
        )
        .is_ok());
        assert!(!exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Remove { key: "x".into() }),
            &mut ctx
        )
        .is_ok());
    }

    #[test]
    fn empty_value_roundtrips() {
        let (mm, stack) = setup();
        let mut ctx = Ctx::new();
        exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Put {
                key: "empty".into(),
                value: vec![],
            }),
            &mut ctx,
        );
        let r = exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Get {
                key: "empty".into(),
            }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(d) if d.is_empty()));
    }

    #[test]
    fn recovery_replays_puts_and_removes() {
        let (mm, stack) = setup();
        let mut ctx = Ctx::new();
        let value: Vec<u8> = (0..5000).map(|i| (i % 241) as u8).collect();
        exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Put {
                key: "keep".into(),
                value: value.clone(),
            }),
            &mut ctx,
        );
        exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Put {
                key: "drop".into(),
                value: vec![9u8; 10],
            }),
            &mut ctx,
        );
        exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Remove { key: "drop".into() }),
            &mut ctx,
        );
        let kv_mod = mm.get("kv").unwrap();
        let kv = kv_mod.as_any().downcast_ref::<LabKvs>().unwrap();
        kv.flush_logs(&mut ctx).unwrap();
        kv.replay_from_device();
        assert_eq!(kv.key_count(), 1);
        let r = exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Get { key: "keep".into() }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(d) if d == value));
    }

    #[test]
    fn uncommitted_kv_txn_is_discarded_and_reported() {
        let (mm, stack) = setup();
        let mut ctx = Ctx::new();
        exec(
            &mm,
            &stack,
            Payload::Kvs(KvsOp::Put {
                key: "durable".into(),
                value: vec![1u8; 64],
            }),
            &mut ctx,
        );
        let kv_mod = mm.get("kv").unwrap();
        let kv = kv_mod.as_any().downcast_ref::<LabKvs>().unwrap();
        kv.flush_logs(&mut ctx).unwrap();
        // Crash between the payload and commit writes of a second
        // transaction: a valid seq-2 body frame with no commit record.
        let mut payload = Vec::new();
        KvRecord::Put {
            key: "ghost".into(),
            len: 8,
            blocks: vec![4242],
        }
        .encode(&mut payload);
        let (body, _commit_never_written) = journal::encode_txn(2, &payload, KV_BLOCK);
        let next = kv.logs[0].lock().next_block;
        kv.log_device
            .write(&mut ctx, next * BLOCK_SECTORS, &body)
            .unwrap();
        let rep = kv.replay_from_device();
        assert_eq!(rep.txns_replayed, 1);
        assert_eq!(rep.txns_discarded, 1);
        assert_eq!(rep.records_discarded, 1);
        assert!(rep.torn_tail);
        assert_eq!(kv.key_count(), 1, "ghost was never acked");
        assert_eq!(kv.last_repair(), Some(rep));
    }

    #[test]
    fn kv_record_roundtrip() {
        let records = vec![
            KvRecord::Put {
                key: "alpha".into(),
                len: 777,
                blocks: vec![5, 6, 7],
            },
            KvRecord::Remove {
                key: "alpha".into(),
            },
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        buf.push(0);
        let mut pos = 0;
        let mut decoded = Vec::new();
        while let Some(r) = KvRecord::decode(&buf, &mut pos) {
            decoded.push(r);
        }
        assert_eq!(decoded, records);
    }
}
