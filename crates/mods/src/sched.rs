//! I/O scheduler LabMods (Fig. 8's Lab-NoOp and Lab-Blk).
//!
//! "We integrate the No-Op and blk-switch I/O schedulers into LabStor and
//! compare against their in-kernel counterparts." A scheduler LabMod sits
//! between a filesystem/cache stage and a Driver LabMod: it picks the
//! hardware queue (`qid_hint`) and forwards. Because it runs in userspace
//! there is no block-layer bookkeeping around it — the ~20% latency
//! reduction the paper reports over the in-kernel versions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use labstor_core::{
    BlockOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_sim::{Ctx, SimDevice};
use labstor_telemetry::PerfCounters;

use crate::devices::{device_param, DeviceRegistry};

/// Scheduler stage cost: keying the request to a hardware queue and
/// preparing the dispatch descriptor the driver submits ("the No-Op I/O
/// scheduler only amounts to about 5% of I/O time, as it only keys a
/// request to a hardware queue" — Fig. 4a).
const LAB_SCHED_NS: u64 = 850;
/// Request size at or below which blk-switch treats a request as
/// latency-sensitive.
const LATENCY_SIZE_BYTES: usize = 16 * 1024;

/// Lab-NoOp: map to a hardware queue by originating core.
pub struct NoopSchedMod {
    queues: usize,
    perf: PerfCounters,
}

impl NoopSchedMod {
    /// Schedule across `queues` hardware queues.
    pub fn new(queues: usize) -> Self {
        NoopSchedMod {
            queues: queues.max(1),
            perf: PerfCounters::new(),
        }
    }
}

// labmod-default-ok: scheduling decisions are per-request and the queue-pressure history is advisory; a fresh instance re-learns it, so defaults are safe
impl LabMod for NoopSchedMod {
    fn type_name(&self) -> &'static str {
        "noop_sched"
    }

    fn mod_type(&self) -> ModType {
        ModType::Scheduler
    }

    fn process(&self, ctx: &mut Ctx, mut req: Request, env: &StackEnv<'_>) -> RespPayload {
        ctx.advance(LAB_SCHED_NS);
        self.perf.observe(LAB_SCHED_NS);
        req.qid_hint = Some(req.core % self.queues);
        env.forward(ctx, req)
    }

    fn est_processing_time(&self, _req: &Request) -> u64 {
        self.perf.est_ns(LAB_SCHED_NS)
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<NoopSchedMod>() {
            self.perf.absorb(&prev.perf);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Lab-Blk: blk-switch-like steering on live queue depths.
pub struct BlkSwitchSchedMod {
    dev: Arc<SimDevice>,
    /// Depth above which throughput requests spill to the least-loaded
    /// queue.
    congestion_threshold: usize,
    /// Round-robin cursor for spreading latency requests.
    cursor: AtomicUsize,
    /// Bulk-traffic history (app steering).
    history: labstor_kernel::sched::BulkHistory,
    perf: PerfCounters,
}

impl BlkSwitchSchedMod {
    /// Steer over `dev`'s hardware queues.
    pub fn new(dev: Arc<SimDevice>, congestion_threshold: usize) -> Self {
        BlkSwitchSchedMod {
            history: labstor_kernel::sched::BulkHistory::new(dev.num_queues()),
            dev,
            congestion_threshold,
            cursor: AtomicUsize::new(0),
            perf: PerfCounters::new(),
        }
    }

    fn least_loaded(&self) -> usize {
        labstor_kernel::sched::least_loaded_queue(
            &self.dev,
            &self.history,
            self.cursor.fetch_add(1, Ordering::Relaxed), // relaxed-ok: fresh-id allocation; atomicity alone suffices
        )
    }
}

// labmod-default-ok: scheduling decisions are per-request and the queue-pressure history is advisory; a fresh instance re-learns it, so defaults are safe
impl LabMod for BlkSwitchSchedMod {
    fn type_name(&self) -> &'static str {
        "blk_switch_sched"
    }

    fn mod_type(&self) -> ModType {
        ModType::Scheduler
    }

    fn process(&self, ctx: &mut Ctx, mut req: Request, env: &StackEnv<'_>) -> RespPayload {
        ctx.advance(LAB_SCHED_NS);
        self.perf.observe(LAB_SCHED_NS);
        let is_latency = matches!(
            &req.payload,
            Payload::Block(BlockOp::Read { len, .. } | BlockOp::ReadBuf { len, .. })
                if *len <= LATENCY_SIZE_BYTES
        ) || matches!(
            &req.payload,
            Payload::Block(BlockOp::Write { data, .. }) if data.len() <= LATENCY_SIZE_BYTES
        ) || matches!(
            &req.payload,
            Payload::Block(BlockOp::WriteBuf { buf, .. }) if buf.len() <= LATENCY_SIZE_BYTES
        );
        let n = self.dev.num_queues();
        let qid = if is_latency {
            // Steer latency requests to the least-loaded channel group.
            self.least_loaded()
        } else {
            let home = req.core % n;
            let qid = if self.dev.queue_depth(home) > self.congestion_threshold {
                self.least_loaded()
            } else {
                home
            };
            self.history.record(qid, req.payload_bytes());
            qid
        };
        req.qid_hint = Some(qid);
        env.forward(ctx, req)
    }

    fn est_processing_time(&self, _req: &Request) -> u64 {
        self.perf.est_ns(LAB_SCHED_NS)
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<BlkSwitchSchedMod>() {
            self.perf.absorb(&prev.perf);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register scheduler factories.
///
/// * `noop_sched` params: `{"queues": <n>}` (default 32).
/// * `blk_switch_sched` params: `{"device": "<name>",
///   "congestion_threshold": <n>}` (default 64).
pub fn install(mm: &ModuleManager) {
    mm.register_factory(
        "noop_sched",
        Arc::new(|params| {
            let queues = params.get("queues").and_then(|v| v.as_u64()).unwrap_or(32) as usize;
            Arc::new(NoopSchedMod::new(queues)) as Arc<dyn LabMod>
        }),
    );
}

/// Blk-switch needs device visibility; registered separately with the
/// registry in scope.
pub fn install_blk_switch(mm: &ModuleManager, devices: &Arc<DeviceRegistry>) {
    let reg = devices.clone();
    mm.register_factory(
        "blk_switch_sched",
        Arc::new(move |params| {
            let name = device_param(params);
            let dev = reg
                .block(&name)
                .unwrap_or_else(|| panic!("no block device '{name}'"));
            let threshold = params
                .get("congestion_threshold")
                .and_then(|v| v.as_u64())
                .unwrap_or(64) as usize;
            Arc::new(BlkSwitchSchedMod::new(dev, threshold)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;
    use labstor_sim::{BlockDevice, DeviceKind, IoRequest};

    /// Terminal mod recording the qid hint it received.
    struct HintProbe {
        seen: AtomicUsize,
    }
    impl LabMod for HintProbe {
        fn type_name(&self) -> &'static str {
            "hint_probe"
        }
        fn mod_type(&self) -> ModType {
            ModType::Driver
        }
        fn process(&self, _ctx: &mut Ctx, req: Request, _env: &StackEnv<'_>) -> RespPayload {
            self.seen
                .store(req.qid_hint.unwrap_or(usize::MAX), Ordering::Relaxed);
            RespPayload::Ok
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn run_sched(mm: &ModuleManager, sched_uuid: &str, req: Request) -> usize {
        let probe = Arc::new(HintProbe {
            seen: AtomicUsize::new(usize::MAX),
        });
        mm.insert_instance("probe", probe.clone());
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: sched_uuid.into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "probe".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        let env = StackEnv {
            stack: &stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        let m = mm.get(sched_uuid).unwrap();
        let mut ctx = Ctx::new();
        assert!(m.process(&mut ctx, req, &env).is_ok());
        probe.seen.load(Ordering::Relaxed)
    }

    #[test]
    fn noop_maps_by_core() {
        let mm = ModuleManager::new();
        install(&mm);
        mm.instantiate("n", "noop_sched", &serde_json::json!({"queues": 8}))
            .unwrap();
        let mut req = Request::new(
            1,
            1,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![0u8; 512],
            }),
            Credentials::ROOT,
        );
        req.core = 11;
        assert_eq!(run_sched(&mm, "n", req), 11 % 8);
    }

    #[test]
    fn blk_switch_avoids_congested_queue() {
        let devices = DeviceRegistry::new();
        let dev = devices.add_preset("nvme0", DeviceKind::Nvme);
        let mm = ModuleManager::new();
        install_blk_switch(&mm, &devices);
        mm.instantiate(
            "b",
            "blk_switch_sched",
            &serde_json::json!({"device": "nvme0"}),
        )
        .unwrap();
        // Congest queue 3.
        for i in 0..10 {
            dev.submit_at(3, IoRequest::write(i * 8, vec![0u8; 512], i), 0)
                .unwrap();
        }
        let mut req = Request::new(
            1,
            1,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![0u8; 4096],
            }),
            Credentials::ROOT,
        );
        req.core = 3; // home queue is the congested one
        let qid = run_sched(&mm, "b", req);
        assert_ne!(qid, 3, "latency write must be steered away");
    }

    #[test]
    fn blk_switch_keeps_bulk_affinity_when_clear() {
        let devices = DeviceRegistry::new();
        devices.add_preset("nvme0", DeviceKind::Nvme);
        let mm = ModuleManager::new();
        install_blk_switch(&mm, &devices);
        mm.instantiate(
            "b",
            "blk_switch_sched",
            &serde_json::json!({"device": "nvme0"}),
        )
        .unwrap();
        let mut req = Request::new(
            1,
            1,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![0u8; 64 * 1024],
            }),
            Credentials::ROOT,
        );
        req.core = 7;
        let qid = run_sched(&mm, "b", req);
        assert_eq!(qid, 7);
    }
}
