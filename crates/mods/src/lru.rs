//! The LRU page-cache LabMod (the paper's "page caching (LRU)" mod,
//! Fig. 4a's 17% stage).
//!
//! A userspace block cache: write-through by default (data is copied into
//! the cache and forwarded to the next stage), optional write-back
//! (dirty blocks held until flush/eviction). Keys are block LBAs; the
//! contract is block-aligned requests, which every bundled filesystem
//! LabMod honors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use labstor_core::{
    BlockOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_kernel::page_cache::LruMap;
use labstor_sim::Ctx;
use labstor_telemetry::PerfCounters;

/// Per-block lookup cost (userspace hashmap, cheaper than the kernel's
/// locked tree).
const LOOKUP_NS: u64 = 150;
/// Copy cost per KB into/out of the cache (same memcpy as the kernel's —
/// the savings come from lock-free access, not magic memory).
const COPY_NS_PER_KB: u64 = 300;

fn copy_cost(bytes: usize) -> u64 {
    (bytes as u64 * COPY_NS_PER_KB) / 1024
}

struct CacheBlock {
    data: Vec<u8>,
    dirty: bool,
}

/// The LRU cache LabMod.
pub struct LruCacheMod {
    cache: Mutex<LruMap<u64, CacheBlock>>,
    capacity_blocks: usize,
    write_back: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    perf: PerfCounters,
    /// Downstream busy time, subtracted so `est_total_time` is exclusive.
    downstream_ns: AtomicU64,
}

impl LruCacheMod {
    /// Cache of `capacity_bytes` (4 KB block granularity).
    pub fn new(capacity_bytes: usize, write_back: bool) -> Self {
        LruCacheMod {
            cache: Mutex::new(LruMap::new()),
            capacity_blocks: (capacity_bytes / 4096).max(1),
            write_back,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            perf: PerfCounters::new(),
            downstream_ns: AtomicU64::new(0),
        }
    }

    /// Forward, attributing the downstream busy time to downstream.
    fn fwd(&self, ctx: &mut Ctx, env: &StackEnv<'_>, req: Request) -> RespPayload {
        let before = ctx.busy();
        let r = env.forward(ctx, req);
        self.downstream_ns
            .fetch_add(ctx.busy() - before, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        r
    }

    /// (hits, misses) so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        // relaxed-ok: stat counter; readers tolerate lag
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drain all cached blocks oldest-first (cross-policy hot swaps pull
    /// warm state out with this).
    pub fn drain_blocks(&self) -> Vec<(u64, Vec<u8>)> {
        let mut cache = self.cache.lock();
        let mut out = Vec::with_capacity(cache.len());
        while let Some((lba, b)) = cache.pop_lru() {
            out.push((lba, b.data));
        }
        out
    }

    /// Evict past capacity; returns dirty victims needing writeback.
    fn evict(cache: &mut LruMap<u64, CacheBlock>, cap: usize) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        while cache.len() > cap {
            match cache.pop_lru() {
                Some((lba, b)) if b.dirty => out.push((lba, b.data)),
                Some(_) => {}
                None => break,
            }
        }
        out
    }
}

// labmod-default-ok: write-through cache: contents are clean and re-warm from misses after a crash; state_update migrates them across upgrades
impl LabMod for LruCacheMod {
    fn type_name(&self) -> &'static str {
        "lru_cache"
    }

    fn mod_type(&self) -> ModType {
        ModType::Cache
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let before = ctx.busy();
        let resp = match &req.payload {
            Payload::Block(BlockOp::Write { lba, data }) => {
                // One copy into the cache page, one into the DMA-safe
                // buffer handed downstream — "the page cache takes 17% of
                // time due to data copying" (Fig. 4a).
                ctx.advance(LOOKUP_NS + 2 * copy_cost(data.len()));
                let victims = {
                    let mut cache = self.cache.lock();
                    cache.insert(
                        *lba,
                        CacheBlock {
                            data: data.clone(),
                            dirty: self.write_back,
                        },
                    );
                    Self::evict(&mut cache, self.capacity_blocks)
                };
                // Write-back: flush evicted dirty blocks downstream.
                for (vlba, vdata) in victims {
                    let mut flush = req.clone();
                    flush.payload = Payload::Block(BlockOp::Write {
                        lba: vlba,
                        data: vdata,
                    });
                    let r = self.fwd(ctx, env, flush);
                    if !r.is_ok() {
                        return r;
                    }
                }
                if self.write_back {
                    RespPayload::Len(data.len())
                } else {
                    self.fwd(ctx, env, req)
                }
            }
            Payload::Block(BlockOp::Read { lba, len }) => {
                ctx.advance(LOOKUP_NS);
                let cached: Option<Vec<u8>> = {
                    let mut cache = self.cache.lock();
                    cache
                        .get(lba)
                        .filter(|b| b.data.len() >= *len)
                        .map(|b| b.data[..*len].to_vec())
                };
                match cached {
                    Some(data) => {
                        self.hits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                        ctx.advance(copy_cost(data.len()));
                        RespPayload::Data(data)
                    }
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                        let lba = *lba;
                        let (id, stack, creds, core, vertex) =
                            (req.id, req.stack, req.creds, req.core, env.vertex);
                        let resp = self.fwd(ctx, env, req);
                        if let RespPayload::Data(data) = &resp {
                            ctx.advance(copy_cost(data.len()));
                            let mut cache = self.cache.lock();
                            cache.insert(
                                lba,
                                CacheBlock {
                                    data: data.clone(),
                                    dirty: false,
                                },
                            );
                            let victims = Self::evict(&mut cache, self.capacity_blocks);
                            // Read-path eviction of dirty blocks re-queues
                            // them; dropping writes is not an option.
                            drop(cache);
                            for (vlba, vdata) in victims {
                                let mut flush = Request::new(
                                    id,
                                    stack,
                                    Payload::Block(BlockOp::Write {
                                        lba: vlba,
                                        data: vdata,
                                    }),
                                    creds,
                                );
                                flush.vertex = vertex;
                                flush.core = core;
                                let r = self.fwd(ctx, env, flush);
                                if !r.is_ok() {
                                    return r;
                                }
                            }
                        }
                        resp
                    }
                }
            }
            Payload::Block(BlockOp::Flush) => {
                // Flush all dirty blocks, then pass the barrier down.
                let dirty: Vec<(u64, Vec<u8>)> = {
                    let mut cache = self.cache.lock();
                    let lbas: Vec<u64> = cache
                        .iter()
                        .filter(|(_, b)| b.dirty)
                        .map(|(lba, _)| *lba)
                        .collect();
                    lbas.into_iter()
                        .filter_map(|lba| {
                            cache.get(&lba).map(|b| {
                                b.dirty = false;
                                (lba, b.data.clone())
                            })
                        })
                        .collect()
                };
                for (vlba, vdata) in dirty {
                    let mut w = req.clone();
                    w.payload = Payload::Block(BlockOp::Write {
                        lba: vlba,
                        data: vdata,
                    });
                    let r = self.fwd(ctx, env, w);
                    if !r.is_ok() {
                        return r;
                    }
                }
                self.fwd(ctx, env, req)
            }
            _ => self.fwd(ctx, env, req),
        };
        let downstream = self.downstream_ns.swap(0, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.perf
            .observe((ctx.busy() - before).saturating_sub(downstream));
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        self.perf
            .est_ns(LOOKUP_NS + 2 * copy_cost(req.payload_bytes()))
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        // Hot-swapping cache policies: warm state moves across.
        if let Some(prev) = old.as_any().downcast_ref::<LruCacheMod>() {
            self.perf.absorb(&prev.perf);
            let mut mine = self.cache.lock();
            let mut theirs = prev.cache.lock();
            // Drain oldest-first so recency order is preserved on insert.
            let mut entries = Vec::new();
            while let Some(e) = theirs.pop_lru() {
                entries.push(e);
            }
            for (lba, block) in entries {
                mine.insert(lba, block);
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the factory. Params: `{"capacity_bytes": <n>, "write_back":
/// <bool>}` (defaults: 64 MiB, write-through).
pub fn install(mm: &ModuleManager) {
    mm.register_factory(
        "lru_cache",
        Arc::new(|params| {
            let cap = params
                .get("capacity_bytes")
                .and_then(|v| v.as_u64())
                .unwrap_or(64 << 20) as usize;
            let wb = params
                .get("write_back")
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            Arc::new(LruCacheMod::new(cap, wb)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;

    /// Terminal "device" that stores blocks in a hashmap.
    struct MemDev {
        blocks: Mutex<std::collections::HashMap<u64, Vec<u8>>>,
        writes: AtomicU64,
        reads: AtomicU64,
    }
    impl MemDev {
        fn new() -> Self {
            MemDev {
                blocks: Mutex::new(std::collections::HashMap::new()),
                writes: AtomicU64::new(0),
                reads: AtomicU64::new(0),
            }
        }
    }
    impl LabMod for MemDev {
        fn type_name(&self) -> &'static str {
            "memdev"
        }
        fn mod_type(&self) -> ModType {
            ModType::Driver
        }
        fn process(&self, _ctx: &mut Ctx, req: Request, _env: &StackEnv<'_>) -> RespPayload {
            match req.payload {
                Payload::Block(BlockOp::Write { lba, data }) => {
                    self.writes.fetch_add(1, Ordering::Relaxed);
                    let len = data.len();
                    self.blocks.lock().insert(lba, data);
                    RespPayload::Len(len)
                }
                Payload::Block(BlockOp::Read { lba, len }) => {
                    self.reads.fetch_add(1, Ordering::Relaxed);
                    match self.blocks.lock().get(&lba) {
                        Some(d) => RespPayload::Data(d[..len.min(d.len())].to_vec()),
                        None => RespPayload::Data(vec![0u8; len]),
                    }
                }
                _ => RespPayload::Ok,
            }
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn setup(cache_params: serde_json::Value) -> (ModuleManager, LabStack, Arc<MemDev>) {
        let mm = ModuleManager::new();
        install(&mm);
        mm.instantiate("cache", "lru_cache", &cache_params).unwrap();
        let dev = Arc::new(MemDev::new());
        mm.insert_instance("dev", dev.clone());
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "cache".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "dev".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        (mm, stack, dev)
    }

    fn exec(mm: &ModuleManager, stack: &LabStack, payload: Payload, ctx: &mut Ctx) -> RespPayload {
        let env = StackEnv {
            stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        let m = mm.get("cache").unwrap();
        m.process(ctx, Request::new(1, 1, payload, Credentials::ROOT), &env)
    }

    #[test]
    fn write_through_reaches_device_and_read_hits() {
        let (mm, stack, dev) = setup(serde_json::json!({}));
        let mut ctx = Ctx::new();
        let data = vec![9u8; 4096];
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 8,
                data: data.clone(),
            }),
            &mut ctx,
        );
        assert_eq!(dev.writes.load(Ordering::Relaxed), 1);
        let r = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Read { lba: 8, len: 4096 }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(d) if d == data));
        assert_eq!(
            dev.reads.load(Ordering::Relaxed),
            0,
            "read must be a cache hit"
        );
        let cache = mm.get("cache").unwrap();
        let lru = cache.as_any().downcast_ref::<LruCacheMod>().unwrap();
        assert_eq!(lru.hit_stats(), (1, 0));
    }

    #[test]
    fn miss_fetches_and_caches() {
        let (mm, stack, dev) = setup(serde_json::json!({}));
        let mut ctx = Ctx::new();
        // Prime the device directly (bypass cache).
        dev.blocks.lock().insert(16, vec![3u8; 4096]);
        let r = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Read { lba: 16, len: 4096 }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(_)));
        assert_eq!(dev.reads.load(Ordering::Relaxed), 1);
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Read { lba: 16, len: 4096 }),
            &mut ctx,
        );
        assert_eq!(dev.reads.load(Ordering::Relaxed), 1, "second read hits");
    }

    #[test]
    fn write_back_defers_until_flush() {
        let (mm, stack, dev) =
            setup(serde_json::json!({"write_back": true, "capacity_bytes": 1 << 20}));
        let mut ctx = Ctx::new();
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![1u8; 4096],
            }),
            &mut ctx,
        );
        assert_eq!(
            dev.writes.load(Ordering::Relaxed),
            0,
            "write-back holds data"
        );
        exec(&mm, &stack, Payload::Block(BlockOp::Flush), &mut ctx);
        assert_eq!(
            dev.writes.load(Ordering::Relaxed),
            1,
            "flush writes it back"
        );
        assert!(dev.blocks.lock().contains_key(&0));
    }

    #[test]
    fn write_back_eviction_writes_victims() {
        // 2-block cache, 3 writes → first block must land on the device.
        let (mm, stack, dev) =
            setup(serde_json::json!({"write_back": true, "capacity_bytes": 8192}));
        let mut ctx = Ctx::new();
        for i in 0..3u64 {
            exec(
                &mm,
                &stack,
                Payload::Block(BlockOp::Write {
                    lba: i * 8,
                    data: vec![i as u8; 4096],
                }),
                &mut ctx,
            );
        }
        assert_eq!(dev.writes.load(Ordering::Relaxed), 1);
        assert_eq!(dev.blocks.lock().get(&0).unwrap()[0], 0);
    }

    #[test]
    fn state_update_moves_warm_blocks() {
        let (mm, stack, _dev) = setup(serde_json::json!({}));
        let mut ctx = Ctx::new();
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 8,
                data: vec![5u8; 4096],
            }),
            &mut ctx,
        );
        let old = mm.get("cache").unwrap();
        let new_cache = LruCacheMod::new(64 << 20, false);
        new_cache.state_update(old.as_ref());
        assert_eq!(new_cache.cache.lock().len(), 1, "warm block migrated");
    }
}
