//! The LRU page-cache LabMod (the paper's "page caching (LRU)" mod,
//! Fig. 4a's 17% stage).
//!
//! A userspace block cache: write-through by default (data is copied into
//! the cache and forwarded to the next stage), optional write-back
//! (dirty blocks held until flush/eviction). Keys are block LBAs; the
//! contract is block-aligned requests, which every bundled filesystem
//! LabMod honors.
//!
//! Two perf features ride on top of the classic design:
//!
//! * **Zero-copy arms** — `WriteBuf` inserts the pool handle by refcount
//!   bump, `ReadBuf` hits hand back a [`BufHandle`] slice with no memcpy
//!   (and no virtual copy charge). Legacy `Write`/`Read` keep the copying
//!   cost model and are counted via the payload-copy counter.
//! * **Sharding + in-flight miss guard** — the map splits into N
//!   independently locked shards (`shards` factory param, default 1), and
//!   a miss claims its lba in an [`InflightSet`] before fetching, so two
//!   racing misses on the same block fetch it downstream exactly once.
//!
//! [`BufHandle`]: labstor_ipc::BufHandle

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use labstor_core::{
    BlockOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_kernel::page_cache::LruMap;
use labstor_sim::Ctx;
use labstor_telemetry::PerfCounters;

use crate::cache_common::{shard_of, CacheData, InflightSet};

/// Per-block lookup cost (userspace hashmap, cheaper than the kernel's
/// locked tree).
const LOOKUP_NS: u64 = 150;
/// Copy cost per KB into/out of the cache (same memcpy as the kernel's —
/// the savings come from lock-free access, not magic memory).
const COPY_NS_PER_KB: u64 = 300;

fn copy_cost(bytes: usize) -> u64 {
    (bytes as u64 * COPY_NS_PER_KB) / 1024
}

struct CacheBlock {
    data: CacheData,
    dirty: bool,
}

/// The LRU cache LabMod.
pub struct LruCacheMod {
    shards: Box<[Mutex<LruMap<u64, CacheBlock>>]>,
    inflight: InflightSet,
    per_shard_blocks: usize,
    write_back: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    perf: PerfCounters,
    /// Downstream busy time, subtracted so `est_total_time` is exclusive.
    downstream_ns: AtomicU64,
}

impl LruCacheMod {
    /// Cache of `capacity_bytes` (4 KB block granularity), single shard —
    /// the historical layout, with exact global LRU eviction order.
    pub fn new(capacity_bytes: usize, write_back: bool) -> Self {
        Self::with_shards(capacity_bytes, write_back, 1)
    }

    /// Cache of `capacity_bytes` split over `shards` independently locked
    /// LRU maps (capacity divides evenly; eviction is per shard).
    pub fn with_shards(capacity_bytes: usize, write_back: bool, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_blocks = (capacity_bytes / 4096).max(1);
        LruCacheMod {
            shards: (0..shards).map(|_| Mutex::new(LruMap::new())).collect(),
            inflight: InflightSet::new(),
            per_shard_blocks: capacity_blocks.div_ceil(shards).max(1),
            write_back,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            perf: PerfCounters::new(),
            downstream_ns: AtomicU64::new(0),
        }
    }

    /// Number of shards the map is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, lba: u64) -> &Mutex<LruMap<u64, CacheBlock>> {
        &self.shards[shard_of(lba, self.shards.len())]
    }

    /// Forward, attributing the downstream busy time to downstream.
    fn fwd(&self, ctx: &mut Ctx, env: &StackEnv<'_>, req: Request) -> RespPayload {
        let before = ctx.busy();
        let r = env.forward(ctx, req);
        self.downstream_ns
            .fetch_add(ctx.busy() - before, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        r
    }

    /// (hits, misses) so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        // relaxed-ok: stat counter; readers tolerate lag
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drain all cached blocks oldest-first per shard (cross-policy hot
    /// swaps pull warm state out with this). Handles move out without a
    /// copy; legacy vectors move as-is.
    pub fn drain_blocks(&self) -> Vec<(u64, CacheData)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let mut cache = shard.lock();
            while let Some((lba, b)) = cache.pop_lru() {
                out.push((lba, b.data));
            }
        }
        out
    }

    /// Evict past capacity; returns dirty victims needing writeback.
    fn evict(cache: &mut LruMap<u64, CacheBlock>, cap: usize) -> Vec<(u64, CacheData)> {
        let mut out = Vec::new();
        while cache.len() > cap {
            match cache.pop_lru() {
                Some((lba, b)) if b.dirty => out.push((lba, b.data)),
                Some(_) => {}
                None => break,
            }
        }
        out
    }

    /// Turn an evicted dirty victim into the downstream write-back
    /// request: handles flush zero-copy via `WriteBuf`, vectors via the
    /// legacy `Write` (the vector moves — no extra copy).
    fn victim_payload(lba: u64, data: CacheData) -> Payload {
        match data {
            CacheData::Buf(buf) => Payload::Block(BlockOp::WriteBuf { lba, buf }),
            CacheData::Vec(data) => Payload::Block(BlockOp::Write { lba, data }),
        }
    }

    /// Insert a block, evict, and flush dirty victims downstream.
    fn insert_and_flush(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        lba: u64,
        data: CacheData,
        dirty: bool,
    ) -> Result<(), RespPayload> {
        let victims = {
            let mut cache = self.shard(lba).lock();
            cache.insert(lba, CacheBlock { data, dirty });
            Self::evict(&mut cache, self.per_shard_blocks)
        };
        for (vlba, vdata) in victims {
            let mut flush = Request::new(
                req.id,
                req.stack,
                Self::victim_payload(vlba, vdata),
                req.creds,
            );
            flush.vertex = env.vertex;
            flush.core = req.core;
            let r = self.fwd(ctx, env, flush);
            if !r.is_ok() {
                return Err(r);
            }
        }
        Ok(())
    }

    /// The shared read path. `zero_copy` selects the response shape: a
    /// `ReadBuf` hit on a handle-backed block answers with a refcounted
    /// `DataBuf` slice (no memcpy, no copy charge); everything else copies
    /// and is charged + counted.
    fn do_read(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: Request,
        lba: u64,
        len: usize,
        zero_copy: bool,
    ) -> RespPayload {
        ctx.advance(LOOKUP_NS);
        if let Some(resp) = self.try_hit(ctx, lba, len, zero_copy) {
            self.hits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            return resp;
        }
        // Miss: claim the lba so concurrent misses on the same block wait
        // here instead of each fetching downstream, then re-check — the
        // winner's insert turns the losers' misses into hits. (The old
        // code dropped the lock, fetched, and re-locked: the classic
        // double-fetch.)
        let guard = self.inflight.claim(lba);
        if let Some(resp) = self.try_hit(ctx, lba, len, zero_copy) {
            self.hits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            return resp;
        }
        self.misses.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let resp = self.fwd(ctx, env, req.clone());
        let entry = match &resp {
            // Zero-copy downstream: cache the handle by refcount bump.
            RespPayload::DataBuf(h) => Some(CacheData::Buf(h.clone())),
            RespPayload::Data(d) => {
                ctx.advance(copy_cost(d.len()));
                labstor_ipc::note_payload_copy(d.len());
                Some(CacheData::Vec(d.clone())) // copy-ok: legacy miss fill copies the fetched block into the cache; counted above
            }
            _ => None,
        };
        if let Some(data) = entry {
            if let Err(e) = self.insert_and_flush(ctx, env, &req, lba, data, false) {
                return e;
            }
        }
        drop(guard);
        resp
    }

    /// Answer from the cache if the block is resident and long enough.
    fn try_hit(&self, ctx: &mut Ctx, lba: u64, len: usize, zero_copy: bool) -> Option<RespPayload> {
        let mut cache = self.shard(lba).lock();
        let block = cache.get(&lba).filter(|b| b.data.len() >= len)?;
        if zero_copy {
            if let CacheData::Buf(h) = &block.data {
                // The zero-copy hit: a refcount bump, no bytes move.
                let slice = h.slice(0, len)?;
                return Some(RespPayload::DataBuf(slice));
            }
        }
        let out = match &block.data {
            CacheData::Vec(v) => {
                labstor_ipc::note_payload_copy(len);
                v[..len].to_vec() // copy-ok: legacy copying hit; counted above and charged below
            }
            CacheData::Buf(h) => h.slice(0, len)?.to_vec(), // copy-ok: legacy Read of a handle-backed block; to_vec self-counts
        };
        drop(cache);
        ctx.advance(copy_cost(len));
        Some(RespPayload::Data(out))
    }
}

// labmod-default-ok: write-through cache: contents are clean and re-warm from misses after a crash; state_update migrates them across upgrades
impl LabMod for LruCacheMod {
    fn type_name(&self) -> &'static str {
        "lru_cache"
    }

    fn mod_type(&self) -> ModType {
        ModType::Cache
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let before = ctx.busy();
        let resp = match &req.payload {
            Payload::Block(BlockOp::Write { lba, data }) => {
                // One copy into the cache page, one into the DMA-safe
                // buffer handed downstream — "the page cache takes 17% of
                // time due to data copying" (Fig. 4a).
                ctx.advance(LOOKUP_NS + 2 * copy_cost(data.len()));
                labstor_ipc::note_payload_copy(data.len());
                let lba = *lba;
                let cached = CacheData::Vec(data.clone()); // copy-ok: legacy write path copies into the cache; counted above
                let held = data.len();
                if let Err(e) = self.insert_and_flush(ctx, env, &req, lba, cached, self.write_back)
                {
                    return e;
                }
                if self.write_back {
                    RespPayload::Len(held)
                } else {
                    self.fwd(ctx, env, req)
                }
            }
            Payload::Block(BlockOp::WriteBuf { lba, buf }) => {
                // Zero-copy write: the cache keeps a refcount on the pool
                // buffer — no memcpy, so only the lookup is charged.
                ctx.advance(LOOKUP_NS);
                let lba = *lba;
                let cached = CacheData::Buf(buf.clone());
                let held = buf.len();
                if let Err(e) = self.insert_and_flush(ctx, env, &req, lba, cached, self.write_back)
                {
                    return e;
                }
                if self.write_back {
                    RespPayload::Len(held)
                } else {
                    self.fwd(ctx, env, req)
                }
            }
            Payload::Block(BlockOp::Read { lba, len }) => {
                let (lba, len) = (*lba, *len);
                self.do_read(ctx, env, req, lba, len, false)
            }
            Payload::Block(BlockOp::ReadBuf { lba, len }) => {
                let (lba, len) = (*lba, *len);
                self.do_read(ctx, env, req, lba, len, true)
            }
            Payload::Block(BlockOp::Flush) => {
                // Flush all dirty blocks, then pass the barrier down.
                let mut dirty: Vec<(u64, CacheData)> = Vec::new();
                for shard in self.shards.iter() {
                    let mut cache = shard.lock();
                    let lbas: Vec<u64> = cache
                        .iter()
                        .filter(|(_, b)| b.dirty)
                        .map(|(lba, _)| *lba)
                        .collect();
                    for lba in lbas {
                        if let Some(b) = cache.get(&lba) {
                            b.dirty = false;
                            dirty.push((lba, b.data.clone_counted()));
                        }
                    }
                }
                for (vlba, vdata) in dirty {
                    let mut w = req.clone();
                    w.payload = Self::victim_payload(vlba, vdata);
                    let r = self.fwd(ctx, env, w);
                    if !r.is_ok() {
                        return r;
                    }
                }
                self.fwd(ctx, env, req)
            }
            _ => self.fwd(ctx, env, req),
        };
        let downstream = self.downstream_ns.swap(0, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.perf
            .observe((ctx.busy() - before).saturating_sub(downstream));
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        self.perf
            .est_ns(LOOKUP_NS + 2 * copy_cost(req.payload_bytes()))
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        // Hot-swapping cache policies: warm state moves across.
        if let Some(prev) = old.as_any().downcast_ref::<LruCacheMod>() {
            self.perf.absorb(&prev.perf);
            // Drain oldest-first per shard so recency order is preserved
            // on insert; handles migrate by refcount, vectors move.
            for (lba, block) in prev.drain_blocks() {
                self.shard(lba).lock().insert(
                    lba,
                    CacheBlock {
                        data: block,
                        dirty: false,
                    },
                );
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the factory. Params: `{"capacity_bytes": <n>, "write_back":
/// <bool>, "shards": <n>}` (defaults: 64 MiB, write-through, 1 shard).
pub fn install(mm: &ModuleManager) {
    mm.register_factory(
        "lru_cache",
        Arc::new(|params| {
            let cap = params
                .get("capacity_bytes")
                .and_then(|v| v.as_u64())
                .unwrap_or(64 << 20) as usize;
            let wb = params
                .get("write_back")
                .and_then(|v| v.as_bool())
                .unwrap_or(false);
            let shards = params.get("shards").and_then(|v| v.as_u64()).unwrap_or(1) as usize;
            Arc::new(LruCacheMod::with_shards(cap, wb, shards)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;

    /// Terminal "device" that stores blocks in a hashmap.
    struct MemDev {
        blocks: Mutex<std::collections::HashMap<u64, Vec<u8>>>,
        writes: AtomicU64,
        reads: AtomicU64,
        /// Real-time stall per read, to widen race windows in tests.
        read_stall: std::time::Duration,
    }
    impl MemDev {
        fn new() -> Self {
            MemDev {
                blocks: Mutex::new(std::collections::HashMap::new()),
                writes: AtomicU64::new(0),
                reads: AtomicU64::new(0),
                read_stall: std::time::Duration::ZERO,
            }
        }
    }
    impl LabMod for MemDev {
        fn type_name(&self) -> &'static str {
            "memdev"
        }
        fn mod_type(&self) -> ModType {
            ModType::Driver
        }
        fn process(&self, _ctx: &mut Ctx, req: Request, _env: &StackEnv<'_>) -> RespPayload {
            match req.payload {
                Payload::Block(BlockOp::Write { lba, data }) => {
                    self.writes.fetch_add(1, Ordering::Relaxed);
                    let len = data.len();
                    self.blocks.lock().insert(lba, data);
                    RespPayload::Len(len)
                }
                Payload::Block(BlockOp::WriteBuf { lba, buf }) => {
                    self.writes.fetch_add(1, Ordering::Relaxed);
                    let len = buf.len();
                    self.blocks.lock().insert(lba, buf.to_vec());
                    RespPayload::Len(len)
                }
                Payload::Block(BlockOp::Read { lba, len })
                | Payload::Block(BlockOp::ReadBuf { lba, len }) => {
                    self.reads.fetch_add(1, Ordering::Relaxed);
                    if !self.read_stall.is_zero() {
                        std::thread::sleep(self.read_stall);
                    }
                    match self.blocks.lock().get(&lba) {
                        Some(d) => RespPayload::Data(d[..len.min(d.len())].to_vec()),
                        None => RespPayload::Data(vec![0u8; len]),
                    }
                }
                _ => RespPayload::Ok,
            }
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn setup(cache_params: serde_json::Value) -> (ModuleManager, LabStack, Arc<MemDev>) {
        setup_with_dev(cache_params, MemDev::new())
    }

    fn setup_with_dev(
        cache_params: serde_json::Value,
        dev: MemDev,
    ) -> (ModuleManager, LabStack, Arc<MemDev>) {
        let mm = ModuleManager::new();
        install(&mm);
        mm.instantiate("cache", "lru_cache", &cache_params).unwrap();
        let dev = Arc::new(dev);
        mm.insert_instance("dev", dev.clone());
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "cache".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "dev".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        (mm, stack, dev)
    }

    fn exec(mm: &ModuleManager, stack: &LabStack, payload: Payload, ctx: &mut Ctx) -> RespPayload {
        let env = StackEnv {
            stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        let m = mm.get("cache").unwrap();
        m.process(ctx, Request::new(1, 1, payload, Credentials::ROOT), &env)
    }

    #[test]
    fn write_through_reaches_device_and_read_hits() {
        let (mm, stack, dev) = setup(serde_json::json!({}));
        let mut ctx = Ctx::new();
        let data = vec![9u8; 4096];
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 8,
                data: data.clone(),
            }),
            &mut ctx,
        );
        assert_eq!(dev.writes.load(Ordering::Relaxed), 1);
        let r = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Read { lba: 8, len: 4096 }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(d) if d == data));
        assert_eq!(
            dev.reads.load(Ordering::Relaxed),
            0,
            "read must be a cache hit"
        );
        let cache = mm.get("cache").unwrap();
        let lru = cache.as_any().downcast_ref::<LruCacheMod>().unwrap();
        assert_eq!(lru.hit_stats(), (1, 0));
    }

    #[test]
    fn miss_fetches_and_caches() {
        let (mm, stack, dev) = setup(serde_json::json!({}));
        let mut ctx = Ctx::new();
        // Prime the device directly (bypass cache).
        dev.blocks.lock().insert(16, vec![3u8; 4096]);
        let r = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Read { lba: 16, len: 4096 }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(_)));
        assert_eq!(dev.reads.load(Ordering::Relaxed), 1);
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Read { lba: 16, len: 4096 }),
            &mut ctx,
        );
        assert_eq!(dev.reads.load(Ordering::Relaxed), 1, "second read hits");
    }

    #[test]
    fn write_back_defers_until_flush() {
        let (mm, stack, dev) =
            setup(serde_json::json!({"write_back": true, "capacity_bytes": 1 << 20}));
        let mut ctx = Ctx::new();
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![1u8; 4096],
            }),
            &mut ctx,
        );
        assert_eq!(
            dev.writes.load(Ordering::Relaxed),
            0,
            "write-back holds data"
        );
        exec(&mm, &stack, Payload::Block(BlockOp::Flush), &mut ctx);
        assert_eq!(
            dev.writes.load(Ordering::Relaxed),
            1,
            "flush writes it back"
        );
        assert!(dev.blocks.lock().contains_key(&0));
    }

    #[test]
    fn write_back_eviction_writes_victims() {
        // 2-block cache, 3 writes → first block must land on the device.
        let (mm, stack, dev) =
            setup(serde_json::json!({"write_back": true, "capacity_bytes": 8192}));
        let mut ctx = Ctx::new();
        for i in 0..3u64 {
            exec(
                &mm,
                &stack,
                Payload::Block(BlockOp::Write {
                    lba: i * 8,
                    data: vec![i as u8; 4096],
                }),
                &mut ctx,
            );
        }
        assert_eq!(dev.writes.load(Ordering::Relaxed), 1);
        assert_eq!(dev.blocks.lock().get(&0).unwrap()[0], 0);
    }

    #[test]
    fn state_update_moves_warm_blocks() {
        let (mm, stack, _dev) = setup(serde_json::json!({}));
        let mut ctx = Ctx::new();
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::Write {
                lba: 8,
                data: vec![5u8; 4096],
            }),
            &mut ctx,
        );
        let old = mm.get("cache").unwrap();
        let new_cache = LruCacheMod::new(64 << 20, false);
        new_cache.state_update(old.as_ref());
        assert_eq!(new_cache.shards[0].lock().len(), 1, "warm block migrated");
    }

    #[test]
    fn writebuf_hit_answers_with_refcounted_slice() {
        let (mm, stack, dev) = setup(serde_json::json!({}));
        let mut ctx = Ctx::new();
        let pool = labstor_ipc::BufferPool::new(labstor_ipc::PoolConfig {
            classes: vec![(4096, 4)],
        });
        let mut buf = pool.alloc(4096).unwrap();
        assert!(buf.fill(&[7u8; 4096]));
        exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::WriteBuf { lba: 8, buf }),
            &mut ctx,
        );
        assert_eq!(dev.writes.load(Ordering::Relaxed), 1, "write-through");
        let r = exec(
            &mm,
            &stack,
            Payload::Block(BlockOp::ReadBuf { lba: 8, len: 4096 }),
            &mut ctx,
        );
        // A `DataBuf` response is structurally zero-copy: the handle is a
        // refcounted view of the cached block. (Copy-counter deltas are
        // asserted in the dedicated e2e integration test, which owns its
        // process — the global counter races across parallel unit tests.)
        match r {
            RespPayload::DataBuf(h) => assert_eq!(h.as_slice(), &[7u8; 4096]),
            other => panic!("expected DataBuf, got {other:?}"),
        }
        assert_eq!(dev.reads.load(Ordering::Relaxed), 0, "hit");
    }

    #[test]
    fn racing_misses_fetch_downstream_exactly_once() {
        // Regression for the drop-and-relock double-fetch: two threads
        // miss on the same lba; the in-flight guard must hold the loser
        // until the winner inserts, so the device sees ONE read.
        let mut dev = MemDev::new();
        dev.read_stall = std::time::Duration::from_millis(40);
        dev.blocks.lock().insert(16, vec![3u8; 4096]);
        let (mm, stack, dev) = setup_with_dev(serde_json::json!({"shards": 4}), dev);
        std::thread::scope(|s| {
            for delay_ms in [0u64, 10] {
                let (mm, stack) = (&mm, &stack);
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                    let mut ctx = Ctx::new();
                    let r = exec(
                        mm,
                        stack,
                        Payload::Block(BlockOp::Read { lba: 16, len: 4096 }),
                        &mut ctx,
                    );
                    assert!(matches!(r, RespPayload::Data(d) if d == vec![3u8; 4096]));
                });
            }
        });
        assert_eq!(
            dev.reads.load(Ordering::Relaxed),
            1,
            "in-flight guard must collapse racing misses into one fetch"
        );
        let cache = mm.get("cache").unwrap();
        let lru = cache.as_any().downcast_ref::<LruCacheMod>().unwrap();
        assert_eq!(lru.hit_stats(), (1, 1), "loser re-checks and hits");
    }
}
