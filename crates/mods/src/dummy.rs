//! The dummy LabMod: configurable processing cost plus upgrade-visible
//! state. The live-upgrade experiment (Table I) "messages a dummy module
//! 100,000 times"; the orchestration experiments use it to generate
//! latency-sensitive and computational load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use labstor_core::{LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv};
use labstor_sim::Ctx;
use labstor_telemetry::PerfCounters;

/// A module that spends a configurable amount of virtual work per message
/// and counts how many messages it has seen.
pub struct DummyMod {
    /// Module "version", bumped by each upgrade factory call.
    pub version: u64,
    /// Default per-message work when the request does not carry one.
    pub default_work_ns: u64,
    count: AtomicU64,
    perf: PerfCounters,
}

impl DummyMod {
    /// New dummy of a given version.
    pub fn new(version: u64, default_work_ns: u64) -> Self {
        DummyMod {
            version,
            default_work_ns,
            count: AtomicU64::new(0),
            perf: PerfCounters::new(),
        }
    }

    /// Messages processed (survives upgrades via `state_update`).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }
}

// labmod-default-ok: migrates its counters in state_update; no durable state exists, so the repair default is safe
impl LabMod for DummyMod {
    fn type_name(&self) -> &'static str {
        "dummy"
    }

    fn mod_type(&self) -> ModType {
        ModType::Dummy
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let work = match req.payload {
            Payload::Dummy { work_ns } if work_ns > 0 => work_ns,
            _ => self.default_work_ns,
        };
        ctx.advance(work);
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.perf.observe(work);
        // Dummies are usually terminal but forward if stacked.
        if env.stack.vertices[env.vertex].outputs.is_empty() {
            RespPayload::Ok
        } else {
            env.forward(ctx, req)
        }
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        // The request carries its own cost: stay exact, never estimated.
        match req.payload {
            Payload::Dummy { work_ns } if work_ns > 0 => work_ns,
            _ => self.default_work_ns,
        }
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<DummyMod>() {
            self.count.store(prev.count(), Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            self.perf.absorb(&prev.perf);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the dummy factory. Params: `{"work_ns": <u64>}` (default 0).
/// Each factory call bumps the version so upgrades are observable.
pub fn install(mm: &ModuleManager) {
    let version = Arc::new(AtomicU64::new(0));
    mm.register_factory(
        "dummy",
        Arc::new(move |params| {
            let work = params.get("work_ns").and_then(|v| v.as_u64()).unwrap_or(0);
            Arc::new(DummyMod::new(version.fetch_add(1, Ordering::Relaxed) + 1, work)) // relaxed-ok: fresh-id allocation; atomicity alone suffices
                as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;

    fn env_for(mm: &ModuleManager, stack: &LabStack) -> Request {
        let _ = (mm, stack);
        Request::new(1, 1, Payload::Dummy { work_ns: 0 }, Credentials::ROOT)
    }

    #[test]
    fn charges_configured_work() {
        let mm = ModuleManager::new();
        install(&mm);
        let m = mm
            .instantiate("d1", "dummy", &serde_json::json!({"work_ns": 2_500}))
            .unwrap();
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Async,
            vertices: vec![Vertex {
                uuid: "d1".into(),
                outputs: vec![],
            }],
            authorized_uids: vec![],
        };
        let env = StackEnv {
            stack: &stack,
            vertex: 0,
            registry: &mm,
            domain: 0,
        };
        let mut ctx = Ctx::new();
        let req = env_for(&mm, &stack);
        assert!(m.process(&mut ctx, req, &env).is_ok());
        assert_eq!(ctx.now(), 2_500);
        assert_eq!(m.est_total_time(), 2_500);
    }

    #[test]
    fn request_work_overrides_default() {
        let mm = ModuleManager::new();
        install(&mm);
        let m = mm
            .instantiate("d1", "dummy", &serde_json::json!({"work_ns": 10}))
            .unwrap();
        let req = Request::new(1, 1, Payload::Dummy { work_ns: 777 }, Credentials::ROOT);
        assert_eq!(m.est_processing_time(&req), 777);
    }

    #[test]
    fn state_survives_upgrade() {
        let mm = ModuleManager::new();
        install(&mm);
        let old = mm
            .instantiate("d1", "dummy", &serde_json::Value::Null)
            .unwrap();
        let old_dummy = old.as_any().downcast_ref::<DummyMod>().unwrap();
        old_dummy.count.store(123, Ordering::Relaxed);
        let newer = DummyMod::new(99, 0);
        newer.state_update(old.as_ref());
        assert_eq!(newer.count(), 123);
    }
}
