//! Shared plumbing for the block-cache LabMods ([`crate::lru`],
//! [`crate::arc_cache`]): dual-representation cached bytes (legacy `Vec`
//! or zero-copy pool handle), lba shard hashing, and the per-entry
//! in-flight miss guard that replaces the old drop-and-relock pattern.

use std::collections::HashSet;

use parking_lot::{Condvar, Mutex};

use labstor_ipc::{note_payload_copy, BufHandle};

/// Bytes held by a cache entry: whatever representation flowed through.
/// Legacy `Vec` traffic is stored as owned vectors; zero-copy traffic
/// (`WriteBuf`/`ReadBuf`) is stored as pool handles, so a hit hands the
/// bytes back by refcount bump.
pub enum CacheData {
    /// Owned bytes (legacy copying path).
    Vec(Vec<u8>),
    /// Shared-memory pool handle (zero-copy path).
    Buf(BufHandle),
}

impl CacheData {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        match self {
            CacheData::Vec(v) => v.len(),
            CacheData::Buf(b) => b.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read view of the bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            CacheData::Vec(v) => v,
            CacheData::Buf(b) => b.as_slice(),
        }
    }

    /// Clone the representation: a `Vec` deep-copies (counted as a
    /// payload copy), a handle bumps its refcount.
    pub fn clone_counted(&self) -> CacheData {
        match self {
            CacheData::Vec(v) => {
                note_payload_copy(v.len());
                // copy-ok: legacy Vec-held block duplicated for the caller; counted via note_payload_copy
                CacheData::Vec(v.clone())
            }
            CacheData::Buf(b) => CacheData::Buf(b.clone()),
        }
    }

    /// A `len`-byte prefix view without copying when possible: a handle
    /// slices (refcount bump); a `Vec` deep-copies (counted).
    pub fn prefix(&self, len: usize) -> Option<CacheData> {
        match self {
            CacheData::Vec(v) => {
                if v.len() < len {
                    return None;
                }
                note_payload_copy(len);
                // copy-ok: legacy Vec-held block copied out for the caller; counted via note_payload_copy
                Some(CacheData::Vec(v[..len].to_vec()))
            }
            CacheData::Buf(b) => b.slice(0, len).map(CacheData::Buf),
        }
    }

    /// Bytes the prefix hands back cost a memcpy only for the `Vec`
    /// representation; handles are free. Used for cost accounting.
    pub fn prefix_copies(&self) -> bool {
        matches!(self, CacheData::Vec(_))
    }
}

/// The per-entry in-flight miss guard. A miss claims its lba before
/// releasing the cache lock and fetching downstream; a second miss on the
/// same lba waits for the claim to clear and re-checks the cache instead
/// of double-fetching (and double-inserting) the block.
#[derive(Default)]
pub struct InflightSet {
    claimed: Mutex<HashSet<u64>>,
    /// Signaled by [`InflightGuard`]'s drop so losers park instead of
    /// burning a CPU spinning for the winner's (possibly slow, device-
    /// bound) downstream fetch to finish.
    released: Condvar,
}

impl InflightSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim `lba`, parking on a condvar while another miss holds it.
    /// The returned guard releases the claim (and wakes waiters) on drop.
    pub fn claim(&self, lba: u64) -> InflightGuard<'_> {
        let mut claimed = self.claimed.lock();
        while !claimed.insert(lba) {
            self.released.wait(&mut claimed);
        }
        InflightGuard { set: self, lba }
    }
}

/// RAII claim on an lba being miss-fetched; dropping releases it.
pub struct InflightGuard<'a> {
    set: &'a InflightSet,
    lba: u64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.set.claimed.lock().remove(&self.lba);
        // Wake everyone: waiters on other lbas re-check and sleep again;
        // waiters on this lba race to claim it (one wins, rest re-wait).
        self.set.released.notify_all();
    }
}

/// Shard index for an lba (splitmix-style avalanche so sequential lbas
/// spread evenly).
pub fn shard_of(lba: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut x = lba.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((x ^ (x >> 31)) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_guard_releases_on_drop() {
        let set = InflightSet::new();
        {
            let _g = set.claim(7);
            assert!(!set.claimed.lock().contains(&8));
            assert!(set.claimed.lock().contains(&7));
        }
        assert!(!set.claimed.lock().contains(&7));
        let _g2 = set.claim(7); // reclaimable after release
    }

    #[test]
    fn shard_spread_is_even_enough() {
        let mut counts = [0usize; 8];
        for lba in 0..8000u64 {
            counts[shard_of(lba, 8)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "shard starved: {counts:?}");
        }
    }
}
