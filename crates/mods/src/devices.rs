//! The device registry: names → simulated devices.
//!
//! The real LabStor wires Driver LabMods to hardware via the Kernel Ops
//! Manager (`/dev/nvme0n1`, PCI BARs for SPDK, DAX character devices).
//! Here a [`DeviceRegistry`] plays that role: experiments register their
//! simulated devices under names, and Driver LabMod factories look the
//! names up from their `params` (e.g. `{"device": "nvme0"}`).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use labstor_kernel::BlockLayer;
use labstor_sim::{DeviceKind, PmemDevice, SimDevice};

/// Named handles to the machine's storage.
#[derive(Default)]
pub struct DeviceRegistry {
    blocks: RwLock<HashMap<String, Arc<SimDevice>>>,
    layers: RwLock<HashMap<String, Arc<BlockLayer>>>,
    pmems: RwLock<HashMap<String, Arc<PmemDevice>>>,
}

impl DeviceRegistry {
    /// Empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Register a block device under `name`. A kernel block layer is
    /// created for it as well (the Kernel Driver LabMod path needs one).
    pub fn add_block(&self, name: &str, dev: Arc<SimDevice>) {
        self.layers
            .write()
            .insert(name.to_string(), BlockLayer::new(dev.clone()));
        self.blocks.write().insert(name.to_string(), dev);
    }

    /// Register a PMEM device under `name`.
    pub fn add_pmem(&self, name: &str, dev: Arc<PmemDevice>) {
        self.pmems.write().insert(name.to_string(), dev);
    }

    /// Convenience: create and register a preset device.
    pub fn add_preset(&self, name: &str, kind: DeviceKind) -> Arc<SimDevice> {
        let dev = SimDevice::preset(kind);
        self.add_block(name, dev.clone());
        dev
    }

    /// Look up a block device.
    pub fn block(&self, name: &str) -> Option<Arc<SimDevice>> {
        self.blocks.read().get(name).cloned()
    }

    /// Look up the kernel block layer fronting a block device.
    pub fn layer(&self, name: &str) -> Option<Arc<BlockLayer>> {
        self.layers.read().get(name).cloned()
    }

    /// Look up a PMEM device.
    pub fn pmem(&self, name: &str) -> Option<Arc<PmemDevice>> {
        self.pmems.read().get(name).cloned()
    }

    /// Names of all registered block devices.
    pub fn block_names(&self) -> Vec<String> {
        self.blocks.read().keys().cloned().collect()
    }
}

/// Read a device name out of factory params (key `"device"`, default
/// `"default"`).
pub fn device_param(params: &serde_json::Value) -> String {
    params
        .get("device")
        .and_then(|v| v.as_str())
        .unwrap_or("default")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let reg = DeviceRegistry::new();
        let dev = reg.add_preset("nvme0", DeviceKind::Nvme);
        assert!(Arc::ptr_eq(&reg.block("nvme0").unwrap(), &dev));
        assert!(reg.layer("nvme0").is_some());
        assert!(reg.block("ghost").is_none());
        reg.add_pmem("pmem0", PmemDevice::preset());
        assert!(reg.pmem("pmem0").is_some());
        assert_eq!(reg.block_names(), vec!["nvme0".to_string()]);
    }

    #[test]
    fn device_param_parses() {
        let p: serde_json::Value = serde_json::json!({"device": "ssd1"});
        assert_eq!(device_param(&p), "ssd1");
        assert_eq!(device_param(&serde_json::Value::Null), "default");
    }
}
