//! The tunable-consistency LabMod (the paper's "configurable consistency"
//! building block, §III-B).
//!
//! Sits in a block path and imposes a durability policy on writes:
//!
//! * `relaxed` — pass writes through; durability only on explicit flush.
//! * `flush_each` — append a flush barrier after every write
//!   (write-through durability, O_SYNC-style).
//! * `flush_every_n` — amortized group commit: a barrier after every
//!   `n`-th write.
//!
//! Because it is a stack vertex, consistency can be strengthened or
//! relaxed live via `modify_stack` — the paper's Dynamic Semantics
//! Imposition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use labstor_core::{
    BlockOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_sim::Ctx;
use labstor_telemetry::PerfCounters;

/// Durability policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Flush only when asked.
    Relaxed,
    /// Barrier after every write.
    FlushEach,
    /// Barrier after every `n` writes.
    FlushEveryN(u64),
}

/// The consistency LabMod.
pub struct ConsistencyMod {
    policy: Policy,
    writes: AtomicU64,
    flushes: AtomicU64,
    perf: PerfCounters,
}

impl ConsistencyMod {
    /// New filter with a policy.
    pub fn new(policy: Policy) -> Self {
        ConsistencyMod {
            policy,
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            perf: PerfCounters::new(),
        }
    }

    /// (writes seen, barriers issued).
    pub fn stats(&self) -> (u64, u64) {
        // relaxed-ok: stat counter; readers tolerate lag
        (
            self.writes.load(Ordering::Relaxed),
            self.flushes.load(Ordering::Relaxed),
        )
    }
}

// labmod-default-ok: counters migrate in state_update; barrier policy is config-derived, so the repair default is safe
impl LabMod for ConsistencyMod {
    fn type_name(&self) -> &'static str {
        "consistency"
    }

    fn mod_type(&self) -> ModType {
        ModType::Filter
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let before = ctx.busy();
        ctx.advance(50);
        let is_write = matches!(
            req.payload,
            Payload::Block(BlockOp::Write { .. } | BlockOp::WriteBuf { .. })
        );
        // Pre-build the barrier (avoiding a clone of the write payload).
        let template = if is_write {
            let mut flush =
                Request::new(req.id, req.stack, Payload::Block(BlockOp::Flush), req.creds);
            flush.vertex = req.vertex;
            flush.core = req.core;
            flush.qid_hint = req.qid_hint;
            Some(flush)
        } else {
            None
        };
        let resp = env.forward(ctx, req);
        if resp.is_ok() && is_write {
            let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: stat counter; readers tolerate lag
            let flush_now = match self.policy {
                Policy::Relaxed => false,
                Policy::FlushEach => true,
                Policy::FlushEveryN(k) => k > 0 && n.is_multiple_of(k),
            };
            if flush_now {
                if let Some(f) = template {
                    self.flushes.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                    let r = env.forward(ctx, f);
                    if !r.is_ok() {
                        return r;
                    }
                }
            }
        }
        self.perf.observe(ctx.busy() - before);
        resp
    }

    fn est_processing_time(&self, _req: &Request) -> u64 {
        // Stays the bare barrier-check cost (never EWMA-overridden): the
        // observed busy delta includes the downstream write + flush, which
        // would wildly overstate this stage's own work.
        50
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<ConsistencyMod>() {
            self.perf.absorb(&prev.perf);
            self.writes
                .store(prev.writes.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                                                                                // relaxed-ok: stat counter; readers tolerate lag
            self.flushes
                .store(prev.flushes.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the factory. Params: `{"policy": "relaxed"|"flush_each",
/// "flush_every": <n>}`.
pub fn install(mm: &ModuleManager) {
    mm.register_factory(
        "consistency",
        Arc::new(|params| {
            let policy = match params.get("policy").and_then(|v| v.as_str()) {
                Some("flush_each") => Policy::FlushEach,
                Some("flush_every_n") => Policy::FlushEveryN(
                    params
                        .get("flush_every")
                        .and_then(|v| v.as_u64())
                        .unwrap_or(8),
                ),
                _ => Policy::Relaxed,
            };
            Arc::new(ConsistencyMod::new(policy)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;

    struct FlushCounter {
        writes: AtomicU64,
        flushes: AtomicU64,
    }
    impl LabMod for FlushCounter {
        fn type_name(&self) -> &'static str {
            "flush_counter"
        }
        fn mod_type(&self) -> ModType {
            ModType::Driver
        }
        fn process(&self, _ctx: &mut Ctx, req: Request, _env: &StackEnv<'_>) -> RespPayload {
            match req.payload {
                Payload::Block(BlockOp::Write { .. }) => {
                    self.writes.fetch_add(1, Ordering::Relaxed);
                    RespPayload::Ok
                }
                Payload::Block(BlockOp::Flush) => {
                    self.flushes.fetch_add(1, Ordering::Relaxed);
                    RespPayload::Ok
                }
                _ => RespPayload::Ok,
            }
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn run_policy(params: serde_json::Value, writes: u64) -> (u64, u64) {
        let mm = ModuleManager::new();
        install(&mm);
        mm.instantiate("c", "consistency", &params).unwrap();
        let counter = Arc::new(FlushCounter {
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        });
        mm.insert_instance("dev", counter.clone());
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "c".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "dev".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        let env = StackEnv {
            stack: &stack,
            vertex: 0,
            registry: &mm,
            domain: 0,
        };
        let m = mm.get("c").unwrap();
        let mut ctx = Ctx::new();
        for i in 0..writes {
            let req = Request::new(
                i,
                1,
                Payload::Block(BlockOp::Write {
                    lba: i * 8,
                    data: vec![0u8; 512],
                }),
                Credentials::ROOT,
            );
            assert!(m.process(&mut ctx, req, &env).is_ok());
        }
        (
            counter.writes.load(Ordering::Relaxed),
            counter.flushes.load(Ordering::Relaxed),
        )
    }

    #[test]
    fn relaxed_never_flushes() {
        assert_eq!(
            run_policy(serde_json::json!({"policy": "relaxed"}), 10),
            (10, 0)
        );
    }

    #[test]
    fn flush_each_barriers_every_write() {
        assert_eq!(
            run_policy(serde_json::json!({"policy": "flush_each"}), 10),
            (10, 10)
        );
    }

    #[test]
    fn group_commit_amortizes() {
        assert_eq!(
            run_policy(
                serde_json::json!({"policy": "flush_every_n", "flush_every": 4}),
                10
            ),
            (10, 2)
        );
    }
}
