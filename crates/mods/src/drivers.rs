//! Driver LabMods: the storage endpoints of LabStacks (paper §III-A
//! "Driver LabMods", §III-F "Kernel Driver LabMod").
//!
//! * [`KernelDriverMod`] — submits through the Kernel Ops Manager's
//!   `submit_io_to_hctx` (the re-implemented `blk_mq_try_issue_directly`),
//!   bypassing the kernel block layer's allocation/bookkeeping/scheduling,
//!   and reaps with `poll_completions`. One syscall-free path into MQ
//!   hardware queues.
//! * [`SpdkMod`] — userspace NVMe: the device's queue pair is mapped into
//!   the process (BAR mapping), so submission avoids even "the complex
//!   allocation of structures required by the Kernel Driver" — the extra
//!   12% of Fig. 6.
//! * [`DaxMod`] — byte-addressable PMEM via load/store; block conventions
//!   are skipped entirely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use labstor_core::{
    BlockOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_kernel::block::CompletionMode;
use labstor_kernel::BlockLayer;
use labstor_sim::{BlockDevice, Completion, Ctx, IoRequest, PmemDevice, SimDevice};
use labstor_telemetry::PerfCounters;

use crate::devices::{device_param, DeviceRegistry};

/// Cost of packaging a command through the Kernel Driver LabMod's request
/// structures ("the complex allocation of structures required by the
/// Kernel Driver" that SPDK avoids — Fig. 6's 12% gap at 4 KB).
const KDRV_ALLOC_NS: u64 = 1_350;
/// Packaging cost when an upstream scheduler stage already keyed the
/// request and prepared the dispatch descriptor (`qid_hint` set): the
/// driver only fills in the command and rings the doorbell.
const KDRV_PREKEYED_NS: u64 = 250;
/// Cost of writing an SQE + doorbell on a user-mapped SPDK queue pair.
const SPDK_SUBMIT_NS: u64 = 200;

/// Per-command driver software cost besides request packaging (doorbell
/// write, modeled in the block layer as `DRIVER_SUBMIT_NS`).
pub(crate) const DRIVER_SW_NS: u64 = 150;

/// Record the media service window of a completion as a Device span (the
/// labtelem recorder no-ops while disabled).
fn stamp_completion(env: &StackEnv<'_>, req_id: u64, c: &Completion) {
    env.stamp_device(req_id, c.done_at.saturating_sub(c.service_ns), c.done_at);
}

/// Normalize the zero-copy block ops into the legacy shapes the device
/// models consume: `WriteBuf` becomes `Write` (the byte move below models
/// the device DMA-ing from the pinned shared buffer — not a CPU payload
/// copy, so it is not counted), `ReadBuf` becomes `Read` plus a flag
/// telling the caller to land the completion in a pool buffer.
fn normalize_block_payload(payload: Payload) -> (Payload, bool) {
    match payload {
        Payload::Block(BlockOp::WriteBuf { lba, buf }) => {
            let data = buf.as_slice().to_vec(); // copy-ok: modeled device DMA from the shared buffer, not a CPU copy
            (Payload::Block(BlockOp::Write { lba, data }), false)
        }
        Payload::Block(BlockOp::ReadBuf { lba, len }) => {
            (Payload::Block(BlockOp::Read { lba, len }), true)
        }
        p => (p, false),
    }
}

/// Land device-returned read bytes in a pool buffer — the modeled DMA
/// target — and answer zero-copy. Falls back to the legacy owned `Vec`
/// when the pool is dry (upstream stages treat `Data` and `DataBuf`
/// uniformly).
fn dma_response(data: Vec<u8>) -> RespPayload {
    match labstor_ipc::default_pool().alloc(data.len()) {
        Some(mut h) => {
            // DMA into the shared buffer: not a CPU payload copy.
            h.write_with(|b| b.copy_from_slice(&data));
            RespPayload::DataBuf(h)
        }
        None => RespPayload::Data(data),
    }
}

/// Kernel MQ Driver LabMod.
pub struct KernelDriverMod {
    layer: Arc<BlockLayer>,
    perf: PerfCounters,
}

impl KernelDriverMod {
    /// Wrap a kernel block layer (the KO Manager hands this out).
    pub fn new(layer: Arc<BlockLayer>) -> Self {
        KernelDriverMod {
            layer,
            perf: PerfCounters::new(),
        }
    }
}

// labmod-default-ok: device drivers are stateless shims over the (simulated) device; device state outlives the module instance, so there is nothing to migrate or repair
impl LabMod for KernelDriverMod {
    fn type_name(&self) -> &'static str {
        "kernel_driver"
    }

    fn mod_type(&self) -> ModType {
        ModType::Driver
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let alloc_ns = if req.qid_hint.is_some() {
            KDRV_PREKEYED_NS
        } else {
            KDRV_ALLOC_NS
        };
        let req_id = req.id;
        let busy0 = ctx.busy();
        let dev = self.layer.device();
        // Clamp to the device's queue count: schedulers upstream may be
        // configured for wider devices.
        let qid = req.qid_hint.unwrap_or(req.core) % dev.num_queues();
        let (payload, want_buf) = normalize_block_payload(req.payload);

        let resp = match payload {
            Payload::Block(BlockOp::Write { lba, data }) => {
                ctx.advance(alloc_ns);
                let len = data.len();
                let tag = self.layer.alloc_tag();
                match self
                    .layer
                    .submit_io_to_hctx(ctx, qid, IoRequest::write(lba, data, tag))
                {
                    Ok(()) => {
                        let c = self
                            .layer
                            .wait_for_tag(ctx, qid, tag, CompletionMode::DriverPoll);
                        stamp_completion(env, req_id, &c);
                        match c.result {
                            Ok(_) => RespPayload::Len(len),
                            Err(e) => RespPayload::Err(e.to_string()),
                        }
                    }
                    Err(e) => RespPayload::Err(e.to_string()),
                }
            }
            Payload::Block(BlockOp::Read { lba, len }) => {
                ctx.advance(alloc_ns);
                let tag = self.layer.alloc_tag();
                match self
                    .layer
                    .submit_io_to_hctx(ctx, qid, IoRequest::read(lba, len, tag))
                {
                    Ok(()) => {
                        let c = self
                            .layer
                            .wait_for_tag(ctx, qid, tag, CompletionMode::DriverPoll);
                        stamp_completion(env, req_id, &c);
                        match c.result {
                            Ok(data) if want_buf => dma_response(data),
                            Ok(data) => RespPayload::Data(data),
                            Err(e) => RespPayload::Err(e.to_string()),
                        }
                    }
                    Err(e) => RespPayload::Err(e.to_string()),
                }
            }
            Payload::Block(BlockOp::Flush) => {
                let tag = self.layer.alloc_tag();
                match self
                    .layer
                    .submit_io_to_hctx(ctx, qid, IoRequest::flush(tag))
                {
                    Ok(()) => {
                        let c = self
                            .layer
                            .wait_for_tag(ctx, qid, tag, CompletionMode::DriverPoll);
                        stamp_completion(env, req_id, &c);
                        RespPayload::Ok
                    }
                    Err(e) => RespPayload::Err(e.to_string()),
                }
            }
            _ => return RespPayload::Err("kernel_driver handles block ops only".into()),
        };
        // Split accounting: `est_total_time` stays software-exclusive (the
        // media wait is visible in the device's own busy counter), while
        // the estimator learns the device-inclusive cost — the same
        // quantity the analytic model (`alloc + transfer`) predicts.
        self.perf
            .observe_split(alloc_ns + DRIVER_SW_NS, ctx.busy() - busy0);
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        let dev = self.layer.device();
        self.perf.est_ns(
            KDRV_ALLOC_NS
                + dev.model().transfer_ns(
                    matches!(
                        req.payload,
                        Payload::Block(BlockOp::Write { .. } | BlockOp::WriteBuf { .. })
                    ),
                    req.payload_bytes(),
                ),
        )
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<KernelDriverMod>() {
            self.perf.absorb(&prev.perf);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// SPDK Driver LabMod: direct userspace NVMe queue pairs.
pub struct SpdkMod {
    dev: Arc<SimDevice>,
    perf: PerfCounters,
    /// Command identifiers must be unique per device, not per request
    /// stream — concurrent streams on shared queues would otherwise reap
    /// each other's completions.
    next_cid: AtomicU64,
    /// Completions reaped on behalf of other pollers sharing a queue,
    /// with the media service window for Device-span stamping.
    #[allow(clippy::type_complexity)]
    stash: parking_lot::Mutex<std::collections::HashMap<u64, (Result<Vec<u8>, String>, u64, u64)>>,
}

impl SpdkMod {
    /// Map a device's queue pairs into userspace.
    pub fn new(dev: Arc<SimDevice>) -> Self {
        SpdkMod {
            dev,
            perf: PerfCounters::new(),
            next_cid: AtomicU64::new(1),
            stash: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    fn cid(&self) -> u64 {
        self.next_cid.fetch_add(1, Ordering::Relaxed) // relaxed-ok: fresh-id allocation; atomicity alone suffices
    }
}

// labmod-default-ok: device drivers are stateless shims over the (simulated) device; device state outlives the module instance, so there is nothing to migrate or repair
impl LabMod for SpdkMod {
    fn type_name(&self) -> &'static str {
        "spdk"
    }

    fn mod_type(&self) -> ModType {
        ModType::Driver
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let req_id = req.id;
        let busy0 = ctx.busy();
        let qid = req.qid_hint.unwrap_or(req.core) % self.dev.num_queues();
        let (payload, want_buf) = normalize_block_payload(req.payload);

        let resp = match payload {
            Payload::Block(BlockOp::Write { lba, data }) => {
                ctx.advance(SPDK_SUBMIT_NS);
                let len = data.len();
                let cid = self.cid();
                match self
                    .dev
                    .submit_at(qid, IoRequest::write(lba, data, cid), ctx.now())
                {
                    Ok(()) => {
                        let done = self.wait(ctx, env, req_id, qid, cid);
                        match done {
                            Ok(_) => RespPayload::Len(len),
                            Err(e) => RespPayload::Err(e),
                        }
                    }
                    Err(e) => RespPayload::Err(e.to_string()),
                }
            }
            Payload::Block(BlockOp::Read { lba, len }) => {
                ctx.advance(SPDK_SUBMIT_NS);
                let cid = self.cid();
                match self
                    .dev
                    .submit_at(qid, IoRequest::read(lba, len, cid), ctx.now())
                {
                    Ok(()) => match self.wait(ctx, env, req_id, qid, cid) {
                        Ok(data) if want_buf => dma_response(data),
                        Ok(data) => RespPayload::Data(data),
                        Err(e) => RespPayload::Err(e),
                    },
                    Err(e) => RespPayload::Err(e.to_string()),
                }
            }
            Payload::Block(BlockOp::Flush) => {
                let cid = self.cid();
                match self.dev.submit_at(qid, IoRequest::flush(cid), ctx.now()) {
                    Ok(()) => {
                        let _ = self.wait(ctx, env, req_id, qid, cid);
                        RespPayload::Ok
                    }
                    Err(e) => RespPayload::Err(e.to_string()),
                }
            }
            _ => return RespPayload::Err("spdk handles block ops only".into()),
        };
        // Totals stay at the submit cost (software-exclusive — the spin
        // poll is charged as device wait); the estimator learns the
        // device-inclusive cost the `submit + transfer` model predicts.
        self.perf.observe_split(SPDK_SUBMIT_NS, ctx.busy() - busy0);
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        self.perf.est_ns(
            SPDK_SUBMIT_NS
                + self.dev.model().transfer_ns(
                    matches!(
                        req.payload,
                        Payload::Block(BlockOp::Write { .. } | BlockOp::WriteBuf { .. })
                    ),
                    req.payload_bytes(),
                ),
        )
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<SpdkMod>() {
            self.perf.absorb(&prev.perf);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl SpdkMod {
    /// Spin-poll the queue pair for one tag (pure userspace polling).
    /// Foreign completions on a shared queue are stashed for their
    /// waiters, never dropped; each carries its media service window so
    /// the eventual waiter can stamp the Device span.
    fn wait(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req_id: u64,
        qid: usize,
        tag: u64,
    ) -> Result<Vec<u8>, String> {
        loop {
            if let Some((r, t0, t1)) = self.stash.lock().remove(&tag) {
                env.stamp_device(req_id, t0, t1);
                return r;
            }
            if let Some(due) = self.dev.next_due(qid) {
                ctx.poll_until(due);
                let mut found = None;
                let mut stash = self.stash.lock();
                for c in self.dev.poll(qid, ctx.now(), 32) {
                    let window = (c.done_at.saturating_sub(c.service_ns), c.done_at);
                    if c.tag == tag {
                        found = Some((c.result.map_err(|e| e.to_string()), window));
                    } else {
                        stash.insert(
                            c.tag,
                            (c.result.map_err(|e| e.to_string()), window.0, window.1),
                        );
                    }
                }
                drop(stash);
                if let Some((r, (t0, t1))) = found {
                    env.stamp_device(req_id, t0, t1);
                    return r;
                }
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// DAX Driver LabMod: byte-addressable persistent memory.
pub struct DaxMod {
    dev: Arc<PmemDevice>,
    perf: PerfCounters,
}

impl DaxMod {
    /// Map a PMEM device.
    pub fn new(dev: Arc<PmemDevice>) -> Self {
        DaxMod {
            dev,
            perf: PerfCounters::new(),
        }
    }
}

// labmod-default-ok: device drivers are stateless shims over the (simulated) device; device state outlives the module instance, so there is nothing to migrate or repair
impl LabMod for DaxMod {
    fn type_name(&self) -> &'static str {
        "dax"
    }

    fn mod_type(&self) -> ModType {
        ModType::Driver
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let req_id = req.id;
        let busy0 = ctx.busy();
        let t0 = ctx.now();
        let (payload, want_buf) = normalize_block_payload(req.payload);
        let resp = match payload {
            // LBAs keep block-op sector units for stackability; DAX's
            // byte-addressability means transfers need no alignment and
            // lengths are arbitrary.
            Payload::Block(BlockOp::Write { lba, data }) => {
                let offset = lba * labstor_sim::SECTOR_SIZE as u64;
                match self.dev.store(ctx, offset, &data) {
                    Ok(_) => RespPayload::Len(data.len()),
                    Err(e) => RespPayload::Err(e.to_string()),
                }
            }
            Payload::Block(BlockOp::Read { lba, len }) => {
                let offset = lba * labstor_sim::SECTOR_SIZE as u64;
                let mut buf = vec![0u8; len];
                match self.dev.load(ctx, offset, &mut buf) {
                    Ok(_) if want_buf => dma_response(buf),
                    Ok(_) => RespPayload::Data(buf),
                    Err(e) => RespPayload::Err(e.to_string()),
                }
            }
            Payload::Block(BlockOp::Flush) => {
                self.dev.drain(ctx);
                RespPayload::Ok
            }
            _ => return RespPayload::Err("dax handles block ops only".into()),
        };
        // The whole synchronous load/store window is media time.
        env.stamp_device(req_id, t0, ctx.now());
        // DAX has no driver software layer; the access *is* the device,
        // so totals stay at zero while the estimator learns the access
        // cost.
        self.perf.observe_split(0, ctx.busy() - busy0);
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        self.perf.est_ns(self.dev.model().transfer_ns(
            matches!(
                req.payload,
                Payload::Block(BlockOp::Write { .. } | BlockOp::WriteBuf { .. })
            ),
            req.payload_bytes(),
        ))
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<DaxMod>() {
            self.perf.absorb(&prev.perf);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// io_uring-backed Driver LabMod (paper §III-G "Re-implementation
/// Overhead"): "for situations where it is more desirable to rely on the
/// already-tested policies provided by the kernel, LabMods built on top
/// of kernel APIs such as I/O uring can be used to inherit some of the
/// kernel's functionality." Every command goes through the kernel's
/// block layer and scheduler — slower than `submit_io_to_hctx`, but it
/// reuses kernel policy wholesale.
pub struct IoUringDriverMod {
    engine: labstor_kernel::engines::RawEngine,
    perf: PerfCounters,
}

impl IoUringDriverMod {
    /// Wrap a block layer behind an io_uring instance.
    pub fn new(layer: Arc<BlockLayer>) -> Self {
        IoUringDriverMod {
            engine: labstor_kernel::engines::RawEngine::new(
                labstor_kernel::engines::IoEngineKind::IoUring,
                layer,
            ),
            perf: PerfCounters::new(),
        }
    }
}

// labmod-default-ok: device drivers are stateless shims over the (simulated) device; device state outlives the module instance, so there is nothing to migrate or repair
impl LabMod for IoUringDriverMod {
    fn type_name(&self) -> &'static str {
        "iouring_driver"
    }

    fn mod_type(&self) -> ModType {
        ModType::Driver
    }

    fn process(&self, ctx: &mut Ctx, mut req: Request, env: &StackEnv<'_>) -> RespPayload {
        use labstor_kernel::sched::IoClass;
        let req_id = req.id;
        let before = ctx.busy();
        let (payload, want_buf) = normalize_block_payload(req.payload);
        req.payload = payload;
        let class = if req.payload_bytes() <= 16 * 1024 {
            IoClass::Latency
        } else {
            IoClass::Throughput
        };
        let want_len = match &req.payload {
            Payload::Block(BlockOp::Write { data, .. }) => Some(data.len()),
            _ => None,
        };
        let io = match &mut req.payload {
            // Hand the payload Vec to the submission queue by value — the
            // request is answered from `want_len`, so nothing reads it back.
            Payload::Block(BlockOp::Write { lba, data }) => {
                IoRequest::write(*lba, std::mem::take(data), 0)
            }
            Payload::Block(BlockOp::Read { lba, len }) => IoRequest::read(*lba, *len, 0),
            Payload::Block(BlockOp::Flush) => IoRequest::flush(0),
            _ => return RespPayload::Err("iouring_driver handles block ops only".into()),
        };
        let resp = match self.engine.rw_sync(ctx, req.core, class, io) {
            Ok(c) => {
                stamp_completion(env, req_id, &c);
                match (c.result, want_len) {
                    (Ok(_), Some(n)) => RespPayload::Len(n),
                    (Ok(data), None) if !data.is_empty() && want_buf => dma_response(data),
                    (Ok(data), None) if !data.is_empty() => RespPayload::Data(data),
                    (Ok(_), None) => RespPayload::Ok,
                    (Err(e), _) => RespPayload::Err(e.to_string()),
                }
            }
            Err(e) => RespPayload::Err(e.to_string()),
        };
        // The kernel path's totals were always device-inclusive (the
        // whole syscall round trip); keep that and let the estimator
        // track the same quantity.
        self.perf.observe(ctx.busy() - before);
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        self.perf.est_ns(
            2_000
                + self.engine_device_transfer(
                    matches!(
                        req.payload,
                        Payload::Block(BlockOp::Write { .. } | BlockOp::WriteBuf { .. })
                    ),
                    req.payload_bytes(),
                ),
        )
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<IoUringDriverMod>() {
            self.perf.absorb(&prev.perf);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl IoUringDriverMod {
    fn engine_device_transfer(&self, write: bool, bytes: usize) -> u64 {
        self.engine
            .block_layer()
            .device()
            .model()
            .transfer_ns(write, bytes)
    }
}

/// Register the three driver factories. Params: `{"device": "<name>"}`.
pub fn install(mm: &ModuleManager, devices: &Arc<DeviceRegistry>) {
    let reg = devices.clone();
    mm.register_factory(
        "kernel_driver",
        Arc::new(move |params| {
            let name = device_param(params);
            let layer = reg
                .layer(&name)
                .unwrap_or_else(|| panic!("no block device '{name}'"));
            Arc::new(KernelDriverMod::new(layer)) as Arc<dyn LabMod>
        }),
    );
    let reg = devices.clone();
    mm.register_factory(
        "spdk",
        Arc::new(move |params| {
            let name = device_param(params);
            let dev = reg
                .block(&name)
                .unwrap_or_else(|| panic!("no block device '{name}'"));
            Arc::new(SpdkMod::new(dev)) as Arc<dyn LabMod>
        }),
    );
    let reg = devices.clone();
    mm.register_factory(
        "iouring_driver",
        Arc::new(move |params| {
            let name = device_param(params);
            let layer = reg
                .layer(&name)
                .unwrap_or_else(|| panic!("no block device '{name}'"));
            Arc::new(IoUringDriverMod::new(layer)) as Arc<dyn LabMod>
        }),
    );
    let reg = devices.clone();
    mm.register_factory(
        "dax",
        Arc::new(move |params| {
            let name = device_param(params);
            let dev = reg
                .pmem(&name)
                .unwrap_or_else(|| panic!("no pmem device '{name}'"));
            Arc::new(DaxMod::new(dev)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;
    use labstor_sim::DeviceKind;

    fn single_stack(uuid: &str) -> LabStack {
        LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![Vertex {
                uuid: uuid.into(),
                outputs: vec![],
            }],
            authorized_uids: vec![],
        }
    }

    fn run(mm: &ModuleManager, uuid: &str, payload: Payload, ctx: &mut Ctx) -> RespPayload {
        let stack = single_stack(uuid);
        let env = StackEnv {
            stack: &stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        let m = mm.get(uuid).unwrap();
        m.process(ctx, Request::new(1, 1, payload, Credentials::ROOT), &env)
    }

    fn setup() -> (ModuleManager, Arc<DeviceRegistry>) {
        let devices = DeviceRegistry::new();
        devices.add_preset("nvme0", DeviceKind::Nvme);
        devices.add_pmem("pmem0", PmemDevice::preset());
        let mm = ModuleManager::new();
        install(&mm, &devices);
        (mm, devices)
    }

    #[test]
    fn kernel_driver_roundtrip() {
        let (mm, _d) = setup();
        mm.instantiate(
            "kd",
            "kernel_driver",
            &serde_json::json!({"device": "nvme0"}),
        )
        .unwrap();
        let mut ctx = Ctx::new();
        let data = vec![7u8; 4096];
        let w = run(
            &mm,
            "kd",
            Payload::Block(BlockOp::Write {
                lba: 8,
                data: data.clone(),
            }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(4096)));
        let r = run(
            &mm,
            "kd",
            Payload::Block(BlockOp::Read { lba: 8, len: 4096 }),
            &mut ctx,
        );
        match r {
            RespPayload::Data(d) => assert_eq!(d, data),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spdk_roundtrip_and_cheaper_than_kernel_driver() {
        // Separate devices: both paths must start from idle channels.
        let (mm, d) = setup();
        d.add_preset("nvme1", DeviceKind::Nvme);
        mm.instantiate(
            "kd",
            "kernel_driver",
            &serde_json::json!({"device": "nvme0"}),
        )
        .unwrap();
        mm.instantiate("sp", "spdk", &serde_json::json!({"device": "nvme1"}))
            .unwrap();
        let mut kd_ctx = Ctx::new();
        run(
            &mm,
            "kd",
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![1u8; 4096],
            }),
            &mut kd_ctx,
        );
        let mut sp_ctx = Ctx::new();
        run(
            &mm,
            "sp",
            Payload::Block(BlockOp::Write {
                lba: 64,
                data: vec![1u8; 4096],
            }),
            &mut sp_ctx,
        );
        assert!(
            sp_ctx.now() < kd_ctx.now(),
            "spdk {} must beat kernel driver {}",
            sp_ctx.now(),
            kd_ctx.now()
        );
        let r = run(
            &mm,
            "sp",
            Payload::Block(BlockOp::Read { lba: 64, len: 4096 }),
            &mut sp_ctx,
        );
        assert!(matches!(r, RespPayload::Data(_)));
    }

    #[test]
    fn dax_roundtrip_with_unaligned_length() {
        let (mm, _d) = setup();
        mm.instantiate("dx", "dax", &serde_json::json!({"device": "pmem0"}))
            .unwrap();
        let mut ctx = Ctx::new();
        // Arbitrary length: DAX does not care about sector multiples.
        let w = run(
            &mm,
            "dx",
            Payload::Block(BlockOp::Write {
                lba: 1234,
                data: b"dax bytes".to_vec(),
            }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(9)));
        let r = run(
            &mm,
            "dx",
            Payload::Block(BlockOp::Read { lba: 1234, len: 9 }),
            &mut ctx,
        );
        match r {
            RespPayload::Data(d) => assert_eq!(&d, b"dax bytes"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn kernel_driver_zero_copy_roundtrip() {
        let (mm, _d) = setup();
        mm.instantiate(
            "kd",
            "kernel_driver",
            &serde_json::json!({"device": "nvme0"}),
        )
        .unwrap();
        let mut ctx = Ctx::new();
        let mut buf = labstor_ipc::default_pool().alloc(4096).unwrap();
        assert!(buf.write_with(|b| b.fill(0xab)));
        let w = run(
            &mm,
            "kd",
            Payload::Block(BlockOp::WriteBuf { lba: 8, buf }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(4096)));
        let r = run(
            &mm,
            "kd",
            Payload::Block(BlockOp::ReadBuf { lba: 8, len: 4096 }),
            &mut ctx,
        );
        match r {
            RespPayload::DataBuf(h) => {
                assert_eq!(h.len(), 4096);
                assert!(h.as_slice().iter().all(|&b| b == 0xab));
            }
            other => panic!("expected DataBuf, got {other:?}"),
        }
    }

    #[test]
    fn drivers_reject_non_block_payloads() {
        let (mm, _d) = setup();
        mm.instantiate(
            "kd",
            "kernel_driver",
            &serde_json::json!({"device": "nvme0"}),
        )
        .unwrap();
        let mut ctx = Ctx::new();
        let resp = run(&mm, "kd", Payload::Dummy { work_ns: 1 }, &mut ctx);
        assert!(!resp.is_ok());
    }

    #[test]
    fn qid_hint_overrides_core_mapping() {
        let (mm, d) = setup();
        mm.instantiate(
            "kd",
            "kernel_driver",
            &serde_json::json!({"device": "nvme0"}),
        )
        .unwrap();
        let dev = d.block("nvme0").unwrap();
        let stack = single_stack("kd");
        let env = StackEnv {
            stack: &stack,
            vertex: 0,
            registry: &mm,
            domain: 0,
        };
        let m = mm.get("kd").unwrap();
        let mut ctx = Ctx::new();
        let mut req = Request::new(
            1,
            1,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![0u8; 512],
            }),
            Credentials::ROOT,
        );
        req.qid_hint = Some(5);
        let before = dev.stats().snapshot().writes;
        m.process(&mut ctx, req, &env);
        assert_eq!(dev.stats().snapshot().writes, before + 1);
    }

    #[test]
    fn iouring_driver_inherits_kernel_path() {
        let (mm, d) = setup();
        d.add_preset("nvme2", DeviceKind::Nvme);
        mm.instantiate(
            "iu",
            "iouring_driver",
            &serde_json::json!({"device": "nvme2"}),
        )
        .unwrap();
        let mut ctx = Ctx::new();
        let data = vec![3u8; 4096];
        let w = run(
            &mm,
            "iu",
            Payload::Block(BlockOp::Write {
                lba: 8,
                data: data.clone(),
            }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(4096)));
        let r = run(
            &mm,
            "iu",
            Payload::Block(BlockOp::Read { lba: 8, len: 4096 }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(got) if got == data));
        // Inheriting the kernel block layer costs more than the direct
        // hctx path of the Kernel Driver LabMod.
        mm.instantiate(
            "kd2",
            "kernel_driver",
            &serde_json::json!({"device": "nvme0"}),
        )
        .unwrap();
        let mut kd_ctx = Ctx::new();
        run(
            &mm,
            "kd2",
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![1u8; 4096],
            }),
            &mut kd_ctx,
        );
        let mut iu_ctx = Ctx::new();
        run(
            &mm,
            "iu",
            Payload::Block(BlockOp::Write {
                lba: 64,
                data: vec![1u8; 4096],
            }),
            &mut iu_ctx,
        );
        assert!(
            iu_ctx.now() > kd_ctx.now(),
            "io_uring path {} vs hctx {}",
            iu_ctx.now(),
            kd_ctx.now()
        );
    }

    #[test]
    fn est_total_time_accumulates() {
        let (mm, _d) = setup();
        let m = mm
            .instantiate("sp", "spdk", &serde_json::json!({"device": "nvme0"}))
            .unwrap();
        let mut ctx = Ctx::new();
        run(
            &mm,
            "sp",
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: vec![0u8; 512],
            }),
            &mut ctx,
        );
        assert!(m.est_total_time() > 0);
    }
}
