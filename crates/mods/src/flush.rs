//! Double-buffered journal flush: a foreground buffer swap plus a
//! background flush daemon.
//!
//! LabFS and LabKVS both append metadata records to per-worker in-memory
//! log buffers and persist them as journal transactions (see
//! [`crate::journal`]). Before this module the persist step wrote the
//! device synchronously on the caller's clock, so an fsync stalled its
//! worker for the full media time of every buffered transaction. The
//! daemon splits that into two halves:
//!
//! * **Kick (foreground)** — the caller, holding its log's mutex, swaps
//!   the buffer out, reserves the transaction's journal blocks and
//!   sequence number, and hands the payload to the daemon. Appends can
//!   keep filling the fresh buffer while the old one flushes.
//! * **Flush (background)** — a single daemon thread encodes and writes
//!   each transaction on its own virtual-time line: header+payload
//!   first, the commit record only after that write was accepted, so the
//!   write-ahead ordering a crash depends on is preserved per
//!   transaction. Jobs run FIFO, which keeps each log's sequence chain
//!   in submission order.
//!
//! # Virtual-time accounting
//!
//! The daemon's clock for a job starts at
//! `max(durable_vt, submit_vt)` — a flush can neither begin before the
//! foreground kicked it (`submit_vt`, causality) nor before the previous
//! flush finished (`durable_vt`, the device work is serialized through
//! one daemon). [`FlushDaemon::sync`] then charges the *waiter* with
//! `idle_until(durable_vt)`: the caller's envelope pays exactly the
//! wall-clock it would have waited for durability, but as idle time, not
//! busy time — the device work itself is no longer billed to the
//! envelope's busy counter.
//!
//! # Errors
//!
//! The foreground half still fails fast (region-full is detected before
//! any cursor moves). Device errors happen on the daemon thread after the
//! cursors already advanced, so they are *sticky*: the first one is
//! latched and every subsequent [`FlushDaemon::sync`] reports it until
//! crash recovery calls [`FlushDaemon::reset`]. That latch is what makes
//! background kicks safe — a transaction that silently died in the
//! background leaves a hole in the journal chain, and the latch
//! guarantees no later durability point can report `Ok` past that hole.

use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use labstor_sim::{BlockDevice, Ctx, SimDevice, SECTOR_SIZE};

use crate::journal;

/// Buffer size at which [`LabFs`](crate::labfs::LabFs) / LabKVS kick a
/// background flush from the append path, so a durability point usually
/// finds most of the work already on (or past) the wire.
pub(crate) const FLUSH_KICK_BYTES: usize = 32 * 1024;

/// One reserved-but-unwritten journal transaction.
struct FlushJob {
    seq: u64,
    payload: Vec<u8>,
    start_block: u64,
    /// Caller's virtual time at the kick; the flush cannot start earlier.
    submit_vt: u64,
}

struct Shared {
    device: Arc<SimDevice>,
    block_size: usize,
    state: Mutex<State>,
    cv: Condvar,
}

#[derive(Default)]
struct State {
    queue: VecDeque<FlushJob>,
    /// A job has been popped but its device writes are still running.
    in_flight: bool,
    /// Virtual time at which everything flushed so far is durable.
    durable_vt: u64,
    /// First device error, latched until [`FlushDaemon::reset`].
    first_err: Option<String>,
    stop: bool,
}

/// Background flush daemon, one per module instance. See module docs.
pub struct FlushDaemon {
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl FlushDaemon {
    /// Spawn the daemon for `device`, writing `block_size`-aligned
    /// journal transactions.
    pub fn new(device: Arc<SimDevice>, block_size: usize) -> Self {
        let shared = Arc::new(Shared {
            device,
            block_size,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        });
        let worker = shared.clone();
        let handle = std::thread::Builder::new()
            .name("labstor-flush".into())
            .spawn(move || Self::run(&worker))
            .expect("spawn flush daemon");
        FlushDaemon {
            shared,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Foreground half: enqueue one reserved transaction. The caller has
    /// already swapped `payload` out of its log buffer and advanced the
    /// log's block/sequence cursors — the daemon only does device work.
    pub fn submit(&self, seq: u64, payload: Vec<u8>, start_block: u64, submit_vt: u64) {
        let mut st = self.shared.state.lock();
        st.queue.push_back(FlushJob {
            seq,
            payload,
            start_block,
            submit_vt,
        });
        self.shared.cv.notify_all();
    }

    /// Durability point: wait until every submitted transaction is on the
    /// device, charge the waiter's clock up to the durable instant, and
    /// surface any latched flush error.
    pub fn sync(&self, ctx: &mut Ctx) -> Result<(), String> {
        let mut st = self.shared.state.lock();
        while st.in_flight || !st.queue.is_empty() {
            self.shared.cv.wait(&mut st);
        }
        let durable = st.durable_vt;
        let err = st.first_err.clone();
        drop(st);
        ctx.idle_until(durable);
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Wait until the daemon is idle without touching anyone's clock
    /// (upgrade/maintenance paths that need quiescence, not durability
    /// accounting).
    pub fn drain(&self) {
        let mut st = self.shared.state.lock();
        while st.in_flight || !st.queue.is_empty() {
            self.shared.cv.wait(&mut st);
        }
    }

    /// Crash-recovery reset: drop queued work (the crash beat it to the
    /// device — replay trusts media, not these buffers), wait out any
    /// in-flight write, clear the error latch, and rewind the durability
    /// clock for the post-recovery timeline.
    pub fn reset(&self) {
        let mut st = self.shared.state.lock();
        st.queue.clear();
        while st.in_flight {
            self.shared.cv.wait(&mut st);
        }
        st.queue.clear();
        st.first_err = None;
        st.durable_vt = 0;
    }

    /// Carry durability-clock and error-latch continuity from the
    /// instance being replaced during an upgrade.
    pub fn absorb(&self, prev: &FlushDaemon) {
        prev.drain();
        let (vt, err) = {
            let st = prev.shared.state.lock();
            (st.durable_vt, st.first_err.clone())
        };
        let mut st = self.shared.state.lock();
        st.durable_vt = st.durable_vt.max(vt);
        if st.first_err.is_none() {
            st.first_err = err;
        }
    }

    fn run(shared: &Shared) {
        let block_sectors = (shared.block_size / SECTOR_SIZE) as u64;
        loop {
            let (job, durable_vt) = {
                let mut st = shared.state.lock();
                loop {
                    if st.stop {
                        return;
                    }
                    if let Some(job) = st.queue.pop_front() {
                        st.in_flight = true;
                        break (job, st.durable_vt);
                    }
                    shared.cv.wait(&mut st);
                }
            };
            // Device work runs on the daemon's own timeline, outside the
            // state lock so kicks never wait on media.
            let mut ctx = Ctx::at(durable_vt.max(job.submit_vt));
            let (body, commit) = journal::encode_txn(job.seq, &job.payload, shared.block_size);
            let res = shared
                .device
                .write(&mut ctx, job.start_block * block_sectors, &body)
                .map_err(|e| e.to_string())
                .and_then(|_| {
                    // Write-ahead ordering: the commit record goes out
                    // only after the body write was accepted.
                    let commit_block = job.start_block + (body.len() / shared.block_size) as u64;
                    shared
                        .device
                        .write(&mut ctx, commit_block * block_sectors, &commit)
                        .map_err(|e| e.to_string())
                });
            let mut st = shared.state.lock();
            st.durable_vt = st.durable_vt.max(ctx.now());
            if let Err(e) = res {
                if st.first_err.is_none() {
                    st.first_err = Some(e);
                }
            }
            st.in_flight = false;
            shared.cv.notify_all();
        }
    }
}

impl Drop for FlushDaemon {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.stop = true;
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::replay_scan;
    use labstor_sim::DeviceKind;

    const BLK: usize = 4096;
    const SECTORS: u64 = (BLK / SECTOR_SIZE) as u64;

    fn read_blocks(dev: &Arc<SimDevice>) -> impl Fn(u64, u64) -> Option<Vec<u8>> + '_ {
        move |block, n| {
            let mut ctx = Ctx::new();
            let mut buf = vec![0u8; n as usize * BLK];
            dev.read(&mut ctx, block * SECTORS, &mut buf)
                .ok()
                .map(|_| buf)
        }
    }

    #[test]
    fn flushes_are_replayable_and_sync_reports_durable_time() {
        let dev = SimDevice::preset(DeviceKind::Nvme);
        let daemon = FlushDaemon::new(dev.clone(), BLK);
        let mut next_block = 0u64;
        for seq in 1..=3u64 {
            let payload = vec![seq as u8; 100];
            daemon.submit(seq, payload, next_block, 0);
            next_block += journal::txn_blocks(100, BLK);
        }
        let mut ctx = Ctx::new();
        daemon.sync(&mut ctx).unwrap();
        // The waiter's clock moved to the durable instant, as idle time.
        assert!(ctx.now() > 0);
        assert_eq!(ctx.busy(), 0);
        let outcome = replay_scan(64, BLK, read_blocks(&dev));
        assert_eq!(outcome.txns.len(), 3);
        assert_eq!(outcome.txns[2].0, 3);
        assert!(!outcome.torn_tail);
    }

    #[test]
    fn device_error_is_sticky_until_reset() {
        let dev = SimDevice::preset(DeviceKind::Nvme);
        let daemon = FlushDaemon::new(dev.clone(), BLK);
        // Out-of-range start block: the body write fails on the device.
        let far = dev.model().capacity_sectors() / SECTORS + 10;
        daemon.submit(1, vec![1u8; 10], far, 0);
        let mut ctx = Ctx::new();
        assert!(daemon.sync(&mut ctx).is_err());
        // Still latched on a later, healthy flush.
        daemon.submit(2, vec![2u8; 10], 0, 0);
        assert!(daemon.sync(&mut ctx).is_err());
        daemon.reset();
        daemon.submit(3, vec![3u8; 10], 0, 0);
        assert!(daemon.sync(&mut ctx).is_ok());
    }

    #[test]
    fn sync_with_nothing_queued_is_cheap_and_ok() {
        let dev = SimDevice::preset(DeviceKind::Nvme);
        let daemon = FlushDaemon::new(dev, BLK);
        let mut ctx = Ctx::new();
        assert!(daemon.sync(&mut ctx).is_ok());
        assert_eq!(ctx.now(), 0);
    }
}
