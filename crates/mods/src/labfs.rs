//! LabFS: the log-structured, crash-consistent POSIX filesystem LabMod
//! (paper §III-E).
//!
//! Architecture, straight from the paper:
//!
//! * **Scalable per-worker block allocator** — "evenly divides device
//!   blocks among the pool of workers. Workers can steal from one another
//!   if more space is needed." ([`BlockAllocator`])
//! * **Per-worker metadata log** — "LabFS uses a per-worker log for
//!   tracking metadata operations. As opposed to storing inodes and
//!   bitmaps on-disk as traditional FSes do, LabFS only stores the log
//!   and reconstructs inodes in-memory by traversing the log."
//!   ([`MetaLog`], [`LogRecord`])
//! * **Flat inode hashmap** — "LabFS stores all files in a single hashmap,
//!   which supports insert, rename, and delete operations with minimal
//!   contention" — here sharded for the same minimal-contention goal.
//! * **Provenance tracking** — each inode carries an operation counter and
//!   last-writer identity.
//!
//! Namespace/metadata operations touch only LabFS state and its log; data
//! operations emit `BlockOp`s down the LabStack DAG (cache → scheduler →
//! driver). The log itself is written to a reserved device region via a
//! direct handle — exactly the paper's decentralized-metadata option where
//! latency-critical log state bypasses the stack.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use labstor_core::{
    BlockOp, FileStat, FsOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload,
    StackEnv,
};
use labstor_sim::{BlockDevice, Ctx, SimDevice};
use labstor_telemetry::PerfCounters;

use crate::devices::{device_param, DeviceRegistry};
use crate::flush::{FlushDaemon, FLUSH_KICK_BYTES};
use crate::journal::{self, RepairReport};

/// Filesystem block size.
pub const FS_BLOCK: usize = 4096;
const BLOCK_SECTORS: u64 = (FS_BLOCK / labstor_sim::SECTOR_SIZE) as u64;
/// Blocks reserved per worker log region.
const LOG_BLOCKS_PER_WORKER: u64 = 2048;

/// CPU cost of one hashmap-based metadata lookup.
const META_CPU_NS: u64 = 300;
/// CPU cost of a file creation: inode init, log record construction,
/// provenance setup. Calibrated against Fig. 7's ablations (removing the
/// 450 ns permissions stage buys ~7%, removing the ~1.3 µs IPC path ~20%).
const CREATE_CPU_NS: u64 = 4_200;
/// CPU cost of appending one log record to the in-memory log buffer.
const LOG_APPEND_NS: u64 = 80;
/// CPU cost of one block allocation (bump pointer).
const ALLOC_NS: u64 = 40;

// ---------------------------------------------------------------------
// Log records
// ---------------------------------------------------------------------

/// A metadata log record. The log is the *only* persistent metadata:
/// replaying it reconstructs every inode (crash consistency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// File or directory creation.
    Create {
        /// Full path key.
        path: String,
        /// Assigned inode.
        ino: u64,
        /// Permission bits.
        mode: u16,
        /// Owner uid.
        uid: u32,
        /// Owner gid.
        gid: u32,
        /// Directory flag.
        is_dir: bool,
    },
    /// Removal.
    Unlink {
        /// Full path key.
        path: String,
    },
    /// File size change (extend or truncate).
    SetSize {
        /// Inode.
        ino: u64,
        /// New size in bytes.
        size: u64,
    },
    /// Data block mapping.
    MapBlock {
        /// Inode.
        ino: u64,
        /// File page index.
        page: u64,
        /// Device block number.
        block: u64,
    },
    /// Rename (the flat hashmap's key move).
    Rename {
        /// Existing path key.
        from: String,
        /// New path key.
        to: String,
    },
}

impl LogRecord {
    /// Serialize into `out` (length-prefixed strings, little endian).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::Create {
                path,
                ino,
                mode,
                uid,
                gid,
                is_dir,
            } => {
                out.push(1);
                out.extend_from_slice(&(path.len() as u32).to_le_bytes());
                out.extend_from_slice(path.as_bytes());
                out.extend_from_slice(&ino.to_le_bytes());
                out.extend_from_slice(&mode.to_le_bytes());
                out.extend_from_slice(&uid.to_le_bytes());
                out.extend_from_slice(&gid.to_le_bytes());
                out.push(u8::from(*is_dir));
            }
            LogRecord::Unlink { path } => {
                out.push(2);
                out.extend_from_slice(&(path.len() as u32).to_le_bytes());
                out.extend_from_slice(path.as_bytes());
            }
            LogRecord::SetSize { ino, size } => {
                out.push(3);
                out.extend_from_slice(&ino.to_le_bytes());
                out.extend_from_slice(&size.to_le_bytes());
            }
            LogRecord::MapBlock { ino, page, block } => {
                out.push(4);
                out.extend_from_slice(&ino.to_le_bytes());
                out.extend_from_slice(&page.to_le_bytes());
                out.extend_from_slice(&block.to_le_bytes());
            }
            LogRecord::Rename { from, to } => {
                out.push(5);
                out.extend_from_slice(&(from.len() as u32).to_le_bytes());
                out.extend_from_slice(from.as_bytes());
                out.extend_from_slice(&(to.len() as u32).to_le_bytes());
                out.extend_from_slice(to.as_bytes());
            }
        }
    }

    /// Decode one record from `buf[*pos..]`, advancing `pos`. Returns
    /// `None` at a zero tag (end-of-log padding) or on truncation.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<LogRecord> {
        fn take<'b>(buf: &'b [u8], pos: &mut usize, n: usize) -> Option<&'b [u8]> {
            let s = &buf.get(*pos..*pos + n)?;
            *pos += n;
            Some(s)
        }
        let tag = *buf.get(*pos)?;
        *pos += 1;
        match tag {
            1 => {
                let len = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
                // copy-ok: log-record decode of a path string — metadata, not payload bytes
                let path = String::from_utf8(take(buf, pos, len)?.to_vec()).ok()?;
                let ino = u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?);
                let mode = u16::from_le_bytes(take(buf, pos, 2)?.try_into().ok()?);
                let uid = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?);
                let gid = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?);
                let is_dir = *take(buf, pos, 1)?.first()? != 0;
                Some(LogRecord::Create {
                    path,
                    ino,
                    mode,
                    uid,
                    gid,
                    is_dir,
                })
            }
            2 => {
                let len = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
                // copy-ok: log-record decode of a path string — metadata, not payload bytes
                let path = String::from_utf8(take(buf, pos, len)?.to_vec()).ok()?;
                Some(LogRecord::Unlink { path })
            }
            3 => {
                let ino = u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?);
                let size = u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?);
                Some(LogRecord::SetSize { ino, size })
            }
            4 => {
                let ino = u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?);
                let page = u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?);
                let block = u64::from_le_bytes(take(buf, pos, 8)?.try_into().ok()?);
                Some(LogRecord::MapBlock { ino, page, block })
            }
            5 => {
                let flen = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
                // copy-ok: log-record decode of a path string — metadata, not payload bytes
                let from = String::from_utf8(take(buf, pos, flen)?.to_vec()).ok()?;
                let tlen = u32::from_le_bytes(take(buf, pos, 4)?.try_into().ok()?) as usize;
                // copy-ok: log-record decode of a path string — metadata, not payload bytes
                let to = String::from_utf8(take(buf, pos, tlen)?.to_vec()).ok()?;
                Some(LogRecord::Rename { from, to })
            }
            _ => None,
        }
    }
}

/// One worker's metadata log: an in-memory buffer of encoded records plus
/// a cursor into its reserved device region. Each flush becomes one
/// journal transaction (see [`crate::journal`]): a header+payload write
/// followed by a separate commit-record write.
struct MetaLog {
    /// Encoded-but-unflushed records.
    buffer: Vec<u8>,
    /// First block of this log's device region.
    region_start: u64,
    /// Next block to write within the region.
    next_block: u64,
    /// Region size in blocks.
    region_blocks: u64,
    /// Sequence number of the next transaction (starts at 1).
    next_seq: u64,
}

impl MetaLog {
    fn append(&mut self, rec: &LogRecord) {
        rec.encode(&mut self.buffer);
    }
}

// ---------------------------------------------------------------------
// Block allocator
// ---------------------------------------------------------------------

struct AllocShard {
    next: u64,
    end: u64,
}

/// The per-worker block allocator with stealing.
pub struct BlockAllocator {
    shards: Vec<Mutex<AllocShard>>,
    /// Blocks a needy shard takes from the richest one.
    steal_batch: u64,
}

impl BlockAllocator {
    /// Divide `[start, end)` blocks evenly across `workers` shards.
    pub fn new(start: u64, end: u64, workers: usize, steal_batch: u64) -> Self {
        let workers = workers.max(1);
        let per = (end - start) / workers as u64;
        BlockAllocator {
            shards: (0..workers as u64)
                .map(|w| {
                    Mutex::new(AllocShard {
                        next: start + w * per,
                        end: if w == workers as u64 - 1 {
                            end
                        } else {
                            start + (w + 1) * per
                        },
                    })
                })
                .collect(),
            steal_batch: steal_batch.max(1),
        }
    }

    /// Allocate one block from `worker`'s shard, stealing when empty.
    pub fn alloc(&self, worker: usize) -> Option<u64> {
        let w = worker % self.shards.len();
        {
            let mut shard = self.shards[w].lock();
            if shard.next < shard.end {
                let b = shard.next;
                shard.next += 1;
                return Some(b);
            }
        }
        // Steal: take a batch from the richest other shard.
        let victim = (0..self.shards.len())
            .filter(|&v| v != w)
            .max_by_key(|&v| {
                let s = self.shards[v].lock();
                s.end - s.next
            })?;
        let (steal_start, steal_end) = {
            let mut s = self.shards[victim].lock();
            let available = s.end - s.next;
            if available == 0 {
                return None;
            }
            let take = self.steal_batch.min(available);
            let start = s.end - take;
            s.end = start;
            (start, start + take)
        };
        let mut shard = self.shards[w].lock();
        shard.next = steal_start;
        shard.end = steal_end;
        let b = shard.next;
        shard.next += 1;
        Some(b)
    }

    /// Total free blocks.
    pub fn free_blocks(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.end - s.next
            })
            .sum()
    }

    /// Decommission worker `w`: its remaining blocks are reassigned to
    /// running workers ("if the number of workers decreases, free blocks
    /// of the decommissioned workers are assigned to running workers",
    /// §III-E). A shard holds one contiguous range, so the range moves
    /// wholesale when a peer can absorb it (empty or adjacent); otherwise
    /// it stays in place where the existing steal path hands it out —
    /// either way every block remains allocatable exactly once.
    pub fn decommission(&self, w: usize) {
        let w = w % self.shards.len();
        let needy = (0..self.shards.len()).filter(|&v| v != w).min_by_key(|&v| {
            let s = self.shards[v].lock();
            s.end - s.next
        });
        let Some(v) = needy else { return };
        // Lock in index order to avoid deadlock with concurrent callers.
        let (mut a, mut b) = if w < v {
            let a = self.shards[w].lock();
            let b = self.shards[v].lock();
            (a, b)
        } else {
            let b = self.shards[v].lock();
            let a = self.shards[w].lock();
            (a, b)
        };
        if a.next >= a.end {
            return; // nothing to donate
        }
        if b.next >= b.end {
            // Peer empty: adopt the range wholesale.
            b.next = a.next;
            b.end = a.end;
            a.next = a.end;
        } else if b.end == a.next {
            // Adjacent: extend the peer.
            b.end = a.end;
            a.next = a.end;
        }
        // Non-adjacent, non-empty peer: leave the donor range in place —
        // the steal path redistributes it on demand.
    }
}

// ---------------------------------------------------------------------
// LabFS
// ---------------------------------------------------------------------

struct FsNode {
    ino: u64,
    size: u64,
    uid: u32,
    gid: u32,
    mode: u16,
    is_dir: bool,
    /// page index → device block.
    blocks: HashMap<u64, u64>,
    /// Provenance: operations applied to this inode.
    ops: u64,
    /// Provenance: uid of the last writer.
    last_writer: u32,
}

/// The LabFS LabMod.
pub struct LabFs {
    /// Sharded path → ino ("a single hashmap" with minimal contention).
    names: Vec<RwLock<HashMap<String, u64>>>,
    /// Sharded ino → node.
    nodes: Vec<RwLock<HashMap<u64, FsNode>>>,
    allocator: BlockAllocator,
    logs: Vec<Mutex<MetaLog>>,
    /// Direct handle for log persistence and replay.
    log_device: Arc<SimDevice>,
    /// Background half of the double-buffered log flush (see
    /// [`crate::flush`]).
    flush: FlushDaemon,
    next_ino: AtomicU64,
    perf: PerfCounters,
    /// Busy time spent in downstream stages (subtracted so
    /// `est_total_time` reports LabFS-exclusive work).
    downstream_ns: AtomicU64,
    /// What the most recent `state_repair` found (see [`RepairReport`]).
    last_repair: Mutex<Option<RepairReport>>,
}

impl LabFs {
    /// Build LabFS over `device` with `workers` allocator/log shards.
    pub fn new(device: Arc<SimDevice>, workers: usize) -> Self {
        let workers = workers.max(1);
        let total_blocks = device.model().capacity_sectors() / BLOCK_SECTORS;
        let log_blocks = LOG_BLOCKS_PER_WORKER * workers as u64;
        let shards = workers.next_power_of_two().max(16);
        LabFs {
            names: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            nodes: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            allocator: BlockAllocator::new(log_blocks, total_blocks, workers, 4096),
            logs: (0..workers as u64)
                .map(|w| {
                    Mutex::new(MetaLog {
                        buffer: Vec::new(),
                        region_start: w * LOG_BLOCKS_PER_WORKER,
                        next_block: w * LOG_BLOCKS_PER_WORKER,
                        region_blocks: LOG_BLOCKS_PER_WORKER,
                        next_seq: 1,
                    })
                })
                .collect(),
            flush: FlushDaemon::new(device.clone(), FS_BLOCK),
            log_device: device,
            next_ino: AtomicU64::new(1),
            perf: PerfCounters::new(),
            downstream_ns: AtomicU64::new(0),
            last_repair: Mutex::new(None),
        }
    }

    /// Forward while attributing the downstream busy time to downstream.
    fn fwd(&self, ctx: &mut Ctx, env: &StackEnv<'_>, req: Request) -> RespPayload {
        let before = ctx.busy();
        let r = env.forward(ctx, req);
        self.downstream_ns
            .fetch_add(ctx.busy() - before, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        r
    }

    fn name_shard_idx(&self, path: &str) -> usize {
        let mut h = 0xcbf29ce484222325u64;
        for b in path.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
        }
        (h as usize) % self.names.len()
    }

    fn name_shard(&self, path: &str) -> &RwLock<HashMap<String, u64>> {
        &self.names[self.name_shard_idx(path)]
    }

    fn node_shard(&self, ino: u64) -> &RwLock<HashMap<u64, FsNode>> {
        &self.nodes[(ino as usize) % self.nodes.len()]
    }

    /// Append a record to the originating worker's log. Once the buffer
    /// crosses the kick threshold it is streamed to the flush daemon in
    /// the background, so the append path never blocks on the device.
    fn log(&self, ctx: &mut Ctx, core: usize, rec: &LogRecord) {
        ctx.advance(LOG_APPEND_NS);
        let mut log = self.logs[core % self.logs.len()].lock();
        log.append(rec);
        if log.buffer.len() >= FLUSH_KICK_BYTES {
            // Region-full is not actionable here; the next fsync's kick
            // surfaces it (the buffer just keeps accumulating).
            let _ = self.kick_log(ctx.now(), &mut log);
        }
    }

    /// Foreground half of the double-buffered flush: reserve this log's
    /// next transaction (blocks + sequence number), swap the buffer out,
    /// and hand it to the daemon. Cursors advance here, so appends keep
    /// filling the fresh buffer while the old one flushes; a region-full
    /// error leaves the log untouched.
    fn kick_log(&self, now: u64, log: &mut MetaLog) -> Result<(), String> {
        if log.buffer.is_empty() {
            return Ok(());
        }
        let blocks = journal::txn_blocks(log.buffer.len(), FS_BLOCK);
        if log.next_block + blocks > log.region_start + log.region_blocks {
            return Err("metadata log region full".to_string());
        }
        let payload = std::mem::take(&mut log.buffer);
        self.flush
            .submit(log.next_seq, payload, log.next_block, now);
        log.next_block += blocks;
        log.next_seq += 1;
        Ok(())
    }

    /// Flush every log's buffered records to its device region as one
    /// journal transaction each, then wait for durability. The daemon
    /// writes header+payload first and the commit record only after that
    /// write was accepted (write-ahead ordering): a crash between the two
    /// leaves an uncommitted transaction that recovery discards.
    fn flush_logs(&self, ctx: &mut Ctx) -> Result<(), String> {
        for log in &self.logs {
            self.kick_log(ctx.now(), &mut log.lock())?;
        }
        self.flush.sync(ctx)
    }

    /// Apply one log record to the in-memory maps (used by replay).
    fn apply(&self, rec: LogRecord) {
        match rec {
            LogRecord::Create {
                path,
                ino,
                mode,
                uid,
                gid,
                is_dir,
            } => {
                self.name_shard(&path).write().insert(path, ino);
                self.node_shard(ino).write().insert(
                    ino,
                    FsNode {
                        ino,
                        size: 0,
                        uid,
                        gid,
                        mode,
                        is_dir,
                        blocks: HashMap::new(),
                        ops: 1,
                        last_writer: uid,
                    },
                );
                // Keep ino allocation ahead of everything replayed.
                self.next_ino.fetch_max(ino + 1, Ordering::Relaxed); // relaxed-ok: fresh-id allocation; atomicity alone suffices
            }
            LogRecord::Unlink { path } => {
                if let Some(ino) = self.name_shard(&path).write().remove(&path) {
                    self.node_shard(ino).write().remove(&ino);
                }
            }
            LogRecord::SetSize { ino, size } => {
                if let Some(n) = self.node_shard(ino).write().get_mut(&ino) {
                    n.size = size;
                }
            }
            LogRecord::MapBlock { ino, page, block } => {
                if let Some(n) = self.node_shard(ino).write().get_mut(&ino) {
                    n.blocks.insert(page, block);
                }
            }
            LogRecord::Rename { from, to } => {
                self.rename_in_maps(&from, &to);
            }
        }
    }

    /// Move a key between name shards, replacing any existing target
    /// (POSIX rename semantics). Returns false if `from` does not exist.
    fn rename_in_maps(&self, from: &str, to: &str) -> bool {
        // Lock discipline: a rename may span two shards; take the lower
        // shard index first.
        let fi = self.name_shard_idx(from);
        let ti = self.name_shard_idx(to);
        if fi == ti {
            let mut shard = self.names[fi].write();
            let Some(ino) = shard.remove(from) else {
                return false;
            };
            if let Some(old) = shard.insert(to.to_string(), ino) {
                self.node_shard(old).write().remove(&old);
            }
            true
        } else {
            let (lo, hi) = (fi.min(ti), fi.max(ti));
            let mut lo_guard = self.names[lo].write();
            let mut hi_guard = self.names[hi].write();
            let (from_shard, to_shard) = if fi == lo {
                (&mut lo_guard, &mut hi_guard)
            } else {
                (&mut hi_guard, &mut lo_guard)
            };
            let Some(ino) = from_shard.remove(from) else {
                return false;
            };
            if let Some(old) = to_shard.insert(to.to_string(), ino) {
                self.node_shard(old).write().remove(&old);
            }
            true
        }
    }

    /// Drop all in-memory state and rebuild it by scanning the on-device
    /// journal regions — the crash-recovery path behind `state_repair`.
    ///
    /// The scan trusts media, not in-memory cursors: it walks each region
    /// from its start, replays the longest prefix of committed
    /// transactions, and discards any torn or uncommitted tail (see
    /// [`crate::journal::replay_scan`]). Cursors are then reset so new
    /// appends resume right after the last committed transaction.
    pub fn replay_from_device(&self) -> RepairReport {
        // Quiesce the flush daemon and clear its error latch: queued
        // buffers predate the crash and the scan below trusts media.
        self.flush.reset();
        for shard in &self.names {
            shard.write().clear();
        }
        for shard in &self.nodes {
            shard.write().clear();
        }
        let mut report = RepairReport::default();
        let mut ctx = Ctx::new(); // recovery timeline; not client-visible
        for log in &self.logs {
            let mut log = log.lock();
            let region_start = log.region_start;
            let device = &self.log_device;
            let outcome = journal::replay_scan(log.region_blocks, FS_BLOCK, |block, n| {
                let mut buf = vec![0u8; n as usize * FS_BLOCK];
                device
                    .read(&mut ctx, (region_start + block) * BLOCK_SECTORS, &mut buf)
                    .ok()
                    .map(|_| buf)
            });
            for (_seq, payload) in &outcome.txns {
                let mut pos = 0usize;
                while pos < payload.len() {
                    match LogRecord::decode(payload, &mut pos) {
                        Some(rec) => {
                            self.apply(rec);
                            report.records_replayed += 1;
                        }
                        None => {
                            // A committed payload should decode cleanly;
                            // a malformed entry is surfaced, not
                            // swallowed.
                            report.records_discarded += 1;
                            break;
                        }
                    }
                }
            }
            for payload in &outcome.discarded_payloads {
                let mut pos = 0usize;
                while pos < payload.len() {
                    match LogRecord::decode(payload, &mut pos) {
                        Some(_) => report.records_discarded += 1,
                        None => break,
                    }
                }
            }
            report.txns_replayed += outcome.txns.len() as u64;
            report.txns_discarded += outcome.txns_discarded;
            report.torn_tail |= outcome.torn_tail;
            // Resume appends after the last committed transaction, and
            // drop any unflushed buffer — it predates the crash.
            log.next_block = region_start + outcome.next_block;
            log.next_seq = outcome.txns.last().map(|(s, _)| s + 1).unwrap_or(1);
            log.buffer.clear();
        }
        *self.last_repair.lock() = Some(report);
        report
    }

    /// What the most recent repair found, if one has run.
    pub fn last_repair(&self) -> Option<RepairReport> {
        *self.last_repair.lock()
    }

    /// Number of live files/directories.
    pub fn file_count(&self) -> usize {
        self.names.iter().map(|s| s.read().len()).sum()
    }

    /// Provenance query: (ops, last_writer) for an inode.
    pub fn provenance(&self, ino: u64) -> Option<(u64, u32)> {
        self.node_shard(ino)
            .read()
            .get(&ino)
            .map(|n| (n.ops, n.last_writer))
    }

    // ---- operations ----------------------------------------------------

    fn op_create(
        &self,
        ctx: &mut Ctx,
        req: &Request,
        path: &str,
        mode: u16,
        is_dir: bool,
    ) -> RespPayload {
        ctx.advance(CREATE_CPU_NS);
        let ino = {
            let mut names = self.name_shard(path).write();
            if names.contains_key(path) {
                return RespPayload::Err(format!("{path}: file exists"));
            }
            let ino = self.next_ino.fetch_add(1, Ordering::Relaxed); // relaxed-ok: fresh-id allocation; atomicity alone suffices
            names.insert(path.to_string(), ino);
            ino
        };
        self.node_shard(ino).write().insert(
            ino,
            FsNode {
                ino,
                size: 0,
                uid: req.creds.uid,
                gid: req.creds.gid,
                mode,
                is_dir,
                blocks: HashMap::new(),
                ops: 1,
                last_writer: req.creds.uid,
            },
        );
        self.log(
            ctx,
            req.core,
            &LogRecord::Create {
                path: path.to_string(),
                ino,
                mode,
                uid: req.creds.uid,
                gid: req.creds.gid,
                is_dir,
            },
        );
        RespPayload::Ino(ino)
    }

    /// Map `[offset, offset+len)` of `ino` to device blocks, allocating
    /// and logging as needed (the metadata half shared by the copying and
    /// zero-copy write paths). Returns the (page, block) extents and the
    /// set of freshly mapped pages.
    #[allow(clippy::type_complexity)]
    fn map_range(
        &self,
        ctx: &mut Ctx,
        req: &Request,
        ino: u64,
        offset: u64,
        len: usize,
    ) -> Result<(Vec<(u64, u64)>, std::collections::HashSet<u64>), RespPayload> {
        let first_pg = offset / FS_BLOCK as u64;
        let last_pg = (offset + len as u64).div_ceil(FS_BLOCK as u64);
        let mut extents: Vec<(u64, u64)> = Vec::new(); // (page, block)
        let mut fresh: Vec<(u64, u64)> = Vec::new(); // newly mapped
        let grew;
        {
            let mut shard = self.node_shard(ino).write();
            let Some(node) = shard.get_mut(&ino) else {
                return Err(RespPayload::Err(format!("no inode {ino}")));
            };
            if node.is_dir {
                return Err(RespPayload::Err("is a directory".into()));
            }
            for pg in first_pg..last_pg {
                match node.blocks.get(&pg) {
                    Some(&b) => extents.push((pg, b)),
                    None => {
                        ctx.advance(ALLOC_NS);
                        let Some(b) = self.allocator.alloc(req.core) else {
                            return Err(RespPayload::Err("no space".into()));
                        };
                        node.blocks.insert(pg, b);
                        extents.push((pg, b));
                        fresh.push((pg, b));
                    }
                }
            }
            grew = offset + len as u64 > node.size;
            node.size = node.size.max(offset + len as u64);
            node.ops += 1;
            node.last_writer = req.creds.uid;
        }
        // Log only what changed: new mappings and growth.
        for &(pg, b) in &fresh {
            self.log(
                ctx,
                req.core,
                &LogRecord::MapBlock {
                    ino,
                    page: pg,
                    block: b,
                },
            );
        }
        if grew {
            self.log(
                ctx,
                req.core,
                &LogRecord::SetSize {
                    ino,
                    size: offset + len as u64,
                },
            );
        }
        Ok((extents, fresh.iter().map(|&(pg, _)| pg).collect()))
    }

    fn op_write(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        ino: u64,
        offset: u64,
        data: &[u8],
    ) -> RespPayload {
        // Map every touched page to a block, allocating as needed.
        ctx.advance(META_CPU_NS); // inode + mapping lookup
        let (extents, fresh_pages) = match self.map_range(ctx, req, ino, offset, data.len()) {
            Ok(v) => v,
            Err(e) => return e,
        };
        // Emit block writes downstream. Partially-covered pages that were
        // already mapped (and not freshly allocated) need read-modify-write
        // so neighbouring bytes survive; full pages and fresh pages are
        // written directly, coalescing contiguous full blocks.
        let block_write = |this: &Self,
                           ctx: &mut Ctx,
                           env: &StackEnv<'_>,
                           lba: u64,
                           payload: Vec<u8>|
         -> RespPayload {
            let mut fwd = Request::new(
                req.id,
                req.stack,
                Payload::Block(BlockOp::Write { lba, data: payload }),
                req.creds,
            );
            fwd.vertex = env.vertex;
            fwd.core = req.core;
            fwd.qid_hint = req.qid_hint;
            this.fwd(ctx, env, fwd)
        };
        let mut i = 0usize;
        while i < extents.len() {
            let (page, block) = extents[i];
            let pg_start = page * FS_BLOCK as u64;
            let cover_from = pg_start.max(offset);
            let cover_to = (pg_start + FS_BLOCK as u64).min(offset + data.len() as u64);
            let full = cover_from == pg_start && cover_to == pg_start + FS_BLOCK as u64;
            if !full && !fresh_pages.contains(&page) {
                // Partial overwrite of an existing block: read-modify-write.
                let mut rd = Request::new(
                    req.id,
                    req.stack,
                    Payload::Block(BlockOp::Read {
                        lba: block * BLOCK_SECTORS,
                        len: FS_BLOCK,
                    }),
                    req.creds,
                );
                rd.vertex = env.vertex;
                rd.core = req.core;
                rd.qid_hint = req.qid_hint;
                let mut payload = match self.fwd(ctx, env, rd) {
                    RespPayload::Data(d) => d,
                    other => return other,
                };
                payload.resize(FS_BLOCK, 0);
                let dst = (cover_from - pg_start) as usize;
                let src = (cover_from - offset) as usize;
                let n = (cover_to - cover_from) as usize;
                payload[dst..dst + n].copy_from_slice(&data[src..src + n]);
                let r = block_write(self, ctx, env, block * BLOCK_SECTORS, payload);
                if !r.is_ok() {
                    return r;
                }
                i += 1;
                continue;
            }
            // Coalesce a run of contiguous blocks that are full or fresh.
            let mut j = i;
            while j + 1 < extents.len() && extents[j + 1].1 == extents[j].1 + 1 {
                let (npage, _) = extents[j + 1];
                let n_start = npage * FS_BLOCK as u64;
                let n_end = n_start + FS_BLOCK as u64;
                let n_full = offset <= n_start && n_end <= offset + data.len() as u64;
                if !n_full && !fresh_pages.contains(&npage) {
                    break;
                }
                j += 1;
            }
            let run_pages = (j - i + 1) as u64;
            let run_start = (page * FS_BLOCK as u64).max(offset);
            let run_end = ((page + run_pages) * FS_BLOCK as u64).min(offset + data.len() as u64);
            let mut payload = vec![0u8; (run_pages as usize) * FS_BLOCK];
            let src_from = (run_start - offset) as usize;
            let src_to = (run_end - offset) as usize;
            let dst_from = (run_start - pg_start) as usize;
            payload[dst_from..dst_from + (src_to - src_from)]
                .copy_from_slice(&data[src_from..src_to]);
            let r = block_write(self, ctx, env, block * BLOCK_SECTORS, payload);
            if !r.is_ok() {
                return r;
            }
            i = j + 1;
        }
        RespPayload::Len(data.len())
    }

    fn op_read(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        ino: u64,
        offset: u64,
        len: usize,
    ) -> RespPayload {
        ctx.advance(META_CPU_NS); // inode + mapping lookup
        let (size, mappings): (u64, Vec<Option<u64>>) = {
            let shard = self.node_shard(ino).read();
            let Some(node) = shard.get(&ino) else {
                return RespPayload::Err(format!("no inode {ino}"));
            };
            if node.is_dir {
                return RespPayload::Err("is a directory".into());
            }
            let first_pg = offset / FS_BLOCK as u64;
            let last_pg = (offset + len as u64).div_ceil(FS_BLOCK as u64);
            (
                node.size,
                (first_pg..last_pg)
                    .map(|pg| node.blocks.get(&pg).copied())
                    .collect(),
            )
        };
        if offset >= size {
            return RespPayload::Data(Vec::new());
        }
        let n = len.min((size - offset) as usize);
        let first_pg = offset / FS_BLOCK as u64;
        let mut out = vec![0u8; n];
        for (idx, mapping) in mappings.iter().enumerate() {
            let pg = first_pg + idx as u64;
            let pg_start = pg * FS_BLOCK as u64;
            let copy_from = pg_start.max(offset);
            let copy_to = (pg_start + FS_BLOCK as u64).min(offset + n as u64);
            if copy_from >= copy_to {
                continue;
            }
            if let Some(block) = mapping {
                let mut fwd = Request::new(
                    req.id,
                    req.stack,
                    Payload::Block(BlockOp::Read {
                        lba: block * BLOCK_SECTORS,
                        len: FS_BLOCK,
                    }),
                    req.creds,
                );
                fwd.vertex = env.vertex;
                fwd.core = req.core;
                fwd.qid_hint = req.qid_hint;
                match self.fwd(ctx, env, fwd) {
                    RespPayload::Data(block_data) => {
                        let src = (copy_from - pg_start) as usize;
                        let dst = (copy_from - offset) as usize;
                        let cnt = (copy_to - copy_from) as usize;
                        out[dst..dst + cnt].copy_from_slice(&block_data[src..src + cnt]);
                    }
                    other => return other,
                }
            }
            // Unmapped pages are holes: already zero.
        }
        RespPayload::Data(out)
    }

    /// Forward one block op downstream with the request's routing intact.
    fn fwd_block(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        op: BlockOp,
    ) -> RespPayload {
        let mut fwd = Request::new(req.id, req.stack, Payload::Block(op), req.creds);
        fwd.vertex = env.vertex;
        fwd.core = req.core;
        fwd.qid_hint = req.qid_hint;
        self.fwd(ctx, env, fwd)
    }

    /// Zero-copy write: fully covered pages are forwarded as `WriteBuf`
    /// slices of the caller's pool buffer (refcount bumps — no memcpy all
    /// the way to the driver, which DMAs from the shared buffer). Partial
    /// pages fall back to the copying path: fresh ones are zero-padded,
    /// existing ones read-modify-write; both copies are counted.
    fn op_write_buf(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        ino: u64,
        offset: u64,
        buf: &labstor_ipc::BufHandle,
    ) -> RespPayload {
        ctx.advance(META_CPU_NS); // inode + mapping lookup
        let data_len = buf.len();
        let (extents, fresh_pages) = match self.map_range(ctx, req, ino, offset, data_len) {
            Ok(v) => v,
            Err(e) => return e,
        };
        let end = offset + data_len as u64;
        let mut i = 0usize;
        while i < extents.len() {
            let (page, block) = extents[i];
            let pg_start = page * FS_BLOCK as u64;
            let cover_from = pg_start.max(offset);
            let cover_to = (pg_start + FS_BLOCK as u64).min(end);
            let full = cover_from == pg_start && cover_to == pg_start + FS_BLOCK as u64;
            if full {
                // Coalesce contiguous fully covered blocks into one slice.
                let mut j = i;
                while j + 1 < extents.len() && extents[j + 1].1 == extents[j].1 + 1 {
                    let n_start = extents[j + 1].0 * FS_BLOCK as u64;
                    if !(offset <= n_start && n_start + FS_BLOCK as u64 <= end) {
                        break;
                    }
                    j += 1;
                }
                let run_pages = j - i + 1;
                let Some(slice) = buf.slice((pg_start - offset) as usize, run_pages * FS_BLOCK)
                else {
                    return RespPayload::Err("write buffer shorter than its extent".into());
                };
                let r = self.fwd_block(
                    ctx,
                    env,
                    req,
                    BlockOp::WriteBuf {
                        lba: block * BLOCK_SECTORS,
                        buf: slice,
                    },
                );
                if !r.is_ok() {
                    return r;
                }
                i = j + 1;
                continue;
            }
            // Partial page: copying fallback.
            let dst = (cover_from - pg_start) as usize;
            let src = (cover_from - offset) as usize;
            let cnt = (cover_to - cover_from) as usize;
            let mut payload = if fresh_pages.contains(&page) {
                vec![0u8; FS_BLOCK] // fresh block: pad with zeroes
            } else {
                // Read-modify-write so neighbouring bytes survive.
                let mut p = match self.fwd_block(
                    ctx,
                    env,
                    req,
                    BlockOp::Read {
                        lba: block * BLOCK_SECTORS,
                        len: FS_BLOCK,
                    },
                ) {
                    RespPayload::Data(d) => d,
                    RespPayload::DataBuf(h) => h.to_vec(), // copy-ok: RMW needs owned bytes; to_vec self-counts
                    other => return other,
                };
                p.resize(FS_BLOCK, 0);
                p
            };
            labstor_ipc::note_payload_copy(cnt);
            payload[dst..dst + cnt].copy_from_slice(&buf.as_slice()[src..src + cnt]); // copy-ok: partial-page patch; counted above
            let r = self.fwd_block(
                ctx,
                env,
                req,
                BlockOp::Write {
                    lba: block * BLOCK_SECTORS,
                    data: payload,
                },
            );
            if !r.is_ok() {
                return r;
            }
            i += 1;
        }
        RespPayload::Len(data_len)
    }

    /// Zero-copy read: a read confined to one page forwards `ReadBuf` and
    /// answers with a slice of the returned handle — a cache hit
    /// downstream is refcount bumps end to end. Multi-page reads assemble
    /// into one pool buffer (each block lands with one counted copy),
    /// falling back to the legacy copying path when the pool is dry.
    fn op_read_buf(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        ino: u64,
        offset: u64,
        len: usize,
    ) -> RespPayload {
        ctx.advance(META_CPU_NS); // inode + mapping lookup
        let (size, mappings): (u64, Vec<Option<u64>>) = {
            let shard = self.node_shard(ino).read();
            let Some(node) = shard.get(&ino) else {
                return RespPayload::Err(format!("no inode {ino}"));
            };
            if node.is_dir {
                return RespPayload::Err("is a directory".into());
            }
            let first_pg = offset / FS_BLOCK as u64;
            let last_pg = (offset + len as u64).div_ceil(FS_BLOCK as u64);
            (
                node.size,
                (first_pg..last_pg)
                    .map(|pg| node.blocks.get(&pg).copied())
                    .collect(),
            )
        };
        if offset >= size {
            return RespPayload::Data(Vec::new());
        }
        let n = len.min((size - offset) as usize);
        let first_pg = offset / FS_BLOCK as u64;
        let single_page = (offset + n as u64 - 1) / FS_BLOCK as u64 == first_pg;
        if single_page {
            let pg_start = first_pg * FS_BLOCK as u64;
            let Some(Some(block)) = mappings.first() else {
                // Hole: hand back zeroes without touching the stack.
                // Small holes ride inline in the envelope.
                if n <= labstor_ipc::INLINE_MAX {
                    if let Some(d) = labstor_ipc::InlineData::from_slice(&vec![0u8; n]) {
                        return RespPayload::Inline(d);
                    }
                }
                return match labstor_ipc::default_pool().alloc(n) {
                    Some(mut h) => {
                        h.write_with(|b| b.fill(0));
                        RespPayload::DataBuf(h)
                    }
                    None => RespPayload::Data(vec![0u8; n]),
                };
            };
            let resp = self.fwd_block(
                ctx,
                env,
                req,
                BlockOp::ReadBuf {
                    lba: block * BLOCK_SECTORS,
                    len: FS_BLOCK,
                },
            );
            let src = (offset - pg_start) as usize;
            return match resp {
                RespPayload::DataBuf(h) => {
                    // Small results skip the handle round trip and ride
                    // by value in the envelope — the client-side copy-out
                    // this replaces is the counted legacy copy.
                    if let Some(win) = h.as_slice().get(src..src + n) {
                        if let Some(d) = labstor_ipc::InlineData::from_slice(win) {
                            return RespPayload::Inline(d);
                        }
                    }
                    // The zero-copy path: slice the cached/DMA'd block.
                    match h.slice(src, n) {
                        Some(s) => RespPayload::DataBuf(s),
                        None => RespPayload::Err("short block read".into()),
                    }
                }
                RespPayload::Data(d) if d.len() >= src + n => {
                    if let Some(inl) = labstor_ipc::InlineData::from_slice(&d[src..src + n]) {
                        return RespPayload::Inline(inl);
                    }
                    labstor_ipc::note_payload_copy(n);
                    RespPayload::Data(d[src..src + n].to_vec()) // copy-ok: legacy downstream answered with owned bytes; counted above
                }
                RespPayload::Data(_) => RespPayload::Err("short block read".into()),
                other => other,
            };
        }
        // Multi-page: assemble into one pool buffer.
        let Some(mut out) = labstor_ipc::default_pool().alloc(n) else {
            return self.op_read(ctx, env, req, ino, offset, len);
        };
        out.write_with(|b| b.fill(0));
        for (idx, mapping) in mappings.iter().enumerate() {
            let pg = first_pg + idx as u64;
            let pg_start = pg * FS_BLOCK as u64;
            let copy_from = pg_start.max(offset);
            let copy_to = (pg_start + FS_BLOCK as u64).min(offset + n as u64);
            if copy_from >= copy_to {
                continue;
            }
            let Some(block) = mapping else {
                continue; // hole: already zero
            };
            let resp = self.fwd_block(
                ctx,
                env,
                req,
                BlockOp::ReadBuf {
                    lba: block * BLOCK_SECTORS,
                    len: FS_BLOCK,
                },
            );
            let src = (copy_from - pg_start) as usize;
            let dst = (copy_from - offset) as usize;
            let cnt = (copy_to - copy_from) as usize;
            let block_bytes = match &resp {
                RespPayload::DataBuf(h) => h.as_slice(),
                RespPayload::Data(d) => d.as_slice(),
                _ => return resp,
            };
            if block_bytes.len() < src + cnt {
                return RespPayload::Err("short block read".into());
            }
            labstor_ipc::note_payload_copy(cnt);
            // copy-ok: multi-page assembly into the result buffer; counted above
            out.write_with(|b| b[dst..dst + cnt].copy_from_slice(&block_bytes[src..src + cnt]));
        }
        RespPayload::DataBuf(out)
    }

    /// Pushdown read: run a verified program over the file range
    /// in-stack and ship back only the result. Every page is scanned in
    /// place — cache hits stay refcounted handle slices, legacy `Data`
    /// answers are scanned where they sit — so the hit path counts
    /// **zero** payload copies. Fuel is metered per instruction across
    /// the whole range and billed to the requesting tenant afterwards.
    #[allow(clippy::too_many_arguments)]
    fn op_read_filtered(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: &Request,
        ino: u64,
        offset: u64,
        len: usize,
        prog: &labstor_pushdown::VerifiedProgram,
    ) -> RespPayload {
        use labstor_pushdown::{scan, Action, ScanOut};

        let rlen = prog.record_len();
        // Records must pack pages exactly: no record straddles a block
        // boundary, so each page scans independently over one slice.
        if rlen > FS_BLOCK || !FS_BLOCK.is_multiple_of(rlen) {
            return RespPayload::Err(format!(
                "pushdown: record length {rlen} does not pack {FS_BLOCK}-byte pages"
            ));
        }
        if !offset.is_multiple_of(rlen as u64) {
            return RespPayload::Err(format!(
                "pushdown: offset {offset} not aligned to {rlen}-byte records"
            ));
        }
        ctx.advance(META_CPU_NS); // inode + mapping lookup
        let (size, mappings): (u64, Vec<Option<u64>>) = {
            let shard = self.node_shard(ino).read();
            let Some(node) = shard.get(&ino) else {
                return RespPayload::Err(format!("no inode {ino}"));
            };
            if node.is_dir {
                return RespPayload::Err("is a directory".into());
            }
            let first_pg = offset / FS_BLOCK as u64;
            let last_pg = (offset + len as u64).div_ceil(FS_BLOCK as u64);
            (
                node.size,
                (first_pg..last_pg)
                    .map(|pg| node.blocks.get(&pg).copied())
                    .collect(),
            )
        };
        let avail = size.saturating_sub(offset) as usize;
        let n = (len.min(avail) / rlen) * rlen; // whole records only
        let mut fuel = prog.fuel_budget();
        let mut out = ScanOut::default();
        let mut matched: Vec<u8> = Vec::new();
        let first_pg = offset / FS_BLOCK as u64;
        static ZERO_PAGE: [u8; FS_BLOCK] = [0u8; FS_BLOCK];
        for (idx, mapping) in mappings.iter().enumerate() {
            let pg = first_pg + idx as u64;
            let pg_start = pg * FS_BLOCK as u64;
            let win_from = pg_start.max(offset);
            let win_to = (pg_start + FS_BLOCK as u64).min(offset + n as u64);
            if win_from >= win_to {
                continue;
            }
            let src = (win_from - pg_start) as usize;
            let cnt = (win_to - win_from) as usize;
            let base_index = (win_from - offset) / rlen as u64;
            // Holes read as zeroes; scan the shared zero page so hole
            // semantics match a plain read without materializing pages.
            let hole_resp;
            let window: &[u8] = match mapping {
                None => &ZERO_PAGE[src..src + cnt],
                Some(block) => {
                    hole_resp = self.fwd_block(
                        ctx,
                        env,
                        req,
                        BlockOp::ReadBuf {
                            lba: block * BLOCK_SECTORS,
                            len: FS_BLOCK,
                        },
                    );
                    match &hole_resp {
                        // The pushdown payoff: scan the cached/DMA'd
                        // block in place through the handle — no copy.
                        RespPayload::DataBuf(h) if h.len() >= src + cnt => {
                            &h.as_slice()[src..src + cnt]
                        }
                        RespPayload::Data(d) if d.len() >= src + cnt => &d[src..src + cnt],
                        RespPayload::DataBuf(_) | RespPayload::Data(_) => {
                            return RespPayload::Err("short block read".into())
                        }
                        _ => return hole_resp.clone(),
                    }
                }
            };
            let before_hits = out.hits.len();
            let scan_result = scan(prog, window, base_index, &mut fuel, &mut out);
            if prog.action() == Action::Select {
                for &hit in &out.hits[before_hits..] {
                    // copy-ok: materializing the (rare) matching records is
                    // the result, not a payload move; the pool boundary
                    // below self-counts if it leaves inline range.
                    matched.extend_from_slice(&window[hit..hit + rlen]);
                }
            }
            if scan_result.is_err() {
                let used = prog.fuel_budget() - fuel;
                let _ = env.charge_fuel(ctx, &req.creds, used);
                return RespPayload::Err(format!(
                    "pushdown: out of fuel after {} records",
                    out.records
                ));
            }
        }
        let used = prog.fuel_budget() - fuel;
        if let Err(retry_vns) = env.charge_fuel(ctx, &req.creds, used) {
            return RespPayload::Err(format!(
                "pushdown: tenant {} over fuel budget, retry in {retry_vns} vns",
                req.creds.tenant.as_u32()
            ));
        }
        match prog.action() {
            Action::Count | Action::Sum => {
                let reply = labstor_pushdown::AggReply {
                    records: out.records,
                    matches: out.matches,
                    agg: out.agg,
                    fuel_used: used,
                };
                match labstor_ipc::InlineData::from_slice(&reply.encode()) {
                    Some(d) => RespPayload::Inline(d),
                    None => RespPayload::Err("pushdown: aggregate too large".into()),
                }
            }
            Action::Select => match labstor_ipc::InlineData::from_slice(&matched) {
                Some(d) => RespPayload::Inline(d),
                None => match labstor_ipc::default_pool().alloc_from(&matched) {
                    Some(h) => RespPayload::DataBuf(h),
                    None => RespPayload::Data(matched),
                },
            },
        }
    }
}

impl LabMod for LabFs {
    fn type_name(&self) -> &'static str {
        "labfs"
    }

    fn mod_type(&self) -> ModType {
        ModType::Filesystem
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let before = ctx.busy();
        let resp = match &req.payload {
            Payload::Fs(FsOp::Create { path, mode }) => {
                self.op_create(ctx, &req, path, *mode, false)
            }
            Payload::Fs(FsOp::Mkdir { path, mode }) => self.op_create(ctx, &req, path, *mode, true),
            Payload::Fs(FsOp::Open {
                path,
                create,
                truncate,
            }) => {
                ctx.advance(META_CPU_NS);
                let existing = self.name_shard(path).read().get(path).copied();
                match existing {
                    Some(ino) => {
                        if *truncate {
                            if let Some(n) = self.node_shard(ino).write().get_mut(&ino) {
                                n.size = 0;
                                n.blocks.clear();
                                n.ops += 1;
                            }
                            self.log(ctx, req.core, &LogRecord::SetSize { ino, size: 0 });
                        }
                        RespPayload::Ino(ino)
                    }
                    None if *create => self.op_create(ctx, &req, path, 0o644, false),
                    None => RespPayload::Err(format!("{path}: not found")),
                }
            }
            Payload::Fs(FsOp::Write { ino, offset, data }) => {
                self.op_write(ctx, env, &req, *ino, *offset, data)
            }
            Payload::Fs(FsOp::WriteBuf { ino, offset, buf }) => {
                self.op_write_buf(ctx, env, &req, *ino, *offset, buf)
            }
            Payload::Fs(FsOp::Read { ino, offset, len }) => {
                self.op_read(ctx, env, &req, *ino, *offset, *len)
            }
            Payload::Fs(FsOp::ReadBuf { ino, offset, len }) => {
                self.op_read_buf(ctx, env, &req, *ino, *offset, *len)
            }
            Payload::Fs(FsOp::ReadFiltered {
                ino,
                offset,
                len,
                prog,
            }) => self.op_read_filtered(ctx, env, &req, *ino, *offset, *len, prog),
            Payload::Fs(FsOp::Rename { from, to }) => {
                ctx.advance(META_CPU_NS);
                if self.rename_in_maps(from, to) {
                    self.log(
                        ctx,
                        req.core,
                        &LogRecord::Rename {
                            from: from.clone(),
                            to: to.clone(),
                        },
                    );
                    RespPayload::Ok
                } else {
                    RespPayload::Err(format!("{from}: not found"))
                }
            }
            Payload::Fs(FsOp::Unlink { path }) => {
                ctx.advance(META_CPU_NS);
                let removed = self.name_shard(path).write().remove(path);
                match removed {
                    Some(ino) => {
                        self.node_shard(ino).write().remove(&ino);
                        self.log(ctx, req.core, &LogRecord::Unlink { path: path.clone() });
                        RespPayload::Ok
                    }
                    None => RespPayload::Err(format!("{path}: not found")),
                }
            }
            Payload::Fs(FsOp::Stat { path }) => {
                ctx.advance(META_CPU_NS);
                let ino = self.name_shard(path).read().get(path).copied();
                match ino.and_then(|i| {
                    self.node_shard(i).read().get(&i).map(|n| FileStat {
                        ino: n.ino,
                        size: n.size,
                        is_dir: n.is_dir,
                        uid: n.uid,
                        gid: n.gid,
                        mode: n.mode,
                    })
                }) {
                    Some(st) => RespPayload::Stat(st),
                    None => RespPayload::Err(format!("{path}: not found")),
                }
            }
            Payload::Fs(FsOp::Readdir { path }) => {
                let prefix = if path.ends_with('/') {
                    path.clone()
                } else {
                    format!("{path}/")
                };
                let mut names: Vec<String> = Vec::new();
                for shard in &self.names {
                    for key in shard.read().keys() {
                        if let Some(rest) = key.strip_prefix(&prefix) {
                            if !rest.is_empty() && !rest.contains('/') {
                                names.push(rest.to_string());
                            }
                        }
                    }
                }
                ctx.advance(100 * names.len().max(1) as u64);
                names.sort();
                RespPayload::Names(names)
            }
            Payload::Fs(FsOp::Truncate { ino, size }) => {
                ctx.advance(META_CPU_NS);
                let mut shard = self.node_shard(*ino).write();
                match shard.get_mut(ino) {
                    Some(n) => {
                        n.size = *size;
                        let keep = size.div_ceil(FS_BLOCK as u64);
                        n.blocks.retain(|&pg, _| pg < keep);
                        n.ops += 1;
                        drop(shard);
                        self.log(
                            ctx,
                            req.core,
                            &LogRecord::SetSize {
                                ino: *ino,
                                size: *size,
                            },
                        );
                        RespPayload::Ok
                    }
                    None => RespPayload::Err(format!("no inode {ino}")),
                }
            }
            Payload::Fs(FsOp::Fsync { .. }) => {
                // Persist the metadata log, then barrier the data path.
                if let Err(e) = self.flush_logs(ctx) {
                    return RespPayload::Err(e);
                }
                let mut fwd =
                    Request::new(req.id, req.stack, Payload::Block(BlockOp::Flush), req.creds);
                fwd.vertex = env.vertex;
                fwd.core = req.core;
                self.fwd(ctx, env, fwd)
            }
            // Pass non-FS payloads through (e.g. a barrier travelling the
            // stack).
            _ => self.fwd(ctx, env, req),
        };
        let downstream = self.downstream_ns.swap(0, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.perf
            .observe((ctx.busy() - before).saturating_sub(downstream));
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        self.perf.est_ns(match &req.payload {
            Payload::Fs(FsOp::Write { data, .. }) => 2_000 + data.len() as u64,
            Payload::Fs(FsOp::WriteBuf { buf, .. }) => 2_000 + buf.len() as u64,
            Payload::Fs(
                FsOp::Read { len, .. } | FsOp::ReadBuf { len, .. } | FsOp::ReadFiltered { len, .. },
            ) => 2_000 + *len as u64,
            _ => META_CPU_NS + LOG_APPEND_NS,
        })
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        // Upgrades move the whole in-memory state across instances.
        if let Some(prev) = old.as_any().downcast_ref::<LabFs>() {
            self.perf.absorb(&prev.perf);
            for (mine, theirs) in self.names.iter().zip(prev.names.iter()) {
                *mine.write() = theirs.read().clone();
            }
            for (mine, theirs) in self.nodes.iter().zip(prev.nodes.iter()) {
                let mut m = mine.write();
                let t = theirs.read();
                m.clear();
                for (k, v) in t.iter() {
                    m.insert(
                        *k,
                        FsNode {
                            ino: v.ino,
                            size: v.size,
                            uid: v.uid,
                            gid: v.gid,
                            mode: v.mode,
                            is_dir: v.is_dir,
                            blocks: v.blocks.clone(),
                            ops: v.ops,
                            last_writer: v.last_writer,
                        },
                    );
                }
            }
            // Carry the journal cursors over so the new instance appends
            // after the old one's transactions instead of overwriting the
            // log from the start (which would orphan pre-upgrade metadata
            // on the next crash). Absorb first: it drains the old
            // instance's flush daemon, so the cursors copied below are
            // final and its durability clock / error latch carry over.
            self.flush.absorb(&prev.flush);
            for (mine, theirs) in self.logs.iter().zip(prev.logs.iter()) {
                let mut m = mine.lock();
                let t = theirs.lock();
                m.buffer = t.buffer.clone();
                m.next_block = t.next_block;
                m.next_seq = t.next_seq;
            }
            // relaxed-ok: fresh-id allocation; atomicity alone suffices
            self.next_ino
                .store(prev.next_ino.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    fn state_repair(&self) {
        self.replay_from_device();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the factory. Params: `{"device": "<name>", "workers": <n>}`.
pub fn install(mm: &ModuleManager, devices: &Arc<DeviceRegistry>) {
    let reg = devices.clone();
    mm.register_factory(
        "labfs",
        Arc::new(move |params| {
            let name = device_param(params);
            let dev = reg
                .block(&name)
                .unwrap_or_else(|| panic!("no block device '{name}'"));
            let workers = params.get("workers").and_then(|v| v.as_u64()).unwrap_or(8) as usize;
            Arc::new(LabFs::new(dev, workers)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;
    use labstor_sim::DeviceKind;

    struct Harness {
        mm: ModuleManager,
        stack: LabStack,
    }

    impl Harness {
        fn new() -> (Harness, Arc<SimDevice>) {
            let devices = DeviceRegistry::new();
            let dev = devices.add_preset("nvme0", DeviceKind::Nvme);
            let mm = ModuleManager::new();
            install(&mm, &devices);
            crate::drivers::install(&mm, &devices);
            mm.instantiate(
                "fs",
                "labfs",
                &serde_json::json!({"device": "nvme0", "workers": 4}),
            )
            .unwrap();
            mm.instantiate(
                "drv",
                "kernel_driver",
                &serde_json::json!({"device": "nvme0"}),
            )
            .unwrap();
            let stack = LabStack {
                id: 1,
                mount: "fs::/t".into(),
                exec: ExecMode::Sync,
                vertices: vec![
                    Vertex {
                        uuid: "fs".into(),
                        outputs: vec![1],
                    },
                    Vertex {
                        uuid: "drv".into(),
                        outputs: vec![],
                    },
                ],
                authorized_uids: vec![],
            };
            (Harness { mm, stack }, dev)
        }

        fn exec(&self, payload: Payload, ctx: &mut Ctx) -> RespPayload {
            let env = StackEnv {
                stack: &self.stack,
                vertex: 0,
                registry: &self.mm,
                domain: 0,
            };
            self.mm.get("fs").unwrap().process(
                ctx,
                Request::new(1, 1, payload, Credentials::ROOT),
                &env,
            )
        }

        fn labfs(&self) -> Arc<dyn LabMod> {
            self.mm.get("fs").unwrap()
        }
    }

    fn ino_of(resp: RespPayload) -> u64 {
        match resp {
            RespPayload::Ino(i) => i,
            other => panic!("expected ino, got {other:?}"),
        }
    }

    #[test]
    fn create_write_read_roundtrip() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/a".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        let data: Vec<u8> = (0..10_000).map(|i| (i % 247) as u8).collect();
        let w = h.exec(
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: data.clone(),
            }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(n) if n == data.len()));
        let r = h.exec(
            Payload::Fs(FsOp::Read {
                ino,
                offset: 0,
                len: data.len(),
            }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(d) if d == data));
    }

    #[test]
    fn open_creates_and_truncates() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Open {
                path: "/o".into(),
                create: true,
                truncate: false,
            }),
            &mut ctx,
        ));
        h.exec(
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: vec![1u8; 100],
            }),
            &mut ctx,
        );
        let again = ino_of(h.exec(
            Payload::Fs(FsOp::Open {
                path: "/o".into(),
                create: false,
                truncate: true,
            }),
            &mut ctx,
        ));
        assert_eq!(ino, again);
        let st = h.exec(Payload::Fs(FsOp::Stat { path: "/o".into() }), &mut ctx);
        assert!(matches!(st, RespPayload::Stat(s) if s.size == 0));
    }

    #[test]
    fn readdir_lists_children_only() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        h.exec(
            Payload::Fs(FsOp::Mkdir {
                path: "/d".into(),
                mode: 0o755,
            }),
            &mut ctx,
        );
        h.exec(
            Payload::Fs(FsOp::Create {
                path: "/d/x".into(),
                mode: 0o644,
            }),
            &mut ctx,
        );
        h.exec(
            Payload::Fs(FsOp::Create {
                path: "/d/y".into(),
                mode: 0o644,
            }),
            &mut ctx,
        );
        h.exec(
            Payload::Fs(FsOp::Create {
                path: "/d/sub/z".into(),
                mode: 0o644,
            }),
            &mut ctx,
        );
        let names = h.exec(Payload::Fs(FsOp::Readdir { path: "/d".into() }), &mut ctx);
        assert!(
            matches!(names, RespPayload::Names(n) if n == vec!["x".to_string(), "y".to_string()])
        );
    }

    #[test]
    fn unlink_then_stat_fails() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        h.exec(
            Payload::Fs(FsOp::Create {
                path: "/gone".into(),
                mode: 0o644,
            }),
            &mut ctx,
        );
        assert!(h
            .exec(
                Payload::Fs(FsOp::Unlink {
                    path: "/gone".into()
                }),
                &mut ctx
            )
            .is_ok());
        assert!(!h
            .exec(
                Payload::Fs(FsOp::Stat {
                    path: "/gone".into()
                }),
                &mut ctx
            )
            .is_ok());
        assert!(!h
            .exec(
                Payload::Fs(FsOp::Unlink {
                    path: "/gone".into()
                }),
                &mut ctx
            )
            .is_ok());
    }

    #[test]
    fn duplicate_create_rejected() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        h.exec(
            Payload::Fs(FsOp::Create {
                path: "/dup".into(),
                mode: 0o644,
            }),
            &mut ctx,
        );
        assert!(!h
            .exec(
                Payload::Fs(FsOp::Create {
                    path: "/dup".into(),
                    mode: 0o644
                }),
                &mut ctx
            )
            .is_ok());
    }

    #[test]
    fn sparse_read_returns_zeroes() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/s".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        // Write page 2 only.
        h.exec(
            Payload::Fs(FsOp::Write {
                ino,
                offset: 2 * FS_BLOCK as u64,
                data: vec![7u8; FS_BLOCK],
            }),
            &mut ctx,
        );
        let r = h.exec(
            Payload::Fs(FsOp::Read {
                ino,
                offset: 0,
                len: FS_BLOCK,
            }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(d) if d.iter().all(|&b| b == 0)));
    }

    #[test]
    fn unaligned_overwrite_roundtrips() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/u".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        h.exec(
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: vec![1u8; 8192],
            }),
            &mut ctx,
        );
        let r = h.exec(
            Payload::Fs(FsOp::Read {
                ino,
                offset: 100,
                len: 500,
            }),
            &mut ctx,
        );
        assert!(matches!(r, RespPayload::Data(d) if d.len() == 500 && d.iter().all(|&b| b == 1)));
    }

    #[test]
    fn zero_copy_write_read_roundtrip() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/z".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        let mut buf = labstor_ipc::default_pool().alloc(2 * FS_BLOCK).unwrap();
        buf.write_with(|b| {
            for (i, x) in b.iter_mut().enumerate() {
                *x = (i % 249) as u8;
            }
        });
        let expect = buf.to_vec();
        let w = h.exec(
            Payload::Fs(FsOp::WriteBuf {
                ino,
                offset: 0,
                buf,
            }),
            &mut ctx,
        );
        assert!(matches!(w, RespPayload::Len(n) if n == 2 * FS_BLOCK));
        // A single-page read answers with a refcounted DataBuf slice.
        let r = h.exec(
            Payload::Fs(FsOp::ReadBuf {
                ino,
                offset: 0,
                len: FS_BLOCK,
            }),
            &mut ctx,
        );
        match r {
            RespPayload::DataBuf(hdl) => assert_eq!(hdl.as_slice(), &expect[..FS_BLOCK]),
            other => panic!("expected DataBuf, got {other:?}"),
        }
        // An unaligned multi-page read assembles byte-identically.
        let r = h.exec(
            Payload::Fs(FsOp::ReadBuf {
                ino,
                offset: 100,
                len: FS_BLOCK + 500,
            }),
            &mut ctx,
        );
        let got = match &r {
            RespPayload::DataBuf(h2) => h2.as_slice().to_vec(),
            RespPayload::Data(d) => d.clone(),
            other => panic!("expected data, got {other:?}"),
        };
        assert_eq!(&got[..], &expect[100..100 + FS_BLOCK + 500]);
    }

    #[test]
    fn crash_recovery_replays_log() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/p".into(),
                mode: 0o600,
            }),
            &mut ctx,
        ));
        let data: Vec<u8> = (0..FS_BLOCK * 2).map(|i| (i % 251) as u8).collect();
        h.exec(
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: data.clone(),
            }),
            &mut ctx,
        );
        // Persist the log (fsync), then wipe all in-memory state and
        // replay from the device: everything must come back.
        assert!(h.exec(Payload::Fs(FsOp::Fsync { ino }), &mut ctx).is_ok());
        let labfs = h.labfs();
        let fs = labfs.as_any().downcast_ref::<LabFs>().unwrap();
        fs.state_repair();
        assert_eq!(fs.file_count(), 1);
        let st = h.exec(Payload::Fs(FsOp::Stat { path: "/p".into() }), &mut ctx);
        assert!(
            matches!(st, RespPayload::Stat(s) if s.size == data.len() as u64 && s.mode == 0o600)
        );
        let r = h.exec(
            Payload::Fs(FsOp::Read {
                ino,
                offset: 0,
                len: data.len(),
            }),
            &mut ctx,
        );
        assert!(
            matches!(r, RespPayload::Data(d) if d == data),
            "data blocks survive via replayed mappings"
        );
    }

    #[test]
    fn repair_reports_clean_replay() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/clean".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        assert!(h.exec(Payload::Fs(FsOp::Fsync { ino }), &mut ctx).is_ok());
        let labfs = h.labfs();
        let fs = labfs.as_any().downcast_ref::<LabFs>().unwrap();
        assert!(fs.last_repair().is_none(), "no repair has run yet");
        let rep = fs.replay_from_device();
        assert_eq!(rep.txns_replayed, 1);
        assert!(rep.records_replayed >= 1);
        assert!(rep.is_clean());
        assert_eq!(fs.last_repair(), Some(rep));
    }

    #[test]
    fn uncommitted_tail_txn_is_discarded_and_reported() {
        let (h, dev) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/durable".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        assert!(h.exec(Payload::Fs(FsOp::Fsync { ino }), &mut ctx).is_ok());
        let labfs = h.labfs();
        let fs = labfs.as_any().downcast_ref::<LabFs>().unwrap();
        // Simulate a crash between the payload write and the commit
        // write: hand-write a valid seq-2 body frame with no commit
        // record after transaction 1.
        let mut payload = Vec::new();
        LogRecord::Create {
            path: "/lost".into(),
            ino: 99,
            mode: 0o644,
            uid: 0,
            gid: 0,
            is_dir: false,
        }
        .encode(&mut payload);
        let (body, _commit_never_written) = crate::journal::encode_txn(2, &payload, FS_BLOCK);
        let next = fs.logs[0].lock().next_block;
        dev.write(&mut ctx, next * BLOCK_SECTORS, &body).unwrap();
        let rep = fs.replay_from_device();
        assert_eq!(rep.txns_replayed, 1);
        assert_eq!(rep.txns_discarded, 1);
        assert_eq!(rep.records_discarded, 1);
        assert!(rep.torn_tail);
        assert_eq!(
            fs.file_count(),
            1,
            "/lost was never acked, so it must not appear"
        );
        // Appends resume after the committed prefix: the next fsync
        // overwrites the torn tail.
        let ino2 = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/after".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        assert!(h
            .exec(Payload::Fs(FsOp::Fsync { ino: ino2 }), &mut ctx)
            .is_ok());
        assert!(fs.replay_from_device().is_clean());
        assert_eq!(fs.file_count(), 2);
    }

    #[test]
    fn silently_torn_flush_is_caught_by_crc_on_replay() {
        // Find a seed whose first torn write lands zero sectors, so the
        // flush's body write vanishes entirely while still being acked.
        let seed = (1..256u64)
            .find(|&s| {
                let f = labstor_sim::FaultConfig::default();
                f.set_seed(s);
                f.set_torn(1, true);
                f.torn_sectors(8) == Some(0)
            })
            .expect("some seed tears to zero sectors");
        let (h, dev) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/stays".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        assert!(h.exec(Payload::Fs(FsOp::Fsync { ino }), &mut ctx).is_ok());
        dev.faults().set_seed(seed);
        dev.faults().set_torn(1, true);
        let ino2 = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/ghost".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        // The fsync is acked — the device lies about the torn write.
        assert!(h
            .exec(Payload::Fs(FsOp::Fsync { ino: ino2 }), &mut ctx)
            .is_ok());
        dev.faults().set_torn(0, false);
        let labfs = h.labfs();
        let fs = labfs.as_any().downcast_ref::<LabFs>().unwrap();
        let rep = fs.replay_from_device();
        // The CRC chain catches what the ack hid: only txn 1 survives.
        assert_eq!(rep.txns_replayed, 1);
        assert_eq!(fs.file_count(), 1);
    }

    #[test]
    fn unflushed_ops_lost_on_crash() {
        // Without fsync the log never reached the device: a crash loses
        // the file — honest log-structured semantics.
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        h.exec(
            Payload::Fs(FsOp::Create {
                path: "/volatile".into(),
                mode: 0o644,
            }),
            &mut ctx,
        );
        let labfs = h.labfs();
        let fs = labfs.as_any().downcast_ref::<LabFs>().unwrap();
        fs.state_repair();
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn state_update_preserves_files() {
        let (h, dev) = Harness::new();
        let mut ctx = Ctx::new();
        h.exec(
            Payload::Fs(FsOp::Create {
                path: "/keep".into(),
                mode: 0o644,
            }),
            &mut ctx,
        );
        let old = h.labfs();
        let newer = LabFs::new(dev, 4);
        newer.state_update(old.as_ref());
        assert_eq!(newer.file_count(), 1);
    }

    #[test]
    fn provenance_tracks_ops_and_writer() {
        let (h, _) = Harness::new();
        let mut ctx = Ctx::new();
        let ino = ino_of(h.exec(
            Payload::Fs(FsOp::Create {
                path: "/prov".into(),
                mode: 0o644,
            }),
            &mut ctx,
        ));
        h.exec(
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: vec![0u8; 10],
            }),
            &mut ctx,
        );
        h.exec(
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: vec![0u8; 10],
            }),
            &mut ctx,
        );
        let labfs = h.labfs();
        let fs = labfs.as_any().downcast_ref::<LabFs>().unwrap();
        let (ops, writer) = fs.provenance(ino).unwrap();
        assert_eq!(ops, 3); // create + 2 writes
        assert_eq!(writer, 0);
    }

    #[test]
    fn allocator_steals_when_shard_empty() {
        let a = BlockAllocator::new(0, 100, 4, 8);
        // Drain shard 0 (25 blocks), then keep allocating: stealing kicks in.
        let mut got = std::collections::HashSet::new();
        for _ in 0..80 {
            let b = a.alloc(0).expect("steals from other shards");
            assert!(got.insert(b), "no double allocation");
        }
        assert!(a.free_blocks() <= 20);
    }

    #[test]
    fn decommission_moves_blocks_to_running_workers() {
        let a = BlockAllocator::new(0, 100, 4, 8);
        let before = a.free_blocks();
        a.decommission(2);
        assert_eq!(a.free_blocks(), before, "no blocks lost in the move");
        // Worker 2's shard is empty; other workers can still allocate all
        // remaining blocks (via their shards or stealing).
        let mut seen = std::collections::HashSet::new();
        while let Some(b) = a.alloc(0) {
            assert!(seen.insert(b));
        }
        assert_eq!(seen.len() as u64, before);
    }

    #[test]
    fn allocator_exhausts_cleanly() {
        let a = BlockAllocator::new(0, 16, 2, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            assert!(seen.insert(a.alloc(0).unwrap()));
        }
        assert!(a.alloc(0).is_none());
        assert!(a.alloc(1).is_none());
    }

    #[test]
    fn log_records_roundtrip() {
        let records = vec![
            LogRecord::Create {
                path: "/x/y".into(),
                ino: 42,
                mode: 0o600,
                uid: 7,
                gid: 8,
                is_dir: true,
            },
            LogRecord::MapBlock {
                ino: 42,
                page: 3,
                block: 999,
            },
            LogRecord::SetSize {
                ino: 42,
                size: 12345,
            },
            LogRecord::Unlink {
                path: "/x/y".into(),
            },
        ];
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        buf.extend_from_slice(&[0u8; 64]); // end-of-log padding
        let mut pos = 0;
        let mut decoded = Vec::new();
        while let Some(r) = LogRecord::decode(&buf, &mut pos) {
            decoded.push(r);
        }
        assert_eq!(decoded, records);
    }
}
