//! Generic LabMods: GenericFS and GenericKVS (paper §III-A "Management
//! LabMods").
//!
//! "Generic LabMods are in charge of creating I/O requests and forwarding
//! them to the appropriate I/O system… loaded into clients using
//! LD_PRELOAD, enabling seamless support for legacy applications."
//! GenericFS "manages the allocation of file descriptors and the routing
//! of I/O requests to the proper filesystem implementation"; GenericKVS
//! only does the routing.
//!
//! Here they are client-side connectors wrapping a [`Client`]: they expose
//! a POSIX-ish (resp. put/get/remove) API, resolve each path against the
//! LabStack Namespace exactly as §III-E walks it, keep the fd→stack
//! mapping, and reproduce the fork/clone fd-inheritance semantics of
//! §III-F.

use std::collections::HashMap;
use std::sync::Arc;

use labstor_core::client::{Client, ClientError};
use labstor_core::{FileStat, FsOp, KvsOp, Payload, RespPayload};
use labstor_pushdown::{AggReply, VerifiedProgram};

/// What a pushdown read ships back: orders of magnitude fewer bytes
/// than the pages it scanned.
#[derive(Debug, Clone)]
pub enum FilteredRead {
    /// A 32-byte aggregate (count/sum) that rode inline in the envelope.
    Agg(AggReply),
    /// Matching records small enough to ride inline (≤ 64 B total).
    Inline(Vec<u8>),
    /// Matching records in a pooled buffer (selective but not tiny).
    Buf(labstor_ipc::BufHandle),
}

/// What a pushdown KVS scan ships back.
#[derive(Debug, Clone)]
pub enum ScanReply {
    /// A 32-byte aggregate over all scanned values.
    Agg(AggReply),
    /// The keys whose values matched the predicate.
    Keys(Vec<String>),
}

/// A GenericFS error: either a client-level failure or an FS-level one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenericFsError {
    /// IPC / routing failure.
    Client(String),
    /// The filesystem rejected the operation.
    Fs(String),
    /// Unknown file descriptor.
    BadFd(i32),
}

impl std::fmt::Display for GenericFsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenericFsError::Client(e) => write!(f, "client error: {e}"),
            GenericFsError::Fs(e) => write!(f, "fs error: {e}"),
            GenericFsError::BadFd(fd) => write!(f, "bad fd {fd}"),
        }
    }
}

impl std::error::Error for GenericFsError {}

impl From<ClientError> for GenericFsError {
    fn from(e: ClientError) -> Self {
        GenericFsError::Client(e.to_string())
    }
}

struct OpenEntry {
    stack_id: u64,
    ino: u64,
    pos: u64,
}

/// The GenericFS connector: POSIX calls in, routed LabStack requests out.
pub struct GenericFs {
    client: Client,
    fds: HashMap<i32, OpenEntry>,
    next_fd: i32,
}

impl GenericFs {
    /// Wrap a connected client.
    pub fn new(client: Client) -> Self {
        GenericFs {
            client,
            fds: HashMap::new(),
            next_fd: 0,
        }
    }

    /// The wrapped client (e.g. to read its virtual clock).
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Mutable access to the wrapped client.
    pub fn client_mut(&mut self) -> &mut Client {
        &mut self.client
    }

    fn fs_err(resp: RespPayload) -> GenericFsError {
        match resp {
            RespPayload::Err(e) => GenericFsError::Fs(e),
            other => GenericFsError::Fs(format!("unexpected response {other:?}")),
        }
    }

    /// `open(2)`: resolve the governing stack (path, then ancestors — the
    /// §III-E walk), send an Open, allocate an fd.
    pub fn open(
        &mut self,
        path: &str,
        create: bool,
        truncate: bool,
    ) -> Result<i32, GenericFsError> {
        let (stack, rel) = self.client.resolve(path)?;
        let (resp, _) = self.client.execute(
            &stack,
            Payload::Fs(FsOp::Open {
                path: rel,
                create,
                truncate,
            }),
        )?;
        match resp {
            RespPayload::Ino(ino) => {
                self.next_fd += 1;
                self.fds.insert(
                    self.next_fd,
                    OpenEntry {
                        stack_id: stack.id,
                        ino,
                        pos: 0,
                    },
                );
                Ok(self.next_fd)
            }
            other => Err(Self::fs_err(other)),
        }
    }

    fn entry(&self, fd: i32) -> Result<(u64, u64, u64), GenericFsError> {
        self.fds
            .get(&fd)
            .map(|e| (e.stack_id, e.ino, e.pos))
            .ok_or(GenericFsError::BadFd(fd))
    }

    fn stack_of(
        &self,
        stack_id: u64,
    ) -> Result<std::sync::Arc<labstor_core::LabStack>, GenericFsError> {
        self.client
            .runtime()
            .ns
            .get_id(stack_id)
            .ok_or_else(|| GenericFsError::Client(format!("stack {stack_id} vanished")))
    }

    /// `write(2)` at the fd's position.
    pub fn write(&mut self, fd: i32, data: &[u8]) -> Result<usize, GenericFsError> {
        let (sid, ino, pos) = self.entry(fd)?;
        let stack = self.stack_of(sid)?;
        let (resp, _) = self.client.execute(
            &stack,
            Payload::Fs(FsOp::Write {
                ino,
                offset: pos,
                data: data.to_vec(),
            }),
        )?;
        match resp {
            RespPayload::Len(n) => {
                self.fds.get_mut(&fd).expect("entry checked").pos = pos + n as u64;
                Ok(n)
            }
            other => Err(Self::fs_err(other)),
        }
    }

    /// `read(2)` at the fd's position.
    ///
    /// Delegates to the zero-copy `ReadBuf` path plus one copy-out:
    /// the stack assembles the result without the legacy path's counted
    /// server-side copy, and small results ride inline in the envelope
    /// (zero counted copies end to end). Large results pay exactly the
    /// one client-side copy-out an owned-`Vec` API requires.
    pub fn read(&mut self, fd: i32, len: usize) -> Result<Vec<u8>, GenericFsError> {
        let (sid, ino, pos) = self.entry(fd)?;
        let stack = self.stack_of(sid)?;
        let (resp, _) = self.client.execute(
            &stack,
            Payload::Fs(FsOp::ReadBuf {
                ino,
                offset: pos,
                len,
            }),
        )?;
        match resp {
            RespPayload::Inline(d) => {
                let d = d.to_vec(); // copy-ok: inline envelope copy-out, uncounted by design
                self.fds.get_mut(&fd).expect("entry checked").pos = pos + d.len() as u64;
                Ok(d)
            }
            RespPayload::Data(d) => {
                self.fds.get_mut(&fd).expect("entry checked").pos = pos + d.len() as u64;
                Ok(d)
            }
            RespPayload::DataBuf(h) => {
                let d = h.to_vec(); // copy-ok: read(2) returns owned bytes; to_vec self-counts
                self.fds.get_mut(&fd).expect("entry checked").pos = pos + d.len() as u64;
                Ok(d)
            }
            other => Err(Self::fs_err(other)),
        }
    }

    /// Zero-copy `write(2)`: the caller filled a pool buffer in place
    /// (see [`Client::alloc_buf`]) and every stage below passes the
    /// handle by refcount bump, never by copy.
    ///
    /// [`Client::alloc_buf`]: labstor_core::Client::alloc_buf
    pub fn write_buf(
        &mut self,
        fd: i32,
        buf: labstor_ipc::BufHandle,
    ) -> Result<usize, GenericFsError> {
        let (sid, ino, pos) = self.entry(fd)?;
        let stack = self.stack_of(sid)?;
        let (resp, _) = self.client.execute(
            &stack,
            Payload::Fs(FsOp::WriteBuf {
                ino,
                offset: pos,
                buf,
            }),
        )?;
        match resp {
            RespPayload::Len(n) => {
                self.fds.get_mut(&fd).expect("entry checked").pos = pos + n as u64;
                Ok(n)
            }
            other => Err(Self::fs_err(other)),
        }
    }

    /// Zero-copy `read(2)`: returns a refcounted view of shared memory —
    /// a page-cache hit costs a refcount bump, not a copy. Falls back to
    /// pooling a legacy `Vec` response (counted) when a stage downgraded.
    pub fn read_buf(
        &mut self,
        fd: i32,
        len: usize,
    ) -> Result<labstor_ipc::BufHandle, GenericFsError> {
        let (sid, ino, pos) = self.entry(fd)?;
        let stack = self.stack_of(sid)?;
        let (resp, _) = self.client.execute(
            &stack,
            Payload::Fs(FsOp::ReadBuf {
                ino,
                offset: pos,
                len,
            }),
        )?;
        let h = match resp {
            RespPayload::DataBuf(h) => h,
            RespPayload::Inline(d) => labstor_ipc::default_pool()
                .alloc_from(d.as_slice())
                .ok_or_else(|| GenericFsError::Fs("buffer pool exhausted".into()))?,
            RespPayload::Data(d) => labstor_ipc::default_pool()
                .alloc_from(&d)
                .ok_or_else(|| GenericFsError::Fs("buffer pool exhausted".into()))?,
            other => return Err(Self::fs_err(other)),
        };
        self.fds.get_mut(&fd).expect("entry checked").pos = pos + h.len() as u64;
        Ok(h)
    }

    /// Pushdown read at the fd's position (pread-style: the position
    /// does **not** advance — the stack consumed the pages, not the
    /// client). The verified program runs inside the filesystem LabMod
    /// over cached/DMA'd pages in place; only the result ships back.
    pub fn read_filtered(
        &mut self,
        fd: i32,
        len: usize,
        prog: Arc<VerifiedProgram>,
    ) -> Result<FilteredRead, GenericFsError> {
        let (sid, ino, pos) = self.entry(fd)?;
        let stack = self.stack_of(sid)?;
        let is_select = prog.action() == labstor_pushdown::Action::Select;
        let (resp, _) = self.client.execute(
            &stack,
            Payload::Fs(FsOp::ReadFiltered {
                ino,
                offset: pos,
                len,
                prog,
            }),
        )?;
        match resp {
            RespPayload::Inline(d) if is_select => Ok(FilteredRead::Inline(d.to_vec())), // copy-ok: inline copy-out
            RespPayload::Inline(d) => AggReply::decode(d.as_slice())
                .map(FilteredRead::Agg)
                .ok_or_else(|| GenericFsError::Fs("malformed pushdown aggregate".into())),
            RespPayload::DataBuf(h) => Ok(FilteredRead::Buf(h)),
            RespPayload::Data(d) => Ok(FilteredRead::Inline(d)),
            other => Err(Self::fs_err(other)),
        }
    }

    /// `lseek(2)` (SEEK_SET).
    pub fn seek(&mut self, fd: i32, pos: u64) -> Result<(), GenericFsError> {
        self.fds
            .get_mut(&fd)
            .map(|e| e.pos = pos)
            .ok_or(GenericFsError::BadFd(fd))
    }

    /// `ftruncate(2)`.
    pub fn ftruncate(&mut self, fd: i32, size: u64) -> Result<(), GenericFsError> {
        let (sid, ino, _) = self.entry(fd)?;
        let stack = self.stack_of(sid)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Fs(FsOp::Truncate { ino, size }))?;
        if resp.is_ok() {
            Ok(())
        } else {
            Err(Self::fs_err(resp))
        }
    }

    /// `fsync(2)`.
    pub fn fsync(&mut self, fd: i32) -> Result<(), GenericFsError> {
        let (sid, ino, _) = self.entry(fd)?;
        let stack = self.stack_of(sid)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Fs(FsOp::Fsync { ino }))?;
        if resp.is_ok() {
            Ok(())
        } else {
            Err(Self::fs_err(resp))
        }
    }

    /// `close(2)`.
    pub fn close(&mut self, fd: i32) -> Result<(), GenericFsError> {
        self.fds
            .remove(&fd)
            .map(|_| ())
            .ok_or(GenericFsError::BadFd(fd))
    }

    /// `rename(2)` — both paths must resolve to the same stack.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), GenericFsError> {
        let (stack_a, rel_from) = self.client.resolve(from)?;
        let (stack_b, rel_to) = self.client.resolve(to)?;
        if stack_a.id != stack_b.id {
            return Err(GenericFsError::Fs("cross-stack rename (EXDEV)".into()));
        }
        let (resp, _) = self.client.execute(
            &stack_a,
            Payload::Fs(FsOp::Rename {
                from: rel_from,
                to: rel_to,
            }),
        )?;
        if resp.is_ok() {
            Ok(())
        } else {
            Err(Self::fs_err(resp))
        }
    }

    /// `unlink(2)`.
    pub fn unlink(&mut self, path: &str) -> Result<(), GenericFsError> {
        let (stack, rel) = self.client.resolve(path)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Fs(FsOp::Unlink { path: rel }))?;
        if resp.is_ok() {
            Ok(())
        } else {
            Err(Self::fs_err(resp))
        }
    }

    /// `mkdir(2)`.
    pub fn mkdir(&mut self, path: &str, mode: u16) -> Result<(), GenericFsError> {
        let (stack, rel) = self.client.resolve(path)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Fs(FsOp::Mkdir { path: rel, mode }))?;
        if resp.is_ok() {
            Ok(())
        } else {
            Err(Self::fs_err(resp))
        }
    }

    /// `stat(2)`.
    pub fn stat(&mut self, path: &str) -> Result<FileStat, GenericFsError> {
        let (stack, rel) = self.client.resolve(path)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Fs(FsOp::Stat { path: rel }))?;
        match resp {
            RespPayload::Stat(st) => Ok(st),
            other => Err(Self::fs_err(other)),
        }
    }

    /// `readdir(3)`.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<String>, GenericFsError> {
        let (stack, rel) = self.client.resolve(path)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Fs(FsOp::Readdir { path: rel }))?;
        match resp {
            RespPayload::Names(n) => Ok(n),
            other => Err(Self::fs_err(other)),
        }
    }

    /// Open fd count.
    pub fn open_fds(&self) -> usize {
        self.fds.len()
    }

    /// Fork semantics (§III-F): the child gets a *new* connection (new
    /// shared-memory queue pairs) and a copy of the parent's open fds.
    pub fn fork(&self, child_client: Client) -> GenericFs {
        GenericFs {
            client: child_client,
            fds: self
                .fds
                .iter()
                .map(|(fd, e)| {
                    (
                        *fd,
                        OpenEntry {
                            stack_id: e.stack_id,
                            ino: e.ino,
                            pos: e.pos,
                        },
                    )
                })
                .collect(),
            next_fd: self.next_fd,
        }
    }

    /// Execve semantics (§III-F): "open fd state is copied to the LabStor
    /// Runtime and is reloaded upon completion". [`GenericFs::save_fds`]
    /// serializes the table; the post-exec process reconnects and calls
    /// [`GenericFs::restore_fds`] with the saved blob.
    pub fn save_fds(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.fds.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.next_fd as u32).to_le_bytes());
        let mut entries: Vec<(&i32, &OpenEntry)> = self.fds.iter().collect();
        entries.sort_by_key(|(fd, _)| **fd);
        for (fd, e) in entries {
            out.extend_from_slice(&fd.to_le_bytes());
            out.extend_from_slice(&e.stack_id.to_le_bytes());
            out.extend_from_slice(&e.ino.to_le_bytes());
            out.extend_from_slice(&e.pos.to_le_bytes());
        }
        out
    }

    /// Rebuild a GenericFS in a fresh address space from a saved fd blob.
    pub fn restore_fds(client: Client, blob: &[u8]) -> Result<GenericFs, GenericFsError> {
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], GenericFsError> {
            let s = blob
                .get(*pos..*pos + n)
                .ok_or_else(|| GenericFsError::Client("truncated fd blob".into()))?;
            *pos += n;
            Ok(s)
        };
        let mut pos = 0usize;
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let next_fd = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as i32;
        let mut fds = HashMap::with_capacity(count);
        for _ in 0..count {
            let fd = i32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            let stack_id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let ino = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let fpos = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            fds.insert(
                fd,
                OpenEntry {
                    stack_id,
                    ino,
                    pos: fpos,
                },
            );
        }
        Ok(GenericFs {
            client,
            fds,
            next_fd,
        })
    }
}

/// The GenericKVS connector: routes put/get/remove to a KVS stack.
pub struct GenericKvs {
    client: Client,
}

impl GenericKvs {
    /// Wrap a connected client.
    pub fn new(client: Client) -> Self {
        GenericKvs { client }
    }

    /// The wrapped client.
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Mutable access to the wrapped client.
    pub fn client_mut(&mut self) -> &mut Client {
        &mut self.client
    }

    fn route(
        &self,
        key: &str,
    ) -> Result<(std::sync::Arc<labstor_core::LabStack>, String), ClientError> {
        self.client.resolve(key)
    }

    /// Store a value. One request, one round trip — the paper's point.
    pub fn put(&mut self, key: &str, value: Vec<u8>) -> Result<usize, GenericFsError> {
        let (stack, rel) = self.route(key)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Kvs(KvsOp::Put { key: rel, value }))?;
        match resp {
            RespPayload::Len(n) => Ok(n),
            other => Err(GenericFs::fs_err(other)),
        }
    }

    /// Zero-copy put: the caller filled a pool buffer in place and the
    /// KVS forwards full blocks as refcounted slices of it.
    pub fn put_buf(
        &mut self,
        key: &str,
        buf: labstor_ipc::BufHandle,
    ) -> Result<usize, GenericFsError> {
        let (stack, rel) = self.route(key)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Kvs(KvsOp::PutBuf { key: rel, buf }))?;
        match resp {
            RespPayload::Len(n) => Ok(n),
            other => Err(GenericFs::fs_err(other)),
        }
    }

    /// Fetch a value.
    ///
    /// Delegates to the zero-copy response path plus one copy-out:
    /// small values ride inline in the envelope (zero counted copies),
    /// larger ones arrive as a refcounted handle and pay exactly the
    /// one client-side copy-out an owned-`Vec` API requires.
    pub fn get(&mut self, key: &str) -> Result<Vec<u8>, GenericFsError> {
        let (stack, rel) = self.route(key)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Kvs(KvsOp::Get { key: rel }))?;
        match resp {
            RespPayload::Inline(d) => Ok(d.to_vec()), // copy-ok: inline envelope copy-out, uncounted by design
            RespPayload::Data(d) => Ok(d),
            RespPayload::DataBuf(h) => Ok(h.to_vec()), // copy-ok: owned-Vec API; to_vec self-counts
            other => Err(GenericFs::fs_err(other)),
        }
    }

    /// Zero-copy fetch: single-block values arrive as a refcounted view
    /// of the driver's DMA buffer. Inline and legacy `Vec` responses are
    /// pooled (one counted copy) so the return type stays uniform.
    pub fn get_buf(&mut self, key: &str) -> Result<labstor_ipc::BufHandle, GenericFsError> {
        let (stack, rel) = self.route(key)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Kvs(KvsOp::Get { key: rel }))?;
        match resp {
            RespPayload::DataBuf(h) => Ok(h),
            RespPayload::Inline(d) => labstor_ipc::default_pool()
                .alloc_from(d.as_slice())
                .ok_or_else(|| GenericFsError::Fs("buffer pool exhausted".into())),
            RespPayload::Data(d) => labstor_ipc::default_pool()
                .alloc_from(&d)
                .ok_or_else(|| GenericFsError::Fs("buffer pool exhausted".into())),
            other => Err(GenericFs::fs_err(other)),
        }
    }

    /// Pushdown point-query: fetch `key`'s value only if the verified
    /// program matches it, walking deeper table levels in-stack on a
    /// miss (no client round trip per level). `Ok(None)` means the key
    /// exists but the predicate rejected its value.
    pub fn get_where(
        &mut self,
        key: &str,
        prog: Arc<VerifiedProgram>,
    ) -> Result<Option<Vec<u8>>, GenericFsError> {
        let (stack, rel) = self.route(key)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Kvs(KvsOp::GetWhere { key: rel, prog }))?;
        match resp {
            RespPayload::Ok => Ok(None),
            RespPayload::Inline(d) => Ok(Some(d.to_vec())), // copy-ok: inline envelope copy-out, uncounted by design
            RespPayload::Data(d) => Ok(Some(d)),
            RespPayload::DataBuf(h) => Ok(Some(h.to_vec())), // copy-ok: owned-Vec API; to_vec self-counts
            other => Err(GenericFs::fs_err(other)),
        }
    }

    /// Pushdown range scan: evaluate the verified program over every
    /// value whose key starts with `prefix` — inside the KVS LabMod —
    /// and ship back only matching keys or a 32-byte aggregate.
    pub fn scan_where(
        &mut self,
        prefix: &str,
        prog: Arc<VerifiedProgram>,
    ) -> Result<ScanReply, GenericFsError> {
        let (stack, rel) = self.route(prefix)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Kvs(KvsOp::ScanWhere { prefix: rel, prog }))?;
        match resp {
            RespPayload::Names(keys) => Ok(ScanReply::Keys(keys)),
            RespPayload::Inline(d) => AggReply::decode(d.as_slice())
                .map(ScanReply::Agg)
                .ok_or_else(|| GenericFsError::Fs("malformed pushdown aggregate".into())),
            other => Err(GenericFs::fs_err(other)),
        }
    }

    /// Delete a key.
    pub fn remove(&mut self, key: &str) -> Result<(), GenericFsError> {
        let (stack, rel) = self.route(key)?;
        let (resp, _) = self
            .client
            .execute(&stack, Payload::Kvs(KvsOp::Remove { key: rel }))?;
        if resp.is_ok() {
            Ok(())
        } else {
            Err(GenericFs::fs_err(resp))
        }
    }
}
