#![warn(missing_docs)]

//! # labstor-mods — the reference LabMod library
//!
//! The LabMods the paper ships with LabStor (§III-E, §III-F):
//!
//! * **LabFS** ([`labfs`]) — a log-structured, crash-consistent POSIX
//!   filesystem: per-worker block allocators with stealing, per-worker
//!   metadata logs, in-memory inode hashmap rebuilt by log replay.
//! * **LabKVS** ([`labkvs`]) — a put/get/remove store: one operation where
//!   POSIX needs open-modify-close.
//! * **Driver LabMods** ([`drivers`]) — Kernel MQ Driver
//!   (`submit_io_to_hctx` / `poll_completions` through the Kernel Ops
//!   Manager), SPDK (userspace NVMe queue pairs), DAX (PMEM load/store).
//! * **I/O scheduler LabMods** ([`sched`]) — NoOp and blk-switch
//!   re-implemented in userspace (Fig. 8's Lab-NoOp / Lab-Blk).
//! * **LRU page cache** ([`lru`]) and an adaptive scan-resistant
//!   alternative ([`arc_cache`]) — the paper's hot-swappable-cache-policy
//!   story, **permissions checking** ([`perms`]),
//!   **compression** ([`compress`] over [`compress_algo`]), **tunable
//!   consistency** ([`consistency`]), and the **dummy module**
//!   ([`dummy`]) used by the upgrade and orchestration experiments.
//! * **Generic LabMods** ([`generic`]) — GenericFS and GenericKVS, the
//!   client-side multiplexers that allocate fds and route requests to the
//!   right stack.
//!
//! [`devices`] provides the device registry stacks are wired to, and
//! [`install_all`] registers every factory with a Module Manager (the
//! "LabMod repo" of §III-D).

pub mod arc_cache;
pub mod cache_common;
pub mod compress;
pub mod compress_algo;
pub mod consistency;
pub mod devices;
pub mod drivers;
pub mod dummy;
pub mod flush;
pub mod generic;
pub mod journal;
pub mod labfs;
pub mod labkvs;
pub mod lru;
pub mod perms;
pub mod sched;

pub use devices::DeviceRegistry;
pub use generic::{FilteredRead, GenericFs, GenericKvs, ScanReply};
pub use journal::RepairReport;

use labstor_core::ModuleManager;

/// Install every bundled LabMod factory into a Module Manager — the
/// equivalent of `mount.repo` on the directory this crate represents.
pub fn install_all(mm: &ModuleManager, devices: &std::sync::Arc<DeviceRegistry>) {
    dummy::install(mm);
    drivers::install(mm, devices);
    sched::install(mm);
    sched::install_blk_switch(mm, devices);
    lru::install(mm);
    arc_cache::install(mm);
    perms::install(mm);
    compress::install(mm);
    consistency::install(mm);
    labfs::install(mm, devices);
    labkvs::install(mm, devices);
}
