//! An adaptive, scan-resistant cache LabMod (ARC-style).
//!
//! The paper positions LabStacks as the vehicle for "new and exotic
//! ideas, such as … ML-driven cache eviction algorithms" (§III-B), and
//! hot-swapping one cache policy for another is its running example of
//! `modify.mods`. This module is that story made concrete: an ARC-like
//! policy (two real LRU lists + two ghost lists with an adaptive target)
//! that speaks the same block-cache interface as [`crate::lru`], so the
//! Module Manager can swap the two live — `state_update` migrates the
//! warm blocks across.
//!
//! The policy keeps recency (T1) and frequency (T2) lists; ghost lists
//! (B1/B2) remember recently evicted keys and steer the adaptive target
//! `p` toward whichever list would have hit — which is what makes it
//! resist one-shot scans that flush a plain LRU.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use labstor_core::{
    BlockOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_kernel::page_cache::LruMap;
use labstor_sim::Ctx;
use labstor_telemetry::PerfCounters;

/// Per-block lookup cost (two-list bookkeeping is slightly heavier than a
/// plain LRU's).
const LOOKUP_NS: u64 = 190;
const COPY_NS_PER_KB: u64 = 300;

fn copy_cost(bytes: usize) -> u64 {
    (bytes as u64 * COPY_NS_PER_KB) / 1024
}

struct ArcState {
    /// Recency list: blocks seen exactly once.
    t1: LruMap<u64, Vec<u8>>,
    /// Frequency list: blocks seen more than once.
    t2: LruMap<u64, Vec<u8>>,
    /// Ghosts of T1 evictions (keys only).
    b1: LruMap<u64, ()>,
    /// Ghosts of T2 evictions (keys only).
    b2: LruMap<u64, ()>,
    /// Adaptive target size of T1 (in blocks).
    p: usize,
}

/// The adaptive cache LabMod (write-through, like the default LRU mod).
pub struct ArcCacheMod {
    state: Mutex<ArcState>,
    capacity_blocks: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    perf: PerfCounters,
    downstream_ns: AtomicU64,
}

impl ArcCacheMod {
    /// Cache of `capacity_bytes` (4 KB block granularity).
    pub fn new(capacity_bytes: usize) -> Self {
        ArcCacheMod {
            state: Mutex::new(ArcState {
                t1: LruMap::new(),
                t2: LruMap::new(),
                b1: LruMap::new(),
                b2: LruMap::new(),
                p: 0,
            }),
            capacity_blocks: (capacity_bytes / 4096).max(2),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            perf: PerfCounters::new(),
            downstream_ns: AtomicU64::new(0),
        }
    }

    /// (hits, misses) so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        // relaxed-ok: stat counter; readers tolerate lag
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn fwd(&self, ctx: &mut Ctx, env: &StackEnv<'_>, req: Request) -> RespPayload {
        let before = ctx.busy();
        let r = env.forward(ctx, req);
        self.downstream_ns
            .fetch_add(ctx.busy() - before, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        r
    }

    /// ARC REPLACE: evict from T1 or T2 according to the target `p`,
    /// recording a ghost.
    fn replace(state: &mut ArcState, in_b2: bool) {
        let t1_len = state.t1.len();
        if t1_len > 0 && (t1_len > state.p || (in_b2 && t1_len == state.p)) {
            if let Some((k, _)) = state.t1.pop_lru() {
                state.b1.insert(k, ());
            }
        } else if let Some((k, _)) = state.t2.pop_lru() {
            state.b2.insert(k, ());
        } else if let Some((k, _)) = state.t1.pop_lru() {
            state.b1.insert(k, ());
        }
    }

    /// Insert or touch a block with its data; runs the full ARC state
    /// machine.
    fn admit(&self, lba: u64, data: Vec<u8>) {
        let cap = self.capacity_blocks;
        let mut s = self.state.lock();
        // Case 1: hit in T1 or T2 → promote to T2 MRU.
        if s.t1.remove(&lba).is_some() || s.t2.peek(&lba).is_some() {
            s.t2.insert(lba, data);
            return;
        }
        // Case 2: ghost hit in B1 → grow p, bring into T2.
        if s.b1.remove(&lba).is_some() {
            let delta = (s.b2.len() / s.b1.len().max(1)).max(1);
            s.p = (s.p + delta).min(cap);
            Self::replace(&mut s, false);
            s.t2.insert(lba, data);
            return;
        }
        // Case 3: ghost hit in B2 → shrink p, bring into T2.
        if s.b2.remove(&lba).is_some() {
            let delta = (s.b1.len() / s.b2.len().max(1)).max(1);
            s.p = s.p.saturating_sub(delta);
            Self::replace(&mut s, true);
            s.t2.insert(lba, data);
            return;
        }
        // Case 4 (canonical ARC): brand-new block → T1 MRU, with
        // directory maintenance keeping |T1|+|B1| ≤ c and the whole
        // directory ≤ 2c.
        if s.t1.len() + s.b1.len() >= cap {
            if s.t1.len() < cap {
                s.b1.pop_lru();
                Self::replace(&mut s, false);
            } else {
                // B1 is empty and T1 full: discard T1's LRU outright.
                s.t1.pop_lru();
            }
        } else if s.t1.len() + s.t2.len() + s.b1.len() + s.b2.len() >= cap {
            if s.t1.len() + s.t2.len() + s.b1.len() + s.b2.len() >= 2 * cap {
                s.b2.pop_lru();
            }
            Self::replace(&mut s, false);
        }
        s.t1.insert(lba, data);
    }

    fn lookup(&self, lba: u64, len: usize) -> Option<Vec<u8>> {
        let mut s = self.state.lock();
        // A T2 hit refreshes recency; a T1 hit promotes to T2.
        if let Some(d) = s.t2.get(&lba) {
            if d.len() >= len {
                return Some(d[..len].to_vec());
            }
        }
        if let Some(d) = s.t1.remove(&lba) {
            if d.len() >= len {
                let out = d[..len].to_vec();
                s.t2.insert(lba, d);
                return Some(out);
            }
            s.t1.insert(lba, d);
        }
        None
    }
}

// labmod-default-ok: write-through cache: contents are clean and re-warm from misses after a crash; state_update migrates them across upgrades
impl LabMod for ArcCacheMod {
    fn type_name(&self) -> &'static str {
        "arc_cache"
    }

    fn mod_type(&self) -> ModType {
        ModType::Cache
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let before = ctx.busy();
        let resp = match &req.payload {
            Payload::Block(BlockOp::Write { lba, data }) => {
                ctx.advance(LOOKUP_NS + 2 * copy_cost(data.len()));
                self.admit(*lba, data.clone());
                self.fwd(ctx, env, req)
            }
            Payload::Block(BlockOp::Read { lba, len }) => {
                ctx.advance(LOOKUP_NS);
                match self.lookup(*lba, *len) {
                    Some(data) => {
                        self.hits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                        ctx.advance(copy_cost(data.len()));
                        RespPayload::Data(data)
                    }
                    None => {
                        self.misses.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                        let lba = *lba;
                        let resp = self.fwd(ctx, env, req);
                        if let RespPayload::Data(data) = &resp {
                            ctx.advance(copy_cost(data.len()));
                            self.admit(lba, data.clone());
                        }
                        resp
                    }
                }
            }
            _ => self.fwd(ctx, env, req),
        };
        let downstream = self.downstream_ns.swap(0, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.perf
            .observe((ctx.busy() - before).saturating_sub(downstream));
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        self.perf
            .est_ns(LOOKUP_NS + 2 * copy_cost(req.payload_bytes()))
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        // Swap-in from either cache flavor: warm blocks migrate.
        if let Some(prev) = old.as_any().downcast_ref::<ArcCacheMod>() {
            self.perf.absorb(&prev.perf);
            let mut theirs = prev.state.lock();
            let mut drained: Vec<(u64, Vec<u8>)> = Vec::new();
            while let Some(e) = theirs.t1.pop_lru() {
                drained.push(e);
            }
            while let Some(e) = theirs.t2.pop_lru() {
                drained.push(e);
            }
            drop(theirs);
            for (k, v) in drained {
                self.admit(k, v);
            }
        } else if let Some(prev) = old.as_any().downcast_ref::<crate::lru::LruCacheMod>() {
            for (k, v) in prev.drain_blocks() {
                self.admit(k, v);
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the factory. Params: `{"capacity_bytes": <n>}` (default 64 MiB).
pub fn install(mm: &ModuleManager) {
    mm.register_factory(
        "arc_cache",
        Arc::new(|params| {
            let cap = params
                .get("capacity_bytes")
                .and_then(|v| v.as_u64())
                .unwrap_or(64 << 20) as usize;
            Arc::new(ArcCacheMod::new(cap)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;
    use std::collections::HashMap;

    struct MemDev {
        blocks: Mutex<HashMap<u64, Vec<u8>>>,
        reads: AtomicU64,
    }
    impl LabMod for MemDev {
        fn type_name(&self) -> &'static str {
            "memdev"
        }
        fn mod_type(&self) -> ModType {
            ModType::Driver
        }
        fn process(&self, _ctx: &mut Ctx, req: Request, _env: &StackEnv<'_>) -> RespPayload {
            match req.payload {
                Payload::Block(BlockOp::Write { lba, data }) => {
                    let n = data.len();
                    self.blocks.lock().insert(lba, data);
                    RespPayload::Len(n)
                }
                Payload::Block(BlockOp::Read { lba, len }) => {
                    self.reads.fetch_add(1, Ordering::Relaxed);
                    match self.blocks.lock().get(&lba) {
                        Some(d) => RespPayload::Data(d[..len.min(d.len())].to_vec()),
                        None => RespPayload::Data(vec![0u8; len]),
                    }
                }
                _ => RespPayload::Ok,
            }
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn setup(cap_blocks: usize) -> (ModuleManager, LabStack, Arc<MemDev>) {
        let mm = ModuleManager::new();
        install(&mm);
        mm.instantiate(
            "arc",
            "arc_cache",
            &serde_json::json!({"capacity_bytes": cap_blocks * 4096}),
        )
        .unwrap();
        let dev = Arc::new(MemDev {
            blocks: Mutex::new(HashMap::new()),
            reads: AtomicU64::new(0),
        });
        mm.insert_instance("dev", dev.clone());
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "arc".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "dev".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        (mm, stack, dev)
    }

    fn read(mm: &ModuleManager, stack: &LabStack, ctx: &mut Ctx, lba: u64) -> RespPayload {
        let env = StackEnv {
            stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        mm.get("arc").unwrap().process(
            ctx,
            Request::new(
                1,
                1,
                Payload::Block(BlockOp::Read { lba, len: 4096 }),
                Credentials::ROOT,
            ),
            &env,
        )
    }

    fn write(mm: &ModuleManager, stack: &LabStack, ctx: &mut Ctx, lba: u64, fill: u8) {
        let env = StackEnv {
            stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        let r = mm.get("arc").unwrap().process(
            ctx,
            Request::new(
                1,
                1,
                Payload::Block(BlockOp::Write {
                    lba,
                    data: vec![fill; 4096],
                }),
                Credentials::ROOT,
            ),
            &env,
        );
        assert!(r.is_ok());
    }

    #[test]
    fn write_then_read_hits() {
        let (mm, stack, dev) = setup(16);
        let mut ctx = Ctx::new();
        write(&mm, &stack, &mut ctx, 8, 7);
        let r = read(&mm, &stack, &mut ctx, 8);
        assert!(matches!(r, RespPayload::Data(d) if d == vec![7u8; 4096]));
        assert_eq!(dev.reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn scan_resistance_beats_plain_lru() {
        // Working set of 4 hot blocks + a long one-shot scan. ARC must
        // keep serving the hot set from cache after the scan; an LRU of
        // the same size gets flushed.
        let cap = 8usize;
        let (mm, stack, dev) = setup(cap);
        let mut ctx = Ctx::new();
        let hot: Vec<u64> = (0..4).collect();
        for &h in &hot {
            write(&mm, &stack, &mut ctx, h, h as u8);
        }
        // Touch the hot set repeatedly so it reaches the frequency list.
        for _ in 0..3 {
            for &h in &hot {
                read(&mm, &stack, &mut ctx, h);
            }
        }
        // One-shot scan over 64 cold blocks (each read once).
        for cold in 100..164 {
            read(&mm, &stack, &mut ctx, cold);
        }
        let before = dev.reads.load(Ordering::Relaxed);
        for &h in &hot {
            read(&mm, &stack, &mut ctx, h);
        }
        let hot_misses = dev.reads.load(Ordering::Relaxed) - before;
        assert!(
            hot_misses <= 1,
            "ARC must keep the hot set through a scan (missed {hot_misses}/4)"
        );

        // The same experiment against the plain LRU mod: it misses.
        let lru = crate::lru::LruCacheMod::new(cap * 4096, false);
        let mm2 = ModuleManager::new();
        mm2.insert_instance("arc", Arc::new(lru)); // same uuid slot
        let dev2 = Arc::new(MemDev {
            blocks: Mutex::new(HashMap::new()),
            reads: AtomicU64::new(0),
        });
        mm2.insert_instance("dev", dev2.clone());
        let mut ctx2 = Ctx::new();
        for &h in &hot {
            write(&mm2, &stack, &mut ctx2, h, h as u8);
        }
        for _ in 0..3 {
            for &h in &hot {
                read(&mm2, &stack, &mut ctx2, h);
            }
        }
        for cold in 100..164 {
            read(&mm2, &stack, &mut ctx2, cold);
        }
        let before = dev2.reads.load(Ordering::Relaxed);
        for &h in &hot {
            read(&mm2, &stack, &mut ctx2, h);
        }
        let lru_misses = dev2.reads.load(Ordering::Relaxed) - before;
        assert_eq!(lru_misses, 4, "a scan flushes plain LRU entirely");
    }

    #[test]
    fn capacity_is_respected() {
        let (mm, stack, _dev) = setup(8);
        let mut ctx = Ctx::new();
        for lba in 0..100 {
            write(&mm, &stack, &mut ctx, lba, lba as u8);
        }
        let m = mm.get("arc").unwrap();
        let arc = m.as_any().downcast_ref::<ArcCacheMod>().unwrap();
        let s = arc.state.lock();
        assert!(
            s.t1.len() + s.t2.len() <= 8,
            "resident {} > capacity",
            s.t1.len() + s.t2.len()
        );
        assert!(s.b1.len() + s.b2.len() <= 2 * 8 + 2, "ghost lists bounded");
    }

    #[test]
    fn state_migrates_from_lru_on_hot_swap() {
        let lru = crate::lru::LruCacheMod::new(64 * 4096, false);
        // Warm the LRU directly through its own stack processing path.
        let mm = ModuleManager::new();
        mm.insert_instance("arc", Arc::new(lru));
        let dev = Arc::new(MemDev {
            blocks: Mutex::new(HashMap::new()),
            reads: AtomicU64::new(0),
        });
        mm.insert_instance("dev", dev.clone());
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "arc".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "dev".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        let mut ctx = Ctx::new();
        write(&mm, &stack, &mut ctx, 1, 11);
        write(&mm, &stack, &mut ctx, 2, 22);
        // Hot swap LRU → ARC.
        let newer = ArcCacheMod::new(64 * 4096);
        newer.state_update(mm.get("arc").unwrap().as_ref());
        mm.insert_instance("arc", Arc::new(newer));
        let before = dev.reads.load(Ordering::Relaxed);
        let r = read(&mm, &stack, &mut ctx, 1);
        assert!(matches!(r, RespPayload::Data(d) if d == vec![11u8; 4096]));
        assert_eq!(
            dev.reads.load(Ordering::Relaxed),
            before,
            "served from migrated state"
        );
    }
}
