//! An adaptive, scan-resistant cache LabMod (ARC-style).
//!
//! The paper positions LabStacks as the vehicle for "new and exotic
//! ideas, such as … ML-driven cache eviction algorithms" (§III-B), and
//! hot-swapping one cache policy for another is its running example of
//! `modify.mods`. This module is that story made concrete: an ARC-like
//! policy (two real LRU lists + two ghost lists with an adaptive target)
//! that speaks the same block-cache interface as [`crate::lru`], so the
//! Module Manager can swap the two live — `state_update` migrates the
//! warm blocks across.
//!
//! The policy keeps recency (T1) and frequency (T2) lists; ghost lists
//! (B1/B2) remember recently evicted keys and steer the adaptive target
//! `p` toward whichever list would have hit — which is what makes it
//! resist one-shot scans that flush a plain LRU.
//!
//! Like [`crate::lru`], the mod shards its state (`shards` factory param,
//! default 1 — each shard runs an independent ARC instance over its slice
//! of the capacity), guards misses with an in-flight claim so racing
//! misses fetch downstream exactly once, and serves `WriteBuf`/`ReadBuf`
//! zero-copy by storing pool handles and answering hits with a refcount
//! bump.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use labstor_core::{
    BlockOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_kernel::page_cache::LruMap;
use labstor_sim::Ctx;
use labstor_telemetry::PerfCounters;

use crate::cache_common::{shard_of, CacheData, InflightSet};

/// Per-block lookup cost (two-list bookkeeping is slightly heavier than a
/// plain LRU's).
const LOOKUP_NS: u64 = 190;
const COPY_NS_PER_KB: u64 = 300;

fn copy_cost(bytes: usize) -> u64 {
    (bytes as u64 * COPY_NS_PER_KB) / 1024
}

struct ArcState {
    /// Recency list: blocks seen exactly once.
    t1: LruMap<u64, CacheData>,
    /// Frequency list: blocks seen more than once.
    t2: LruMap<u64, CacheData>,
    /// Ghosts of T1 evictions (keys only).
    b1: LruMap<u64, ()>,
    /// Ghosts of T2 evictions (keys only).
    b2: LruMap<u64, ()>,
    /// Adaptive target size of T1 (in blocks).
    p: usize,
}

impl ArcState {
    fn new() -> Self {
        ArcState {
            t1: LruMap::new(),
            t2: LruMap::new(),
            b1: LruMap::new(),
            b2: LruMap::new(),
            p: 0,
        }
    }
}

/// The adaptive cache LabMod (write-through, like the default LRU mod).
pub struct ArcCacheMod {
    shards: Box<[Mutex<ArcState>]>,
    inflight: InflightSet,
    /// ARC capacity `c` per shard (in blocks).
    per_shard_blocks: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    perf: PerfCounters,
    downstream_ns: AtomicU64,
}

impl ArcCacheMod {
    /// Cache of `capacity_bytes` (4 KB block granularity), single shard.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_shards(capacity_bytes, 1)
    }

    /// Cache of `capacity_bytes` split over `shards` independent ARC
    /// instances (capacity divides evenly; each shard adapts its own `p`).
    pub fn with_shards(capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_blocks = (capacity_bytes / 4096).max(2);
        ArcCacheMod {
            shards: (0..shards).map(|_| Mutex::new(ArcState::new())).collect(),
            inflight: InflightSet::new(),
            per_shard_blocks: capacity_blocks.div_ceil(shards).max(2),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            perf: PerfCounters::new(),
            downstream_ns: AtomicU64::new(0),
        }
    }

    /// Number of shards (independent ARC instances).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, lba: u64) -> &Mutex<ArcState> {
        &self.shards[shard_of(lba, self.shards.len())]
    }

    /// (hits, misses) so far.
    pub fn hit_stats(&self) -> (u64, u64) {
        // relaxed-ok: stat counter; readers tolerate lag
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn fwd(&self, ctx: &mut Ctx, env: &StackEnv<'_>, req: Request) -> RespPayload {
        let before = ctx.busy();
        let r = env.forward(ctx, req);
        self.downstream_ns
            .fetch_add(ctx.busy() - before, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        r
    }

    /// ARC REPLACE: evict from T1 or T2 according to the target `p`,
    /// recording a ghost.
    fn replace(state: &mut ArcState, in_b2: bool) {
        let t1_len = state.t1.len();
        if t1_len > 0 && (t1_len > state.p || (in_b2 && t1_len == state.p)) {
            if let Some((k, _)) = state.t1.pop_lru() {
                state.b1.insert(k, ());
            }
        } else if let Some((k, _)) = state.t2.pop_lru() {
            state.b2.insert(k, ());
        } else if let Some((k, _)) = state.t1.pop_lru() {
            state.b1.insert(k, ());
        }
    }

    /// Insert or touch a block with its data; runs the full ARC state
    /// machine on the block's shard.
    fn admit(&self, lba: u64, data: CacheData) {
        let cap = self.per_shard_blocks;
        let mut s = self.shard(lba).lock();
        // Case 1: hit in T1 or T2 → promote to T2 MRU.
        if s.t1.remove(&lba).is_some() || s.t2.peek(&lba).is_some() {
            s.t2.insert(lba, data);
            return;
        }
        // Case 2: ghost hit in B1 → grow p, bring into T2.
        if s.b1.remove(&lba).is_some() {
            let delta = (s.b2.len() / s.b1.len().max(1)).max(1);
            s.p = (s.p + delta).min(cap);
            Self::replace(&mut s, false);
            s.t2.insert(lba, data);
            return;
        }
        // Case 3: ghost hit in B2 → shrink p, bring into T2.
        if s.b2.remove(&lba).is_some() {
            let delta = (s.b1.len() / s.b2.len().max(1)).max(1);
            s.p = s.p.saturating_sub(delta);
            Self::replace(&mut s, true);
            s.t2.insert(lba, data);
            return;
        }
        // Case 4 (canonical ARC): brand-new block → T1 MRU, with
        // directory maintenance keeping |T1|+|B1| ≤ c and the whole
        // directory ≤ 2c.
        if s.t1.len() + s.b1.len() >= cap {
            if s.t1.len() < cap {
                s.b1.pop_lru();
                Self::replace(&mut s, false);
            } else {
                // B1 is empty and T1 full: discard T1's LRU outright.
                s.t1.pop_lru();
            }
        } else if s.t1.len() + s.t2.len() + s.b1.len() + s.b2.len() >= cap {
            if s.t1.len() + s.t2.len() + s.b1.len() + s.b2.len() >= 2 * cap {
                s.b2.pop_lru();
            }
            Self::replace(&mut s, false);
        }
        s.t1.insert(lba, data);
    }

    /// Build the hit response: a `ReadBuf` hit on a handle-backed block
    /// is a refcount bump (no memcpy, no charge); everything else copies
    /// (counted) and is charged the virtual memcpy.
    fn answer(ctx: &mut Ctx, data: &CacheData, len: usize, zero_copy: bool) -> Option<RespPayload> {
        if zero_copy {
            if let CacheData::Buf(h) = data {
                return Some(RespPayload::DataBuf(h.slice(0, len)?));
            }
        }
        let out = match data {
            CacheData::Vec(v) => {
                labstor_ipc::note_payload_copy(len);
                v[..len].to_vec() // copy-ok: legacy copying hit; counted above and charged below
            }
            CacheData::Buf(h) => h.slice(0, len)?.to_vec(), // copy-ok: legacy Read of a handle-backed block; to_vec self-counts
        };
        ctx.advance(copy_cost(len));
        Some(RespPayload::Data(out))
    }

    /// Answer from the cache if resident. A T2 hit refreshes recency; a
    /// T1 hit promotes to T2.
    fn try_hit(&self, ctx: &mut Ctx, lba: u64, len: usize, zero_copy: bool) -> Option<RespPayload> {
        let mut s = self.shard(lba).lock();
        if let Some(d) = s.t2.get(&lba) {
            if d.len() >= len {
                return Self::answer(ctx, d, len, zero_copy);
            }
        }
        if let Some(d) = s.t1.remove(&lba) {
            if d.len() >= len {
                let resp = Self::answer(ctx, &d, len, zero_copy);
                s.t2.insert(lba, d);
                return resp;
            }
            s.t1.insert(lba, d);
        }
        None
    }

    /// The shared read path with the in-flight miss guard (see
    /// [`crate::lru::LruCacheMod`] — same double-fetch fix).
    fn do_read(
        &self,
        ctx: &mut Ctx,
        env: &StackEnv<'_>,
        req: Request,
        lba: u64,
        len: usize,
        zero_copy: bool,
    ) -> RespPayload {
        ctx.advance(LOOKUP_NS);
        if let Some(resp) = self.try_hit(ctx, lba, len, zero_copy) {
            self.hits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            return resp;
        }
        let guard = self.inflight.claim(lba);
        if let Some(resp) = self.try_hit(ctx, lba, len, zero_copy) {
            self.hits.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            return resp;
        }
        self.misses.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let resp = self.fwd(ctx, env, req);
        match &resp {
            RespPayload::DataBuf(h) => self.admit(lba, CacheData::Buf(h.clone())),
            RespPayload::Data(data) => {
                ctx.advance(copy_cost(data.len()));
                labstor_ipc::note_payload_copy(data.len());
                self.admit(lba, CacheData::Vec(data.clone())); // copy-ok: legacy miss fill copies the fetched block into the cache; counted above
            }
            _ => {}
        }
        drop(guard);
        resp
    }
}

// labmod-default-ok: write-through cache: contents are clean and re-warm from misses after a crash; state_update migrates them across upgrades
impl LabMod for ArcCacheMod {
    fn type_name(&self) -> &'static str {
        "arc_cache"
    }

    fn mod_type(&self) -> ModType {
        ModType::Cache
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        let before = ctx.busy();
        let resp = match &req.payload {
            Payload::Block(BlockOp::Write { lba, data }) => {
                ctx.advance(LOOKUP_NS + 2 * copy_cost(data.len()));
                labstor_ipc::note_payload_copy(data.len());
                self.admit(*lba, CacheData::Vec(data.clone())); // copy-ok: legacy write path copies into the cache; counted above
                self.fwd(ctx, env, req)
            }
            Payload::Block(BlockOp::WriteBuf { lba, buf }) => {
                // Zero-copy write admission: refcount bump, lookup only.
                ctx.advance(LOOKUP_NS);
                self.admit(*lba, CacheData::Buf(buf.clone()));
                self.fwd(ctx, env, req)
            }
            Payload::Block(BlockOp::Read { lba, len }) => {
                let (lba, len) = (*lba, *len);
                self.do_read(ctx, env, req, lba, len, false)
            }
            Payload::Block(BlockOp::ReadBuf { lba, len }) => {
                let (lba, len) = (*lba, *len);
                self.do_read(ctx, env, req, lba, len, true)
            }
            _ => self.fwd(ctx, env, req),
        };
        let downstream = self.downstream_ns.swap(0, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.perf
            .observe((ctx.busy() - before).saturating_sub(downstream));
        resp
    }

    fn est_processing_time(&self, req: &Request) -> u64 {
        self.perf
            .est_ns(LOOKUP_NS + 2 * copy_cost(req.payload_bytes()))
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        // Swap-in from either cache flavor: warm blocks migrate (handles
        // by refcount, vectors by move — no byte copies either way).
        if let Some(prev) = old.as_any().downcast_ref::<ArcCacheMod>() {
            self.perf.absorb(&prev.perf);
            let mut drained: Vec<(u64, CacheData)> = Vec::new();
            for shard in prev.shards.iter() {
                let mut theirs = shard.lock();
                while let Some(e) = theirs.t1.pop_lru() {
                    drained.push(e);
                }
                while let Some(e) = theirs.t2.pop_lru() {
                    drained.push(e);
                }
            }
            for (k, v) in drained {
                self.admit(k, v);
            }
        } else if let Some(prev) = old.as_any().downcast_ref::<crate::lru::LruCacheMod>() {
            for (k, v) in prev.drain_blocks() {
                self.admit(k, v);
            }
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the factory. Params: `{"capacity_bytes": <n>, "shards": <n>}`
/// (defaults: 64 MiB, 1 shard).
pub fn install(mm: &ModuleManager) {
    mm.register_factory(
        "arc_cache",
        Arc::new(|params| {
            let cap = params
                .get("capacity_bytes")
                .and_then(|v| v.as_u64())
                .unwrap_or(64 << 20) as usize;
            let shards = params.get("shards").and_then(|v| v.as_u64()).unwrap_or(1) as usize;
            Arc::new(ArcCacheMod::with_shards(cap, shards)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;
    use std::collections::HashMap;

    struct MemDev {
        blocks: Mutex<HashMap<u64, Vec<u8>>>,
        reads: AtomicU64,
    }
    impl LabMod for MemDev {
        fn type_name(&self) -> &'static str {
            "memdev"
        }
        fn mod_type(&self) -> ModType {
            ModType::Driver
        }
        fn process(&self, _ctx: &mut Ctx, req: Request, _env: &StackEnv<'_>) -> RespPayload {
            match req.payload {
                Payload::Block(BlockOp::Write { lba, data }) => {
                    let n = data.len();
                    self.blocks.lock().insert(lba, data);
                    RespPayload::Len(n)
                }
                Payload::Block(BlockOp::WriteBuf { lba, buf }) => {
                    let n = buf.len();
                    self.blocks.lock().insert(lba, buf.to_vec());
                    RespPayload::Len(n)
                }
                Payload::Block(BlockOp::Read { lba, len })
                | Payload::Block(BlockOp::ReadBuf { lba, len }) => {
                    self.reads.fetch_add(1, Ordering::Relaxed);
                    match self.blocks.lock().get(&lba) {
                        Some(d) => RespPayload::Data(d[..len.min(d.len())].to_vec()),
                        None => RespPayload::Data(vec![0u8; len]),
                    }
                }
                _ => RespPayload::Ok,
            }
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn setup(cap_blocks: usize) -> (ModuleManager, LabStack, Arc<MemDev>) {
        let mm = ModuleManager::new();
        install(&mm);
        mm.instantiate(
            "arc",
            "arc_cache",
            &serde_json::json!({"capacity_bytes": cap_blocks * 4096}),
        )
        .unwrap();
        let dev = Arc::new(MemDev {
            blocks: Mutex::new(HashMap::new()),
            reads: AtomicU64::new(0),
        });
        mm.insert_instance("dev", dev.clone());
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "arc".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "dev".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        (mm, stack, dev)
    }

    fn read(mm: &ModuleManager, stack: &LabStack, ctx: &mut Ctx, lba: u64) -> RespPayload {
        let env = StackEnv {
            stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        mm.get("arc").unwrap().process(
            ctx,
            Request::new(
                1,
                1,
                Payload::Block(BlockOp::Read { lba, len: 4096 }),
                Credentials::ROOT,
            ),
            &env,
        )
    }

    fn write(mm: &ModuleManager, stack: &LabStack, ctx: &mut Ctx, lba: u64, fill: u8) {
        let env = StackEnv {
            stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        let r = mm.get("arc").unwrap().process(
            ctx,
            Request::new(
                1,
                1,
                Payload::Block(BlockOp::Write {
                    lba,
                    data: vec![fill; 4096],
                }),
                Credentials::ROOT,
            ),
            &env,
        );
        assert!(r.is_ok());
    }

    #[test]
    fn write_then_read_hits() {
        let (mm, stack, dev) = setup(16);
        let mut ctx = Ctx::new();
        write(&mm, &stack, &mut ctx, 8, 7);
        let r = read(&mm, &stack, &mut ctx, 8);
        assert!(matches!(r, RespPayload::Data(d) if d == vec![7u8; 4096]));
        assert_eq!(dev.reads.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn scan_resistance_beats_plain_lru() {
        // Working set of 4 hot blocks + a long one-shot scan. ARC must
        // keep serving the hot set from cache after the scan; an LRU of
        // the same size gets flushed.
        let cap = 8usize;
        let (mm, stack, dev) = setup(cap);
        let mut ctx = Ctx::new();
        let hot: Vec<u64> = (0..4).collect();
        for &h in &hot {
            write(&mm, &stack, &mut ctx, h, h as u8);
        }
        // Touch the hot set repeatedly so it reaches the frequency list.
        for _ in 0..3 {
            for &h in &hot {
                read(&mm, &stack, &mut ctx, h);
            }
        }
        // One-shot scan over 64 cold blocks (each read once).
        for cold in 100..164 {
            read(&mm, &stack, &mut ctx, cold);
        }
        let before = dev.reads.load(Ordering::Relaxed);
        for &h in &hot {
            read(&mm, &stack, &mut ctx, h);
        }
        let hot_misses = dev.reads.load(Ordering::Relaxed) - before;
        assert!(
            hot_misses <= 1,
            "ARC must keep the hot set through a scan (missed {hot_misses}/4)"
        );

        // The same experiment against the plain LRU mod: it misses.
        let lru = crate::lru::LruCacheMod::new(cap * 4096, false);
        let mm2 = ModuleManager::new();
        mm2.insert_instance("arc", Arc::new(lru)); // same uuid slot
        let dev2 = Arc::new(MemDev {
            blocks: Mutex::new(HashMap::new()),
            reads: AtomicU64::new(0),
        });
        mm2.insert_instance("dev", dev2.clone());
        let mut ctx2 = Ctx::new();
        for &h in &hot {
            write(&mm2, &stack, &mut ctx2, h, h as u8);
        }
        for _ in 0..3 {
            for &h in &hot {
                read(&mm2, &stack, &mut ctx2, h);
            }
        }
        for cold in 100..164 {
            read(&mm2, &stack, &mut ctx2, cold);
        }
        let before = dev2.reads.load(Ordering::Relaxed);
        for &h in &hot {
            read(&mm2, &stack, &mut ctx2, h);
        }
        let lru_misses = dev2.reads.load(Ordering::Relaxed) - before;
        assert_eq!(lru_misses, 4, "a scan flushes plain LRU entirely");
    }

    #[test]
    fn capacity_is_respected() {
        let (mm, stack, _dev) = setup(8);
        let mut ctx = Ctx::new();
        for lba in 0..100 {
            write(&mm, &stack, &mut ctx, lba, lba as u8);
        }
        let m = mm.get("arc").unwrap();
        let arc = m.as_any().downcast_ref::<ArcCacheMod>().unwrap();
        let s = arc.shards[0].lock();
        assert!(
            s.t1.len() + s.t2.len() <= 8,
            "resident {} > capacity",
            s.t1.len() + s.t2.len()
        );
        assert!(s.b1.len() + s.b2.len() <= 2 * 8 + 2, "ghost lists bounded");
    }

    #[test]
    fn sharded_capacity_is_respected_per_shard() {
        let arc = ArcCacheMod::with_shards(16 * 4096, 4);
        for lba in 0..400u64 {
            arc.admit(lba, CacheData::Vec(vec![lba as u8; 4096]));
        }
        for shard in arc.shards.iter() {
            let s = shard.lock();
            assert!(
                s.t1.len() + s.t2.len() <= arc.per_shard_blocks,
                "shard resident {} > per-shard capacity {}",
                s.t1.len() + s.t2.len(),
                arc.per_shard_blocks
            );
        }
    }

    #[test]
    fn state_migrates_from_lru_on_hot_swap() {
        let lru = crate::lru::LruCacheMod::new(64 * 4096, false);
        // Warm the LRU directly through its own stack processing path.
        let mm = ModuleManager::new();
        mm.insert_instance("arc", Arc::new(lru));
        let dev = Arc::new(MemDev {
            blocks: Mutex::new(HashMap::new()),
            reads: AtomicU64::new(0),
        });
        mm.insert_instance("dev", dev.clone());
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "arc".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "dev".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        let mut ctx = Ctx::new();
        write(&mm, &stack, &mut ctx, 1, 11);
        write(&mm, &stack, &mut ctx, 2, 22);
        // Hot swap LRU → ARC.
        let newer = ArcCacheMod::new(64 * 4096);
        newer.state_update(mm.get("arc").unwrap().as_ref());
        mm.insert_instance("arc", Arc::new(newer));
        let before = dev.reads.load(Ordering::Relaxed);
        let r = read(&mm, &stack, &mut ctx, 1);
        assert!(matches!(r, RespPayload::Data(d) if d == vec![11u8; 4096]));
        assert_eq!(
            dev.reads.load(Ordering::Relaxed),
            before,
            "served from migrated state"
        );
    }
}
