//! The permissions-checking LabMod (Fig. 4a's 3% stage; removing it is
//! the difference between the paper's `Lab-All` and `Lab-Min` stacks).
//!
//! Sits in front of a filesystem or KVS stage. Namespace operations
//! (create/open/unlink) are checked against per-path ownership recorded at
//! creation; data operations are checked against the owning uid. Because
//! LabStacks are composable, users who do not need this (single-tenant
//! storage nodes) simply leave it out of the spec — the paper's tunable
//! access control.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use labstor_core::{
    FsOp, KvsOp, LabMod, ModType, ModuleManager, Payload, Request, RespPayload, StackEnv,
};
use labstor_sim::Ctx;
use labstor_telemetry::PerfCounters;

/// Per-operation check cost (ACL lookup + uid compare).
const PERM_CHECK_NS: u64 = 450;

#[derive(Clone, Copy)]
struct Owner {
    uid: u32,
    gid: u32,
    mode: u16,
}

/// The permissions LabMod.
pub struct PermsMod {
    /// Path (or key) ownership, recorded at create time.
    owners: RwLock<HashMap<String, Owner>>,
    /// Mode given to new entries.
    default_mode: u16,
    perf: PerfCounters,
}

impl PermsMod {
    /// New checker; entries created through it get `default_mode`.
    pub fn new(default_mode: u16) -> Self {
        PermsMod {
            owners: RwLock::new(HashMap::new()),
            default_mode,
            perf: PerfCounters::new(),
        }
    }

    fn check(&self, req: &Request, name: &str, want: u16) -> bool {
        let owners = self.owners.read();
        match owners.get(name) {
            Some(o) => req.creds.allows(o.uid, o.gid, o.mode, want),
            // Unknown entries: creation is allowed (ownership recorded),
            // other access falls to the filesystem's own checks.
            None => true,
        }
    }

    fn record(&self, req: &Request, name: &str, mode: u16) {
        self.owners.write().insert(
            name.to_string(),
            Owner {
                uid: req.creds.uid,
                gid: req.creds.gid,
                mode,
            },
        );
    }
}

// labmod-default-ok: ACL table migrates in state_update; policy is spec-derived with no durable state, so the repair default is safe
impl LabMod for PermsMod {
    fn type_name(&self) -> &'static str {
        "permissions"
    }

    fn mod_type(&self) -> ModType {
        ModType::Filter
    }

    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
        ctx.advance(PERM_CHECK_NS);
        self.perf.observe(PERM_CHECK_NS);
        let denied = |what: &str| RespPayload::Err(format!("permission denied: {what}"));
        match &req.payload {
            Payload::Fs(FsOp::Create { path, mode }) => {
                if !self.check(&req, path, 0o2) {
                    return denied(path);
                }
                self.record(&req, path, *mode);
            }
            Payload::Fs(FsOp::Open { path, create, .. }) => {
                let want = if *create { 0o2 } else { 0o4 };
                if !self.check(&req, path, want) {
                    return denied(path);
                }
                if *create {
                    self.record(&req, path, self.default_mode);
                }
            }
            Payload::Fs(FsOp::Unlink { path }) => {
                if !self.check(&req, path, 0o2) {
                    return denied(path);
                }
                self.owners.write().remove(path);
            }
            Payload::Fs(FsOp::Stat { path } | FsOp::Readdir { path })
                if !self.check(&req, path, 0o4) =>
            {
                return denied(path);
            }
            // PutBuf is access-checked exactly like Put: the zero-copy
            // payload representation must not bypass the ACL.
            Payload::Kvs(KvsOp::Put { key, .. } | KvsOp::PutBuf { key, .. }) => {
                if !self.check(&req, key, 0o2) {
                    return denied(key);
                }
                self.record(&req, key, self.default_mode);
            }
            Payload::Kvs(KvsOp::Get { key }) if !self.check(&req, key, 0o4) => {
                return denied(key);
            }
            Payload::Kvs(KvsOp::Remove { key }) => {
                if !self.check(&req, key, 0o2) {
                    return denied(key);
                }
                self.owners.write().remove(key);
            }
            // Data ops by inode and everything else: the check cost was
            // charged; enforcement happened at open time.
            _ => {}
        }
        env.forward(ctx, req)
    }

    fn est_processing_time(&self, _req: &Request) -> u64 {
        self.perf.est_ns(PERM_CHECK_NS)
    }

    fn est_total_time(&self) -> u64 {
        self.perf.total_ns()
    }

    fn state_update(&self, old: &dyn LabMod) {
        if let Some(prev) = old.as_any().downcast_ref::<PermsMod>() {
            *self.owners.write() = prev.owners.read().clone();
            self.perf.absorb(&prev.perf);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Register the factory. Params: `{"default_mode": <u16>}` (default
/// 0o644).
pub fn install(mm: &ModuleManager) {
    mm.register_factory(
        "permissions",
        Arc::new(|params| {
            let mode = params
                .get("default_mode")
                .and_then(|v| v.as_u64())
                .unwrap_or(0o644) as u16;
            Arc::new(PermsMod::new(mode)) as Arc<dyn LabMod>
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;

    struct Sink;
    impl LabMod for Sink {
        fn type_name(&self) -> &'static str {
            "sink"
        }
        fn mod_type(&self) -> ModType {
            ModType::Dummy
        }
        fn process(&self, _ctx: &mut Ctx, _req: Request, _env: &StackEnv<'_>) -> RespPayload {
            RespPayload::Ok
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn setup() -> (ModuleManager, LabStack) {
        let mm = ModuleManager::new();
        install(&mm);
        mm.instantiate(
            "p",
            "permissions",
            &serde_json::json!({"default_mode": 0o600}),
        )
        .unwrap();
        mm.insert_instance("sink", Arc::new(Sink));
        let stack = LabStack {
            id: 1,
            mount: "x".into(),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: "p".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "sink".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        (mm, stack)
    }

    fn exec(
        mm: &ModuleManager,
        stack: &LabStack,
        payload: Payload,
        creds: Credentials,
    ) -> RespPayload {
        let env = StackEnv {
            stack,
            vertex: 0,
            registry: mm,
            domain: 0,
        };
        let m = mm.get("p").unwrap();
        let mut ctx = Ctx::new();
        m.process(&mut ctx, Request::new(1, 1, payload, creds), &env)
    }

    #[test]
    fn owner_passes_stranger_denied() {
        let (mm, stack) = setup();
        let alice = Credentials::new(1, 100, 100);
        let bob = Credentials::new(2, 200, 200);
        let create = Payload::Fs(FsOp::Create {
            path: "/secret".into(),
            mode: 0o600,
        });
        assert!(exec(&mm, &stack, create, alice).is_ok());
        // Bob cannot open or unlink Alice's 0600 file.
        let open = Payload::Fs(FsOp::Open {
            path: "/secret".into(),
            create: false,
            truncate: false,
        });
        assert!(!exec(&mm, &stack, open.clone(), bob).is_ok());
        assert!(exec(&mm, &stack, open, alice).is_ok());
        let unlink = Payload::Fs(FsOp::Unlink {
            path: "/secret".into(),
        });
        assert!(!exec(&mm, &stack, unlink.clone(), bob).is_ok());
        assert!(exec(&mm, &stack, unlink, alice).is_ok());
    }

    #[test]
    fn root_bypasses_everything() {
        let (mm, stack) = setup();
        let alice = Credentials::new(1, 100, 100);
        let create = Payload::Fs(FsOp::Create {
            path: "/f".into(),
            mode: 0o000,
        });
        assert!(exec(&mm, &stack, create, alice).is_ok());
        let stat = Payload::Fs(FsOp::Stat { path: "/f".into() });
        assert!(exec(&mm, &stack, stat, Credentials::ROOT).is_ok());
    }

    #[test]
    fn kvs_keys_are_protected_too() {
        let (mm, stack) = setup();
        let alice = Credentials::new(1, 100, 100);
        let bob = Credentials::new(2, 200, 200);
        let put = Payload::Kvs(KvsOp::Put {
            key: "k1".into(),
            value: vec![1],
        });
        assert!(exec(&mm, &stack, put, alice).is_ok());
        let get = Payload::Kvs(KvsOp::Get { key: "k1".into() });
        assert!(!exec(&mm, &stack, get.clone(), bob).is_ok());
        assert!(exec(&mm, &stack, get, alice).is_ok());
    }

    #[test]
    fn state_survives_upgrade() {
        let (mm, stack) = setup();
        let alice = Credentials::new(1, 100, 100);
        let create = Payload::Fs(FsOp::Create {
            path: "/owned".into(),
            mode: 0o600,
        });
        exec(&mm, &stack, create, alice);
        let old = mm.get("p").unwrap();
        let newer = PermsMod::new(0o644);
        newer.state_update(old.as_ref());
        assert_eq!(newer.owners.read().len(), 1);
    }
}
