#![warn(missing_docs)]

//! # labstor-ipc — shared-memory-style inter-process communication
//!
//! LabStor's IPC Manager connects clients, the Runtime and LabMods through
//! shared memory and a queuing system (paper §III-C). The real system uses
//! a kernel module (`vmalloc` + `remap_pfn_range`) to share pages between
//! address spaces with per-process grants; here "address spaces" are thread
//! domains and a [`shmem::ShmManager`] reproduces the grant discipline: a
//! process handle can only attach a region it has been granted, even among
//! processes of the same user.
//!
//! The queuing primitives mirror the paper's Queue Pairs:
//!
//! * [`ring::SpscRing`] — a bounded lock-free single-producer /
//!   single-consumer ring used for **ordered** queues (must be processed in
//!   sequence by one worker).
//! * unordered queues use a bounded MPMC queue (crossbeam `ArrayQueue`) so
//!   multiple workers can drain them.
//! * [`queue_pair::QueuePair`] — a submission/completion queue pair with the
//!   `UPDATE_PENDING`/`UPDATE_ACKED` flags the Module Manager's live-upgrade
//!   protocol relies on.
//!
//! Crossing a domain boundary pays a calibrated cache-transfer cost
//! ([`cost`]): the paper measures shared-memory IPC at 8.4% of a 4 KB I/O
//! (≈1.4 µs round trip) because the Runtime runs on a different core and
//! requests travel through the cache hierarchy.

pub mod buf;
pub mod cost;
pub mod credentials;
pub mod doorbell;
pub mod inline;
pub mod lockwitness;
pub mod manager;
pub mod queue_pair;
pub mod ring;
pub mod shmem;

pub use buf::{
    default_pool, note_payload_copy, payload_copies, payload_copy_bytes, BufHandle, BufferPool,
    PoolConfig,
};
pub use credentials::{Credentials, TenantId};
pub use doorbell::Doorbell;
pub use inline::{InlineData, INLINE_MAX};
pub use lockwitness::{LockClass, OrderedMutex, OrderedRwLock};
pub use manager::{ClientConnection, IpcManager};
pub use queue_pair::{Envelope, LaneKind, QueueFlags, QueuePair, QueueRole, UpgradeFlag};
pub use ring::SpscRing;
pub use shmem::{ShmError, ShmManager, ShmRegionHandle};
