//! Reference-counted shared-memory buffer pool: the zero-copy data plane.
//!
//! The control plane (queue pairs, PR 3) moves *envelopes*; payload bytes
//! still rode inside `Vec<u8>`s that were copied at every boundary. The
//! paper's shared-memory IPC maps data buffers once and passes references
//! ("Fast & Flexible IO" makes the same argument): a request carries a
//! `(region, offset, len)` triple and the bytes never move.
//!
//! [`BufferPool`] is a size-classed slab allocator over pool-owned buffer
//! slots (the per-buffer-slot flavor of a ShMemMod region: each slot is a
//! fixed mapping, so accesses need no region-wide lock at all). Free slots
//! per class live on a lock-free Treiber stack whose head packs a 32-bit
//! ABA tag next to the slot index. [`BufHandle`] is the `(region, offset,
//! len)` view: `Clone` is a refcount bump, `Drop` returns the slot to the
//! free list when the last handle dies.
//!
//! Ownership rules (DESIGN.md §10):
//! * whoever calls [`BufferPool::alloc`] owns a unique handle and may fill
//!   it in place ([`BufHandle::fill`] / [`BufHandle::write_with`]);
//! * cloning (or [`BufHandle::slice`]) shares the bytes read-only — all
//!   mutation is gated on `refs == 1` *and* `&mut self`, so a shared
//!   buffer can never be written;
//! * the last `Drop` frees; freeing is idempotence-checked by the debug
//!   tracker (a slot may return to the free list exactly once).
//!
//! A global copy counter ([`note_payload_copy`]) instruments every place
//! the stack still memcpy-s payload bytes; the zero-copy e2e test asserts
//! the counter stays flat across a LabFS write→read round trip.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::credentials::TenantId;

/// Count of intermediate payload copies performed by the stack (test hook).
static PAYLOAD_COPIES: AtomicU64 = AtomicU64::new(0);
/// Total bytes those copies moved.
static PAYLOAD_COPY_BYTES: AtomicU64 = AtomicU64::new(0);

/// Record one intermediate payload copy of `bytes` bytes. Every site in
/// the stack that memcpy-s payload data (legacy `Vec` paths, partial-page
/// read-modify-write, copy-on-write) calls this so tests can prove the
/// zero-copy path really is copy-free.
pub fn note_payload_copy(bytes: usize) {
    // relaxed-ok: monotonic test counters; no ordering with payload data is needed
    PAYLOAD_COPIES.fetch_add(1, Ordering::Relaxed);
    // relaxed-ok: same counter pair as above
    PAYLOAD_COPY_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Number of payload copies recorded since process start (test hook).
pub fn payload_copies() -> u64 {
    // relaxed-ok: test-hook counter read
    PAYLOAD_COPIES.load(Ordering::Relaxed)
}

/// Total payload bytes copied since process start (test hook).
pub fn payload_copy_bytes() -> u64 {
    // relaxed-ok: test-hook counter read
    PAYLOAD_COPY_BYTES.load(Ordering::Relaxed)
}

/// The process-wide default pool: what clients fill request payloads from
/// and driver mods allocate read targets from when no dedicated pool is
/// plumbed. (Shared memory is process-wide in this reproduction — thread
/// domains stand in for address spaces — so one default arena serves every
/// domain; the grant discipline lives in [`crate::shmem`].) Exhaustion is
/// graceful: `alloc` returns `None` and callers fall back to the legacy
/// copying path.
pub fn default_pool() -> &'static BufferPool {
    static POOL: std::sync::OnceLock<BufferPool> = std::sync::OnceLock::new();
    POOL.get_or_init(BufferPool::with_defaults)
}

/// One pool slot: fixed-size byte backing plus refcount and free-list link.
struct Slot {
    /// The mapped bytes. Mutated only through a unique handle (refs == 1,
    /// `&mut BufHandle`); read through shared handles.
    data: UnsafeCell<Box<[u8]>>,
    /// Live-handle count; 0 while the slot sits on the free list.
    refs: AtomicU32,
    /// Encoded index (idx + 1; 0 = end) of the next free slot.
    next: AtomicU32,
}

/// One size class: a slab of equally sized slots and its lock-free free
/// list. The free-list head packs `tag << 32 | (idx + 1)` — the tag
/// increments on every successful push/pop so a stalled CAS cannot ABA
/// onto a recycled head.
struct Class {
    buf_size: usize,
    slots: Box<[Slot]>,
    free_head: AtomicU64,
}

// SAFETY: `Slot.data` is an UnsafeCell, but all mutable access is gated on
// `refs == 1` through `&mut BufHandle` (see `BufHandle::fill`), and slots
// on the free list (refs == 0) are only touched by the thread that popped
// them; the Treiber-stack CAS pairs (Release push / Acquire pop) publish
// slot contents across threads.
unsafe impl Sync for Class {}
// SAFETY: same argument as Sync; Box<[u8]> is Send.
unsafe impl Send for Class {}

const LOW_MASK: u64 = 0xffff_ffff;

impl Class {
    fn new(buf_size: usize, count: usize) -> Self {
        assert!(count < u32::MAX as usize, "class too large");
        let slots: Box<[Slot]> = (0..count)
            .map(|i| Slot {
                // Backing bytes are allocated lazily on first use, so a
                // pool sized for a large cache costs nothing up front.
                data: UnsafeCell::new(Box::default()),
                refs: AtomicU32::new(0),
                // Thread the initial free list through the slab in order.
                next: AtomicU32::new(if i + 1 < count { i as u32 + 2 } else { 0 }),
            })
            .collect();
        let free_head = AtomicU64::new(if count == 0 { 0 } else { 1 });
        Class {
            buf_size,
            slots,
            free_head,
        }
    }

    /// Pop a free slot index, or None if the class is exhausted.
    fn pop_free(&self) -> Option<u32> {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            let low = (head & LOW_MASK) as u32;
            if low == 0 {
                return None;
            }
            let idx = low - 1;
            // relaxed-ok: the value is validated by the tagged CAS below; a stale read only causes a retry or is caught by the ABA tag
            let next = self.slots[idx as usize].next.load(Ordering::Relaxed);
            let tag = ((head >> 32) + 1) & LOW_MASK;
            let new = (tag << 32) | u64::from(next);
            match self.free_head.compare_exchange_weak(
                head,
                new,
                Ordering::Acquire,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(idx),
                Err(h) => head = h,
            }
        }
    }

    /// Push a slot index back onto the free list.
    fn push_free(&self, idx: u32) {
        let slot = &self.slots[idx as usize];
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            // relaxed-ok: the link is published by the Release CAS on free_head below
            slot.next.store((head & LOW_MASK) as u32, Ordering::Relaxed);
            let tag = ((head >> 32) + 1) & LOW_MASK;
            let new = (tag << 32) | u64::from(idx + 1);
            match self.free_head.compare_exchange_weak(
                head,
                new,
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Number of slots currently on the free list (O(n) walk; stats only).
    fn free_count(&self) -> usize {
        self.slots
            .iter()
            // relaxed-ok: approximate stats counter, no synchronization implied
            .filter(|s| s.refs.load(Ordering::Relaxed) == 0)
            .count()
    }
}

/// Pool configuration: `(buffer size, slot count)` per size class.
/// Classes must be sorted ascending by buffer size.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// `(buf_size_bytes, slot_count)` pairs, ascending by size.
    pub classes: Vec<(usize, usize)>,
}

impl Default for PoolConfig {
    /// Default ladder: 4 KiB ×512, 16 KiB ×128, 64 KiB ×64, 256 KiB ×16
    /// (≈12 MiB of slab). Covers a page, a small record burst, the 64 KiB
    /// bench payload, and a large streaming buffer.
    fn default() -> Self {
        PoolConfig {
            classes: vec![(4096, 512), (16384, 128), (65536, 64), (262144, 16)],
        }
    }
}

/// Per-tenant accounting cells the pool keeps (lock-free open addressing:
/// `id` holds `tenant + 1`, 0 = empty). All fields are statistics-grade
/// atomics — quota enforcement tolerates the small races of concurrent
/// charge/uncharge, which can overshoot a quota by at most one in-flight
/// allocation per racing thread.
struct TenantCell {
    /// `tenant.as_u32() + 1`; 0 marks an unclaimed cell.
    id: AtomicU32,
    /// Bytes of pool slab currently charged to this tenant (slot sizes,
    /// not request lengths: quota bounds reserved memory).
    live_bytes: AtomicU64,
    /// Quota in bytes; 0 = unlimited.
    quota_bytes: AtomicU64,
    /// Allocations rejected because the quota was exhausted.
    rejects: AtomicU64,
    /// Clean pages shed *from this tenant* by a pool-dry eviction pass
    /// (reported by the page cache via [`BufferPool::note_tenant_shed`]).
    shed_pages: AtomicU64,
}

/// Number of tenant accounting cells per pool. Tenants beyond this many
/// distinct ids fall back to untenanted (uncounted) accounting.
const TENANT_CELLS: usize = 64;

struct PoolInner {
    classes: Box<[Class]>,
    /// Allocations currently live (slots out of the free lists).
    live: AtomicU64,
    /// Maximum of `live` ever observed.
    high_water: AtomicU64,
    /// Per-tenant live-byte accounting and quotas.
    tenants: Box<[TenantCell]>,
    /// Debug leak/aliasing tracker: the set of (class, slot) pairs that are
    /// currently allocated. Alloc asserts the pair was absent (no aliasing
    /// of two allocations onto one slot); free asserts it was present
    /// (free-exactly-once).
    #[cfg(debug_assertions)]
    tracker: crate::lockwitness::OrderedMutex<std::collections::HashSet<(u16, u32)>>,
}

impl PoolInner {
    /// The accounting cell for `tenant`, claiming an empty cell when
    /// `claim` is set. Returns `None` for the untenanted identity, for
    /// unknown tenants when not claiming, or when all cells are taken
    /// (such tenants degrade to untenanted accounting).
    fn tenant_cell(&self, tenant: TenantId, claim: bool) -> Option<&TenantCell> {
        if tenant.is_none() {
            return None;
        }
        let key = tenant.as_u32().wrapping_add(1).max(1);
        let start = tenant.as_u32() as usize % TENANT_CELLS;
        for i in 0..TENANT_CELLS {
            let cell = &self.tenants[(start + i) % TENANT_CELLS];
            let id = cell.id.load(Ordering::Acquire);
            if id == key {
                return Some(cell);
            }
            if id == 0 {
                if !claim {
                    // Cells are never vacated: an empty probe slot means
                    // this tenant was never registered.
                    return None;
                }
                match cell
                    .id
                    .compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => return Some(cell),
                    Err(now) if now == key => return Some(cell),
                    Err(_) => continue, // lost the race to another tenant
                }
            }
        }
        None
    }
}

/// A size-classed, refcounted shared-memory buffer pool. Cheap to clone
/// (all clones share the slabs).
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// Build a pool from an explicit size-class ladder.
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(!cfg.classes.is_empty(), "pool needs at least one class");
        let mut prev = 0usize;
        for &(size, _) in &cfg.classes {
            assert!(size > prev, "classes must be ascending by buffer size");
            prev = size;
        }
        let classes: Box<[Class]> = cfg
            .classes
            .iter()
            .map(|&(size, count)| Class::new(size, count))
            .collect();
        assert!(classes.len() <= u16::MAX as usize);
        BufferPool {
            inner: Arc::new(PoolInner {
                classes,
                live: AtomicU64::new(0),
                high_water: AtomicU64::new(0),
                tenants: (0..TENANT_CELLS)
                    .map(|_| TenantCell {
                        id: AtomicU32::new(0),
                        live_bytes: AtomicU64::new(0),
                        quota_bytes: AtomicU64::new(0),
                        rejects: AtomicU64::new(0),
                        shed_pages: AtomicU64::new(0),
                    })
                    .collect(),
                #[cfg(debug_assertions)]
                tracker: crate::lockwitness::OrderedMutex::new(
                    &crate::lockwitness::POOL_TRACKER,
                    std::collections::HashSet::new(),
                ),
            }),
        }
    }

    /// Build a pool with the default size-class ladder.
    pub fn with_defaults() -> Self {
        BufferPool::new(PoolConfig::default())
    }

    /// Allocate a unique handle of `len` bytes from the smallest class
    /// that fits, falling over to larger classes when one is exhausted.
    /// Returns `None` when `len` exceeds the largest class or the pool is
    /// dry. Contents are unspecified (a recycled slot keeps its old
    /// bytes): fill or zero before exposing the buffer.
    ///
    /// Untenanted: equivalent to `alloc_for(TenantId::NONE, len)`.
    pub fn alloc(&self, len: usize) -> Option<BufHandle> {
        self.alloc_for(TenantId::NONE, len)
    }

    /// Allocate `len` bytes billed to `tenant`. The charge is the *slot*
    /// size of the serving class (quota bounds reserved slab memory, not
    /// request bytes). A tenant over its byte quota gets `None` and a
    /// bumped reject counter; [`TenantId::NONE`] is never quota-bound.
    pub fn alloc_for(&self, tenant: TenantId, len: usize) -> Option<BufHandle> {
        let cell = self.inner.tenant_cell(tenant, true);
        for (ci, class) in self.inner.classes.iter().enumerate() {
            if class.buf_size < len {
                continue;
            }
            // Charge before popping so concurrent allocators cannot all
            // slip under the quota together; roll back on any failure.
            if let Some(cell) = cell {
                let charge = class.buf_size as u64;
                // relaxed-ok: quota accounting is statistics-grade; races overshoot by at most one in-flight alloc per thread
                let after = cell.live_bytes.fetch_add(charge, Ordering::Relaxed) + charge;
                // relaxed-ok: quota is a configuration value read monotonically
                let quota = cell.quota_bytes.load(Ordering::Relaxed);
                if quota > 0 && after > quota {
                    // relaxed-ok: rollback of the stats charge above
                    cell.live_bytes.fetch_sub(charge, Ordering::Relaxed);
                    // relaxed-ok: stats counter
                    cell.rejects.fetch_add(1, Ordering::Relaxed);
                    // A larger class would charge even more: quota rejects
                    // are terminal, not fall-over.
                    return None;
                }
            }
            if let Some(slot) = class.pop_free() {
                let class_id = ci as u16;
                {
                    // SAFETY: the slot was just popped off the free list
                    // (refs == 0), so this thread has exclusive access
                    // until the handle below is published.
                    let data = unsafe { &mut *class.slots[slot as usize].data.get() };
                    if data.len() != class.buf_size {
                        *data = vec![0u8; class.buf_size].into_boxed_slice();
                    }
                }
                // relaxed-ok: the handle is published to other threads through normal channels (queues, locks) that carry the happens-before edge
                class.slots[slot as usize].refs.store(1, Ordering::Relaxed);
                // relaxed-ok: live/high-water are stats counters
                let live = self.inner.live.fetch_add(1, Ordering::Relaxed) + 1;
                // relaxed-ok: monotonic max, stats only
                self.inner.high_water.fetch_max(live, Ordering::Relaxed);
                #[cfg(debug_assertions)]
                {
                    let fresh = self.inner.tracker.lock().insert((class_id, slot)); // lock-class: pool.tracker
                    assert!(fresh, "buffer pool handed out an already-live slot");
                }
                return Some(BufHandle {
                    pool: Arc::clone(&self.inner),
                    class: class_id,
                    slot,
                    off: 0,
                    len,
                    tenant,
                });
            }
            // Class exhausted: undo the charge before falling over.
            if let Some(cell) = cell {
                // relaxed-ok: rollback of the stats charge above
                cell.live_bytes
                    .fetch_sub(class.buf_size as u64, Ordering::Relaxed);
            }
        }
        None
    }

    /// Allocate and fill from `src` in one step. This *is* a copy (the
    /// boundary copy into shared memory) and is recorded as one.
    pub fn alloc_from(&self, src: &[u8]) -> Option<BufHandle> {
        self.alloc_from_for(TenantId::NONE, src)
    }

    /// [`BufferPool::alloc_from`] billed to `tenant`.
    pub fn alloc_from_for(&self, tenant: TenantId, src: &[u8]) -> Option<BufHandle> {
        let mut h = self.alloc_for(tenant, src.len())?;
        note_payload_copy(src.len());
        // copy-ok: the one boundary copy that moves bytes into shared memory; counted via note_payload_copy
        let ok = h.fill(src);
        debug_assert!(ok, "fresh handle is unique");
        Some(h)
    }

    /// Allocations currently live.
    pub fn live(&self) -> u64 {
        // relaxed-ok: stats counter read
        self.inner.live.load(Ordering::Relaxed)
    }

    /// High-water mark of live allocations.
    pub fn high_water(&self) -> u64 {
        // relaxed-ok: stats counter read
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Free slots remaining in the class that would serve a `len`-byte
    /// allocation (stats/tests).
    pub fn free_slots_for(&self, len: usize) -> usize {
        self.inner
            .classes
            .iter()
            .find(|c| c.buf_size >= len)
            .map(|c| c.free_count())
            .unwrap_or(0)
    }

    /// The size-class ladder as `(buf_size, slot_count)` pairs.
    pub fn class_table(&self) -> Vec<(usize, usize)> {
        self.inner
            .classes
            .iter()
            .map(|c| (c.buf_size, c.slots.len()))
            .collect()
    }

    /// Set `tenant`'s byte quota (0 = unlimited). Registers the tenant's
    /// accounting cell if it has none yet; a no-op for [`TenantId::NONE`]
    /// or when all [`TENANT_CELLS`] cells are taken.
    pub fn set_tenant_quota(&self, tenant: TenantId, quota_bytes: u64) {
        if let Some(cell) = self.inner.tenant_cell(tenant, true) {
            // relaxed-ok: configuration value; enforcement tolerates a stale read for one alloc
            cell.quota_bytes.store(quota_bytes, Ordering::Relaxed);
        }
    }

    /// Record that a pool-dry eviction pass shed one of `tenant`'s clean
    /// pages (called by the page cache so exhaustion is attributable).
    pub fn note_tenant_shed(&self, tenant: TenantId) {
        if let Some(cell) = self.inner.tenant_cell(tenant, true) {
            // relaxed-ok: stats counter
            cell.shed_pages.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Slab bytes currently charged to `tenant` (0 for unknown tenants).
    pub fn tenant_live_bytes(&self, tenant: TenantId) -> u64 {
        self.inner
            .tenant_cell(tenant, false)
            // relaxed-ok: stats counter read
            .map(|c| c.live_bytes.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Allocations rejected against `tenant`'s quota.
    pub fn tenant_rejects(&self, tenant: TenantId) -> u64 {
        self.inner
            .tenant_cell(tenant, false)
            // relaxed-ok: stats counter read
            .map(|c| c.rejects.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Clean pages shed from `tenant` by pool-dry eviction passes.
    pub fn tenant_shed_pages(&self, tenant: TenantId) -> u64 {
        self.inner
            .tenant_cell(tenant, false)
            // relaxed-ok: stats counter read
            .map(|c| c.shed_pages.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("classes", &self.class_table())
            .field("live", &self.live())
            .field("high_water", &self.high_water())
            .finish()
    }
}

/// A refcounted view of pool bytes: `(region, offset, len)`. `Clone` bumps
/// the slot refcount; `Drop` of the last handle returns the slot to the
/// free list. Mutation (`fill`, `write_with`) requires a *unique* handle.
pub struct BufHandle {
    pool: Arc<PoolInner>,
    class: u16,
    slot: u32,
    off: usize,
    len: usize,
    /// Tenant the slot is billed to (clones and slices share the bill;
    /// the last drop uncharges it).
    tenant: TenantId,
}

// SAFETY: the handle only permits shared reads of the slot bytes unless it
// is unique (refs == 1) and mutably borrowed; refcount traffic is atomic.
unsafe impl Send for BufHandle {}
// SAFETY: `&BufHandle` only exposes read access to the slot bytes
// (`as_slice`); writes demand `&mut self` plus `refs == 1`, so two threads
// sharing a reference cannot race.
unsafe impl Sync for BufHandle {}

impl BufHandle {
    fn slot_ref(&self) -> &Slot {
        &self.pool.classes[self.class as usize].slots[self.slot as usize]
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing region id (the size class, in this pool).
    pub fn region(&self) -> u64 {
        u64::from(self.class)
    }

    /// Byte offset of this view inside its backing region.
    pub fn offset(&self) -> usize {
        self.slot as usize * self.pool.classes[self.class as usize].buf_size + self.off
    }

    /// True when this is the only live handle on the slot. A `true` result
    /// is stable — no other handle exists to be cloned from — while a
    /// `false` result may be stale (a peer may be mid-drop).
    pub fn is_unique(&self) -> bool {
        self.slot_ref().refs.load(Ordering::Acquire) == 1
    }

    /// Read access to the bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: mutation is only possible through `fill`/`write_with`,
        // which require `refs == 1` and `&mut self`; while this shared
        // borrow is alive either refs > 1 (no writer can exist) or the
        // sole handle is borrowed here (so no `&mut` borrow can coexist).
        let data = unsafe { &*self.slot_ref().data.get() };
        &data[self.off..self.off + self.len]
    }

    /// Copy `src` into the front of the view. Fails (returns false)
    /// unless the handle is unique and `src` fits.
    pub fn fill(&mut self, src: &[u8]) -> bool {
        if !self.is_unique() || src.len() > self.len {
            return false;
        }
        // SAFETY: refs == 1 and we hold `&mut self`, so no other handle —
        // and no other borrow of this handle — can observe the bytes
        // mid-write. A concurrent drop of a peer would contradict
        // refs == 1 (a true `is_unique` is stable).
        let data = unsafe { &mut *self.slot_ref().data.get() };
        data[self.off..self.off + src.len()].copy_from_slice(src);
        true
    }

    /// Run `f` over the mutable bytes of a unique handle (in-place fill,
    /// e.g. a device DMA target). Fails (returns false) if shared.
    pub fn write_with<F: FnOnce(&mut [u8])>(&mut self, f: F) -> bool {
        if !self.is_unique() {
            return false;
        }
        // SAFETY: same uniqueness argument as `fill`.
        let data = unsafe { &mut *self.slot_ref().data.get() };
        f(&mut data[self.off..self.off + self.len]);
        true
    }

    /// A narrowed read-only view of the same bytes (refcount bump, no
    /// copy). Returns `None` if the range falls outside this view.
    pub fn slice(&self, off: usize, len: usize) -> Option<BufHandle> {
        let end = off.checked_add(len)?;
        if end > self.len {
            return None;
        }
        let mut h = self.clone();
        h.off += off;
        h.len = len;
        Some(h)
    }

    /// Shrink the view to its first `new_len` bytes (no-op if larger).
    pub fn truncate(&mut self, new_len: usize) {
        self.len = self.len.min(new_len);
    }

    /// Copy the bytes out into a fresh `Vec`. This is an intermediate
    /// payload copy and is recorded as one.
    pub fn to_vec(&self) -> Vec<u8> {
        note_payload_copy(self.len);
        // copy-ok: explicit materialization for legacy Vec consumers; counted via note_payload_copy
        self.as_slice().to_vec()
    }

    /// True when `other` views the same slot (same allocation).
    pub fn same_slot(&self, other: &BufHandle) -> bool {
        Arc::ptr_eq(&self.pool, &other.pool) && self.class == other.class && self.slot == other.slot
    }

    /// True when the two views' byte ranges intersect. Distinct
    /// allocations must never overlap (the proptest invariant); slices of
    /// one allocation may.
    pub fn overlaps(&self, other: &BufHandle) -> bool {
        self.same_slot(other) && self.off < other.off + other.len && other.off < self.off + self.len
    }

    /// The tenant this allocation is billed to ([`TenantId::NONE`] for
    /// untenanted allocations).
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }
}

impl Clone for BufHandle {
    fn clone(&self) -> Self {
        // relaxed-ok: same protocol as Arc::clone — the fetch_sub/fence pair in Drop provides the release/acquire edge
        let prev = self.slot_ref().refs.fetch_add(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "cloned a dead handle");
        BufHandle {
            pool: Arc::clone(&self.pool),
            class: self.class,
            slot: self.slot,
            off: self.off,
            len: self.len,
            tenant: self.tenant,
        }
    }
}

impl Drop for BufHandle {
    fn drop(&mut self) {
        // Release so our writes to the bytes happen-before the next owner;
        // the winner (prev == 1) takes the matching Acquire fence. Freeing
        // iff fetch_sub returned 1 is the single-free protocol the labcheck
        // rc model checker verifies (a load-after-sub recheck double-frees).
        let prev = self.slot_ref().refs.fetch_sub(1, Ordering::Release);
        if prev == 1 {
            fence(Ordering::Acquire);
            #[cfg(debug_assertions)]
            {
                let was_live = self.pool.tracker.lock().remove(&(self.class, self.slot)); // lock-class: pool.tracker
                assert!(was_live, "buffer slot freed twice");
            }
            // relaxed-ok: stats counter
            self.pool.live.fetch_sub(1, Ordering::Relaxed);
            if let Some(cell) = self.pool.tenant_cell(self.tenant, false) {
                let charge = self.pool.classes[self.class as usize].buf_size as u64;
                // relaxed-ok: uncharge of the stats-grade quota accounting made at alloc
                cell.live_bytes.fetch_sub(charge, Ordering::Relaxed);
            }
            self.pool.classes[self.class as usize].push_free(self.slot);
        }
    }
}

impl std::fmt::Debug for BufHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufHandle")
            .field("region", &self.region())
            .field("offset", &self.offset())
            .field("len", &self.len)
            .field("refs", &self.slot_ref().refs.load(Ordering::Acquire))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool() -> BufferPool {
        BufferPool::new(PoolConfig {
            classes: vec![(64, 4), (256, 2)],
        })
    }

    #[test]
    fn alloc_fill_read_roundtrip() {
        let pool = small_pool();
        let mut h = pool.alloc(16).unwrap();
        assert!(h.fill(b"hello zero-copy!"));
        assert_eq!(h.as_slice(), b"hello zero-copy!");
        assert_eq!(h.len(), 16);
        assert_eq!(pool.live(), 1);
        drop(h);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn size_class_selection_and_fallover() {
        let pool = small_pool();
        let a = pool.alloc(64).unwrap();
        assert_eq!(a.region(), 0);
        let b = pool.alloc(65).unwrap();
        assert_eq!(b.region(), 1);
        // Exhaust the small class; the next small alloc falls over.
        let _c = pool.alloc(1).unwrap();
        let _d = pool.alloc(1).unwrap();
        let _e = pool.alloc(1).unwrap();
        let f = pool.alloc(1).unwrap();
        assert_eq!(f.region(), 1);
        // Both classes full now.
        assert!(pool.alloc(1).is_none());
        assert!(pool.alloc(300).is_none());
    }

    #[test]
    fn clone_blocks_mutation_until_unique() {
        let pool = small_pool();
        let mut h = pool.alloc(8).unwrap();
        assert!(h.fill(b"original"));
        let shared = h.clone();
        assert!(!h.is_unique());
        assert!(!h.fill(b"clobber!"));
        assert_eq!(shared.as_slice(), b"original");
        drop(shared);
        assert!(h.is_unique());
        assert!(h.fill(b"newbytes"));
        assert_eq!(h.as_slice(), b"newbytes");
    }

    #[test]
    fn slice_shares_without_copy() {
        let pool = small_pool();
        let h = pool.alloc_from(b"abcdefgh").unwrap();
        let s = h.slice(2, 3).unwrap();
        assert_eq!(s.as_slice(), b"cde");
        assert!(s.same_slot(&h));
        assert!(s.overlaps(&h));
        assert!(h.slice(7, 2).is_none());
        assert_eq!(pool.live(), 1);
        drop(h);
        assert_eq!(pool.live(), 1); // slice keeps the slot alive
        drop(s);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn distinct_allocations_never_overlap() {
        let pool = small_pool();
        let handles: Vec<_> = (0..4).map(|_| pool.alloc(64).unwrap()).collect();
        for (i, a) in handles.iter().enumerate() {
            for b in &handles[i + 1..] {
                assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn free_list_recycles_slots() {
        let pool = BufferPool::new(PoolConfig {
            classes: vec![(32, 1)],
        });
        for round in 0..10 {
            let mut h = pool.alloc(32).unwrap();
            assert!(h.write_with(|b| b[0] = round));
            assert_eq!(h.as_slice()[0], round);
            assert!(pool.alloc(32).is_none());
        }
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.high_water(), 1);
    }

    #[test]
    fn copy_counter_tracks_boundary_copies() {
        let pool = small_pool();
        let before = payload_copies();
        let h = pool.alloc_from(b"counted").unwrap();
        assert_eq!(payload_copies(), before + 1);
        let _s = h.slice(0, 3).unwrap(); // no copy
        let _c = h.clone(); // no copy
        assert_eq!(payload_copies(), before + 1);
        let _v = h.to_vec(); // counted
        assert_eq!(payload_copies(), before + 2);
    }

    #[test]
    fn tenant_quota_rejects_and_uncharges() {
        let pool = small_pool(); // classes: 64×4, 256×2
        let t = TenantId(7);
        pool.set_tenant_quota(t, 128); // room for two 64-byte slots
        let a = pool.alloc_for(t, 10).unwrap();
        assert_eq!(a.tenant(), t);
        let b = pool.alloc_for(t, 10).unwrap();
        assert_eq!(pool.tenant_live_bytes(t), 128);
        // Third allocation would charge 64 more → over quota, terminal.
        assert!(pool.alloc_for(t, 10).is_none());
        assert_eq!(pool.tenant_rejects(t), 1);
        assert_eq!(pool.tenant_live_bytes(t), 128);
        // Other tenants and the untenanted identity are unaffected.
        assert!(pool.alloc_for(TenantId(8), 10).is_some());
        assert!(pool.alloc(10).is_some());
        // Dropping uncharges; the tenant can allocate again.
        drop(a);
        drop(b);
        assert_eq!(pool.tenant_live_bytes(t), 0);
        assert!(pool.alloc_for(t, 10).is_some());
    }

    #[test]
    fn tenant_charge_survives_clone_until_last_drop() {
        let pool = small_pool();
        let t = TenantId(3);
        let h = pool.alloc_for(t, 16).unwrap();
        let c = h.clone();
        let s = h.slice(0, 4).unwrap();
        assert_eq!(s.tenant(), t);
        assert_eq!(pool.tenant_live_bytes(t), 64);
        drop(h);
        drop(c);
        assert_eq!(pool.tenant_live_bytes(t), 64); // slice still live
        drop(s);
        assert_eq!(pool.tenant_live_bytes(t), 0);
    }

    #[test]
    fn tenant_charge_rolls_back_on_class_fallover() {
        let pool = small_pool();
        let t = TenantId(9);
        pool.set_tenant_quota(t, 1024);
        // Exhaust the 64-byte class untenanted.
        let _held: Vec<_> = (0..4).map(|_| pool.alloc(64).unwrap()).collect();
        // Tenant alloc falls over to the 256-byte class; only the larger
        // class's charge must stick.
        let h = pool.alloc_for(t, 10).unwrap();
        assert_eq!(h.region(), 1);
        assert_eq!(pool.tenant_live_bytes(t), 256);
        drop(h);
        assert_eq!(pool.tenant_live_bytes(t), 0);
    }

    #[test]
    fn shed_attribution_counter() {
        let pool = small_pool();
        let t = TenantId(4);
        assert_eq!(pool.tenant_shed_pages(t), 0);
        pool.note_tenant_shed(t);
        pool.note_tenant_shed(t);
        assert_eq!(pool.tenant_shed_pages(t), 2);
        assert_eq!(pool.tenant_shed_pages(TenantId(5)), 0);
    }

    #[test]
    fn concurrent_alloc_drop_storm() {
        let pool = BufferPool::new(PoolConfig {
            classes: vec![(64, 32)],
        });
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        if let Some(mut h) = pool.alloc(64) {
                            let tag = (t as u32) << 16 | i;
                            assert!(h.fill(&tag.to_le_bytes()));
                            let c = h.clone();
                            assert_eq!(
                                u32::from_le_bytes(c.as_slice()[..4].try_into().unwrap()),
                                tag
                            );
                            drop(h);
                            drop(c);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pool.live(), 0);
        assert!(pool.high_water() <= 32);
        assert_eq!(pool.free_slots_for(64), 32);
    }
}
