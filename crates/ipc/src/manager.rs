//! The IPC Manager: connection handshake, queue-pair registry, and the
//! runtime-liveness signal used by crash recovery.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::credentials::Credentials;
use crate::doorbell::Doorbell;
use crate::queue_pair::{LaneKind, QueueFlags, QueuePair, QueueRole};

/// A client's connection to the Runtime: its domain id (address space) and
/// the queue pairs allocated for it during the handshake.
pub struct ClientConnection<T> {
    /// Domain (address-space) id assigned by the manager. Domain 0 is the
    /// Runtime itself.
    pub domain: u32,
    /// Credentials presented over the (simulated) UNIX domain socket.
    pub creds: Credentials,
    /// Primary queue pairs allocated for this client.
    pub queues: Vec<Arc<QueuePair<T>>>,
    /// Completion doorbell: registered on every queue's CQ at connect
    /// time, rung by workers posting completions. `Client::wait` parks on
    /// it instead of spinning.
    pub bell: Arc<Doorbell>,
}

/// The Runtime's IPC manager.
///
/// Tracks every queue pair (the Work Orchestrator iterates them), assigns
/// domain ids, and exposes the liveness flag that client-side `wait`
/// operations poll to detect a crashed Runtime (paper §III-C3).
pub struct IpcManager<T> {
    qps: RwLock<Vec<Arc<QueuePair<T>>>>,
    connections: RwLock<Vec<(u32, Credentials)>>,
    next_qid: AtomicU64,
    next_domain: AtomicU32,
    online: AtomicBool,
    /// Rung on every liveness transition so `wait_online` can park
    /// instead of yield-spinning.
    liveness: Doorbell,
    /// Depth of each allocated queue.
    depth: usize,
}

impl<T> IpcManager<T> {
    /// Create a manager whose queues hold `depth` in-flight requests each.
    pub fn new(depth: usize) -> Arc<Self> {
        Arc::new(IpcManager {
            qps: RwLock::new(Vec::new()),
            connections: RwLock::new(Vec::new()),
            next_qid: AtomicU64::new(0),
            next_domain: AtomicU32::new(1), // 0 is the Runtime
            online: AtomicBool::new(true),
            liveness: Doorbell::new(),
            depth,
        })
    }

    /// Handshake: register a client and allocate `n_queues` primary
    /// ordered queue pairs for it.
    ///
    /// Connect-allocated queues ride the zero-CAS SPSC lane: an ordered
    /// primary queue has exactly one producer (this client connection) and
    /// one consumer (the single worker the orchestrator assigns it to —
    /// reassignment goes through the drain-and-handoff protocol in
    /// `Runtime::rebalance`, so the contract holds across moves).
    pub fn connect(&self, creds: Credentials, n_queues: usize) -> ClientConnection<T> {
        let domain = self.next_domain.fetch_add(1, Ordering::Relaxed); // relaxed-ok: fresh-id allocation; atomicity alone suffices
        let queues: Vec<_> = (0..n_queues.max(1))
            .map(|_| {
                self.alloc_queue_with_lane(
                    QueueFlags {
                        ordered: true,
                        role: QueueRole::Primary,
                    },
                    LaneKind::Spsc,
                )
            })
            .collect();
        self.connections.write().push((domain, creds)); // lock-class: ipc.conns
                                                        // One completion bell per connection, registered before the client
                                                        // can submit: workers ring it as they post completions.
        let bell = Arc::new(Doorbell::new());
        for q in &queues {
            q.register_cq_bell(&bell);
        }
        ClientConnection {
            domain,
            creds,
            queues,
            bell,
        }
    }

    /// Allocate an additional queue pair (e.g. an intermediate queue for
    /// requests spawned inside the Runtime). MPMC-backed: safe for any
    /// number of producers and consumers.
    pub fn alloc_queue(&self, flags: QueueFlags) -> Arc<QueuePair<T>> {
        self.alloc_queue_with_lane(flags, LaneKind::Mpmc)
    }

    /// Allocate a queue pair on an explicit lane. Callers choosing
    /// [`LaneKind::Spsc`] own the single-producer/single-consumer contract
    /// per direction (see `queue_pair` module docs).
    pub fn alloc_queue_with_lane(&self, flags: QueueFlags, lane: LaneKind) -> Arc<QueuePair<T>> {
        let id = self.next_qid.fetch_add(1, Ordering::Relaxed); // relaxed-ok: fresh-id allocation; atomicity alone suffices
        let qp = Arc::new(QueuePair::with_lane(id, self.depth, flags, lane));
        self.qps.write().push(qp.clone()); // lock-class: ipc.qps
        qp
    }

    /// All primary queues (the upgrade protocol and orchestrator operate
    /// on these).
    pub fn primary_queues(&self) -> Vec<Arc<QueuePair<T>>> {
        self.qps
            .read() // lock-class: ipc.qps
            .iter()
            .filter(|q| q.flags().role == QueueRole::Primary)
            .cloned()
            .collect()
    }

    /// All intermediate queues.
    pub fn intermediate_queues(&self) -> Vec<Arc<QueuePair<T>>> {
        self.qps
            .read() // lock-class: ipc.qps
            .iter()
            .filter(|q| q.flags().role == QueueRole::Intermediate)
            .cloned()
            .collect()
    }

    /// Every queue pair.
    pub fn all_queues(&self) -> Vec<Arc<QueuePair<T>>> {
        self.qps.read().clone() // lock-class: ipc.qps
    }

    /// Connected clients (domain, credentials).
    pub fn connections(&self) -> Vec<(u32, Credentials)> {
        self.connections.read().clone() // lock-class: ipc.conns
    }

    // ---- runtime liveness (crash recovery) --------------------------------

    /// True while the Runtime is serving requests.
    pub fn is_online(&self) -> bool {
        self.online.load(Ordering::Acquire)
    }

    /// Mark the Runtime crashed/offline. Client `wait` loops notice.
    pub fn set_offline(&self) {
        self.online.store(false, Ordering::Release);
        self.liveness.ring();
    }

    /// Mark the Runtime restarted.
    pub fn set_online(&self) {
        self.online.store(true, Ordering::Release);
        self.liveness.ring();
    }

    /// Block until the Runtime is online or `timeout` expires. Returns
    /// whether it came back. This is the client half of the paper's
    /// `Wait` crash-detection: "wait for it to be restarted by the
    /// administrator (for a configurable period of time)".
    pub fn wait_online(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            // Capture-before-check: a transition after this capture makes
            // the park below return immediately (doorbell protocol).
            let epoch = self.liveness.epoch();
            if self.is_online() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.liveness.wait_past(epoch, deadline - now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_allocates_domains_and_queues() {
        let m: Arc<IpcManager<u32>> = IpcManager::new(8);
        let a = m.connect(Credentials::new(1, 100, 100), 2);
        let b = m.connect(Credentials::new(2, 100, 100), 1);
        assert_ne!(a.domain, b.domain);
        assert_eq!(a.queues.len(), 2);
        assert_eq!(m.primary_queues().len(), 3);
        assert_eq!(m.connections().len(), 2);
    }

    #[test]
    fn intermediate_queues_are_separate() {
        let m: Arc<IpcManager<u32>> = IpcManager::new(8);
        m.connect(Credentials::new(1, 0, 0), 1);
        m.alloc_queue(QueueFlags {
            ordered: false,
            role: QueueRole::Intermediate,
        });
        assert_eq!(m.primary_queues().len(), 1);
        assert_eq!(m.intermediate_queues().len(), 1);
        assert_eq!(m.all_queues().len(), 2);
    }

    #[test]
    fn liveness_toggle_and_wait() {
        let m: Arc<IpcManager<u32>> = IpcManager::new(1);
        assert!(m.is_online());
        m.set_offline();
        assert!(!m.wait_online(Duration::from_millis(10)));
        let m2 = m.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            m2.set_online();
        });
        assert!(m.wait_online(Duration::from_secs(5)));
        t.join().unwrap();
    }

    #[test]
    fn connect_selects_spsc_lane_and_alloc_stays_mpmc() {
        let m: Arc<IpcManager<u32>> = IpcManager::new(8);
        let conn = m.connect(Credentials::new(1, 0, 0), 2);
        for q in &conn.queues {
            assert_eq!(q.lane(), LaneKind::Spsc);
        }
        let inter = m.alloc_queue(QueueFlags {
            ordered: false,
            role: QueueRole::Intermediate,
        });
        assert_eq!(inter.lane(), LaneKind::Mpmc);
    }

    #[test]
    fn queue_flow_through_manager() {
        let m: Arc<IpcManager<&'static str>> = IpcManager::new(4);
        let conn = m.connect(Credentials::new(1, 0, 0), 1);
        conn.queues[0].submit("hello", 0, conn.domain).unwrap();
        // The Runtime (domain 0) consumes.
        let mut ctx = labstor_sim::Ctx::new();
        let env = conn.queues[0].consume(&mut ctx, 0).unwrap();
        assert_eq!(env.payload, "hello");
    }
}
