//! Process credentials, as exchanged over the connection handshake.
//!
//! The paper: "The LabStor client initially connects to the LabStor Runtime
//! through a UNIX domain socket, providing process credentials to the
//! LabStor Runtime, which can be used for authentication." Here the
//! handshake is a method call, but the credential structure and the checks
//! built on it (permissions LabMod, ShmManager grants, LabStack modify
//! authority) are the same.

/// Identity of a *tenant*: the unit multi-tenant QoS policy attaches to.
///
/// Every connection handshake maps the client's domain to a `TenantId`
/// (declared explicitly, or derived from the uid — one tenant per user).
/// [`TenantId::NONE`] is the untenanted identity: administrative tooling,
/// the Runtime itself, and legacy callers; it is never rate-limited or
/// quota-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The untenanted identity (no policy, no quota, no rate limit).
    pub const NONE: TenantId = TenantId(0);

    /// The raw tenant number.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// True for the untenanted identity.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

impl From<u32> for TenantId {
    fn from(v: u32) -> Self {
        TenantId(v)
    }
}

/// Identity of a client process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Credentials {
    /// Process id (simulated; unique per client connection domain).
    pub pid: u32,
    /// User id.
    pub uid: u32,
    /// Primary group id.
    pub gid: u32,
    /// Tenant this process bills to. Defaults to the uid (one tenant per
    /// user); override with [`Credentials::with_tenant`] when one user
    /// runs workloads under several policies.
    pub tenant: TenantId,
}

impl Credentials {
    /// The superuser identity (uid 0), used by administrative tooling.
    pub const ROOT: Credentials = Credentials {
        pid: 0,
        uid: 0,
        gid: 0,
        tenant: TenantId::NONE,
    };

    /// Construct credentials. The tenant defaults to the uid.
    pub fn new(pid: u32, uid: u32, gid: u32) -> Self {
        Credentials {
            pid,
            uid,
            gid,
            tenant: TenantId(uid),
        }
    }

    /// The same credentials billed to an explicit tenant.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// True for the superuser.
    pub fn is_root(&self) -> bool {
        self.uid == 0
    }

    /// Unix-style permission check against a `(owner_uid, owner_gid, mode)`
    /// triple. `want` is a 3-bit rwx mask (4=r, 2=w, 1=x).
    pub fn allows(&self, owner_uid: u32, owner_gid: u32, mode: u16, want: u16) -> bool {
        if self.is_root() {
            return true;
        }
        let perm_bits = if self.uid == owner_uid {
            (mode >> 6) & 0o7
        } else if self.gid == owner_gid {
            (mode >> 3) & 0o7
        } else {
            mode & 0o7
        };
        perm_bits & want == want
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_always_allowed() {
        assert!(Credentials::ROOT.allows(42, 42, 0o000, 0o7));
    }

    #[test]
    fn owner_bits_apply() {
        let c = Credentials::new(1, 100, 100);
        assert!(c.allows(100, 0, 0o600, 0o6));
        assert!(!c.allows(100, 0, 0o400, 0o2));
    }

    #[test]
    fn group_bits_apply() {
        let c = Credentials::new(1, 100, 50);
        assert!(c.allows(7, 50, 0o060, 0o6));
        assert!(!c.allows(7, 50, 0o600, 0o4));
    }

    #[test]
    fn tenant_defaults_to_uid_and_is_overridable() {
        let c = Credentials::new(1, 100, 100);
        assert_eq!(c.tenant, TenantId(100));
        let c = c.with_tenant(TenantId(7));
        assert_eq!(c.tenant.as_u32(), 7);
        assert!(Credentials::ROOT.tenant.is_none());
    }

    #[test]
    fn other_bits_apply() {
        let c = Credentials::new(1, 100, 100);
        assert!(c.allows(7, 7, 0o004, 0o4));
        assert!(!c.allows(7, 7, 0o004, 0o2));
    }
}
