//! Process credentials, as exchanged over the connection handshake.
//!
//! The paper: "The LabStor client initially connects to the LabStor Runtime
//! through a UNIX domain socket, providing process credentials to the
//! LabStor Runtime, which can be used for authentication." Here the
//! handshake is a method call, but the credential structure and the checks
//! built on it (permissions LabMod, ShmManager grants, LabStack modify
//! authority) are the same.

/// Identity of a client process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Credentials {
    /// Process id (simulated; unique per client connection domain).
    pub pid: u32,
    /// User id.
    pub uid: u32,
    /// Primary group id.
    pub gid: u32,
}

impl Credentials {
    /// The superuser identity (uid 0), used by administrative tooling.
    pub const ROOT: Credentials = Credentials {
        pid: 0,
        uid: 0,
        gid: 0,
    };

    /// Construct credentials.
    pub fn new(pid: u32, uid: u32, gid: u32) -> Self {
        Credentials { pid, uid, gid }
    }

    /// True for the superuser.
    pub fn is_root(&self) -> bool {
        self.uid == 0
    }

    /// Unix-style permission check against a `(owner_uid, owner_gid, mode)`
    /// triple. `want` is a 3-bit rwx mask (4=r, 2=w, 1=x).
    pub fn allows(&self, owner_uid: u32, owner_gid: u32, mode: u16, want: u16) -> bool {
        if self.is_root() {
            return true;
        }
        let perm_bits = if self.uid == owner_uid {
            (mode >> 6) & 0o7
        } else if self.gid == owner_gid {
            (mode >> 3) & 0o7
        } else {
            mode & 0o7
        };
        perm_bits & want == want
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_always_allowed() {
        assert!(Credentials::ROOT.allows(42, 42, 0o000, 0o7));
    }

    #[test]
    fn owner_bits_apply() {
        let c = Credentials::new(1, 100, 100);
        assert!(c.allows(100, 0, 0o600, 0o6));
        assert!(!c.allows(100, 0, 0o400, 0o2));
    }

    #[test]
    fn group_bits_apply() {
        let c = Credentials::new(1, 100, 50);
        assert!(c.allows(7, 50, 0o060, 0o6));
        assert!(!c.allows(7, 50, 0o600, 0o4));
    }

    #[test]
    fn other_bits_apply() {
        let c = Credentials::new(1, 100, 100);
        assert!(c.allows(7, 7, 0o004, 0o4));
        assert!(!c.allows(7, 7, 0o004, 0o2));
    }
}
