//! Bounded lock-free single-producer/single-consumer ring.
//!
//! The highest-rate queues in LabStor have a fixed topology: one client
//! thread submitting, one worker consuming (an *ordered* primary queue), or
//! one worker submitting and one client polling (a completion queue). For
//! those, an SPSC ring needs no CAS at all — one release store per side —
//! which is what makes shared-memory queues "friendlier to CPU caches"
//! than syscalls (paper §IV-B).
//!
//! Two ways to hold the single-producer/single-consumer contract:
//!
//! * [`spsc`] returns split [`Producer`]/[`Consumer`] halves, making the
//!   contract a type-system fact. Use this whenever the two endpoints can
//!   own their halves.
//! * [`SpscRing::with_capacity`] hands out the unsplit ring for callers —
//!   `QueuePair`'s SPSC lane — that enforce the contract by *protocol*
//!   (connect-time lane selection plus the orchestrator's single-consumer
//!   assignment and drain-and-handoff; see DESIGN.md §9). Those callers go
//!   through the `unsafe` `producer_*`/`consumer_*` operations and carry
//!   the proof obligation themselves.
//!
//! Batched operations publish a whole burst of slots with a *single*
//! release store on the counter — the io_uring-style doorbell batching the
//! IPC hot path is built on. The batched publication protocol is
//! exhaustively model-checked by `labcheck` (`McConfig::batch`).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;

/// Shared state of an SPSC ring.
///
/// `head` is only advanced by the consumer, `tail` only by the producer.
/// Each is on its own cache line so the two sides do not false-share.
pub struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop (consumer-owned).
    head: CachePadded<AtomicUsize>,
    /// Next slot to push (producer-owned).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other, so `T: Send` is all the transfer needs.
unsafe impl<T: Send> Send for SpscRing<T> {}
// SAFETY: shared access goes through the head/tail atomics; slot access
// is serialized by the publication protocol (exhaustively checked by the
// labcheck interleaving model checker).
unsafe impl<T: Send> Sync for SpscRing<T> {}

/// The producing half of an SPSC ring.
pub struct Producer<T> {
    ring: Arc<SpscRing<T>>,
}

/// The consuming half of an SPSC ring.
pub struct Consumer<T> {
    ring: Arc<SpscRing<T>>,
}

/// Create a ring with capacity for `cap` elements (rounded up to a power
/// of two, minimum 2).
pub fn spsc<T>(cap: usize) -> (Producer<T>, Consumer<T>) {
    spsc_from(cap, 0)
}

/// [`spsc`] with both counters pre-set to `start`. The counters are
/// free-running, so any start value is legal; tests use values near
/// `usize::MAX` to exercise the wraparound paths.
fn spsc_from<T>(cap: usize, start: usize) -> (Producer<T>, Consumer<T>) {
    let ring = Arc::new(SpscRing::with_capacity_from(cap, start));
    (Producer { ring: ring.clone() }, Consumer { ring })
}

impl<T> SpscRing<T> {
    /// Create an unsplit ring with capacity for `cap` elements (rounded up
    /// to a power of two, minimum 2). The caller owns the proof that every
    /// `producer_*` call comes from one producer at a time and every
    /// `consumer_*` call from one consumer at a time.
    pub(crate) fn with_capacity(cap: usize) -> SpscRing<T> {
        SpscRing::with_capacity_from(cap, 0)
    }

    fn with_capacity_from(cap: usize, start: usize) -> SpscRing<T> {
        let cap = cap.max(2).next_power_of_two();
        SpscRing {
            buf: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: CachePadded::new(AtomicUsize::new(start)),
            tail: CachePadded::new(AtomicUsize::new(start)),
        }
    }

    fn cap(&self) -> usize {
        self.buf.len()
    }

    /// Number of elements currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True if no elements are queued (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free slots as seen by the producer. The result is a lower bound:
    /// the concurrent consumer can only *create* space.
    ///
    /// # Safety
    ///
    /// The caller must be the ring's sole producer for the duration of the
    /// call (no concurrent `producer_*` call on this ring).
    // SAFETY: contract — producer-owned tail read requires producer identity.
    pub(crate) unsafe fn producer_free(&self) -> usize {
        // relaxed-ok: tail is producer-owned; the caller is its only writer.
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        self.cap() - tail.wrapping_sub(head)
    }

    /// Push one element; returns it back if the ring is full.
    ///
    /// # Safety
    ///
    /// The caller must be the ring's sole producer for the duration of the
    /// call (no concurrent `producer_*` call on this ring).
    // SAFETY: contract — writes the next free slot assuming a unique producer.
    pub(crate) unsafe fn producer_push(&self, value: T) -> Result<(), T> {
        // relaxed-ok: tail is producer-owned; the caller is its only writer.
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.cap() {
            return Err(value);
        }
        // panic-ok: index is masked by cap-1 (cap is a power of two), so
        // it is always in bounds.
        let slot = &self.buf[tail & (self.cap() - 1)];
        // SAFETY: slot is outside [head, tail), so the consumer will not
        // touch it until the release store below publishes it; the caller
        // guarantees no other producer is writing it.
        unsafe { (*slot.get()).write(value) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Push every element yielded by `items` that fits, publishing the
    /// whole burst with a **single** release store on `tail`. Returns how
    /// many were pushed. Elements beyond the free space are left in the
    /// iterator untouched — callers sizing the iterator with
    /// [`SpscRing::producer_free`] get an exact move (free space can only
    /// grow between the two calls, since the caller is the sole producer).
    ///
    /// # Safety
    ///
    /// The caller must be the ring's sole producer for the duration of the
    /// call (no concurrent `producer_*` call on this ring).
    // SAFETY: contract — writes [tail, tail+n) slots assuming a unique producer.
    pub(crate) unsafe fn producer_push_iter<I>(&self, items: I) -> usize
    where
        I: Iterator<Item = T>,
    {
        // relaxed-ok: tail is producer-owned; the caller is its only writer.
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let free = self.cap() - tail.wrapping_sub(head);
        let mut n = 0usize;
        for value in items.take(free) {
            // panic-ok: index is masked by cap-1 (cap is a power of two),
            // so it is always in bounds.
            let slot = &self.buf[tail.wrapping_add(n) & (self.cap() - 1)];
            // SAFETY: slots [tail, tail+free) are outside [head, tail) and
            // unpublished until the release store below; the caller
            // guarantees no other producer is writing them.
            unsafe { (*slot.get()).write(value) };
            n += 1;
        }
        if n > 0 {
            // One release store publishes the whole batch: the consumer's
            // acquire load of `tail` then sees every slot write above.
            self.tail.store(tail.wrapping_add(n), Ordering::Release);
        }
        n
    }

    /// Pop the oldest element, if any.
    ///
    /// # Safety
    ///
    /// The caller must be the ring's sole consumer for the duration of the
    /// call (no concurrent `consumer_*` call on this ring).
    // SAFETY: contract — reads the head slot assuming a unique consumer.
    pub(crate) unsafe fn consumer_pop(&self) -> Option<T> {
        // relaxed-ok: head is consumer-owned; the caller is its only writer.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // panic-ok: index is masked by cap-1 (cap is a power of two), so
        // it is always in bounds.
        let slot = &self.buf[head & (self.cap() - 1)];
        // SAFETY: slot is inside [head, tail), fully written and published
        // by the producer's release store; the caller guarantees it is the
        // only consumer reading it.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Pop up to `max` elements into `out` (appended in FIFO order),
    /// retiring the whole burst with a **single** release store on `head`.
    /// Returns how many were popped.
    ///
    /// # Safety
    ///
    /// The caller must be the ring's sole consumer for the duration of the
    /// call (no concurrent `consumer_*` call on this ring).
    // SAFETY: contract — reads [head, head+n) slots assuming a unique consumer.
    pub(crate) unsafe fn consumer_pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        // relaxed-ok: head is consumer-owned; the caller is its only writer.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let avail = tail.wrapping_sub(head).min(max);
        out.reserve(avail);
        for i in 0..avail {
            // panic-ok: index is masked by cap-1 (cap is a power of two),
            // so it is always in bounds.
            let slot = &self.buf[head.wrapping_add(i) & (self.cap() - 1)];
            // SAFETY: slots [head, head+avail) are inside [head, tail),
            // fully written and published by the producer's release store;
            // the caller guarantees it is the only consumer reading them.
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        if avail > 0 {
            // One release store retires the whole batch: the producer's
            // acquire load of `head` then knows every slot is reusable.
            self.head.store(head.wrapping_add(avail), Ordering::Release);
        }
        avail
    }
}

impl<T> Producer<T> {
    /// Push an element; returns it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        // SAFETY: `&mut self` on the unique producer half — no other
        // producer can exist.
        unsafe { self.ring.producer_push(value) }
    }

    /// Move elements from the front of `items` into the ring until it is
    /// full, publishing the burst with one release store. Returns how many
    /// moved; leftovers stay in `items` (backpressure).
    pub fn push_batch(&mut self, items: &mut Vec<T>) -> usize {
        // SAFETY: `&mut self` on the unique producer half — no other
        // producer can exist.
        let free = unsafe { self.ring.producer_free() };
        let k = items.len().min(free);
        // SAFETY: same unique-producer argument as above; `drain(..k)`
        // yields exactly `k <= free` elements, and free space can only
        // have grown since the check (we are the sole producer), so the
        // iterator is fully consumed — nothing is dropped by the drain.
        unsafe { self.ring.producer_push_iter(items.drain(..k)) }
    }

    /// Queue occupancy as seen by the producer.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        // SAFETY: `&mut self` on the unique consumer half — no other
        // consumer can exist.
        unsafe { self.ring.consumer_pop() }
    }

    /// Pop up to `max` elements into `out` (FIFO order), retiring the
    /// burst with one release store. Returns how many were popped.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        // SAFETY: `&mut self` on the unique consumer half — no other
        // consumer can exist.
        unsafe { self.ring.consumer_pop_batch(out, max) }
    }

    /// Queue occupancy as seen by the consumer.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drain any elements never consumed so their drops run. This must
        // be `while head != tail` with `wrapping_add`, not `for i in
        // head..tail`: the counters are free-running and a `Range` where
        // the indices wrapped past `usize::MAX` (tail numerically below
        // head) is empty, which would silently leak every queued element.
        // relaxed-ok: &mut self during drop; no other thread can observe
        // or advance the counters.
        let mut head = self.head.load(Ordering::Relaxed);
        // relaxed-ok: same — exclusive owner during drop.
        let tail = self.tail.load(Ordering::Relaxed);
        while head != tail {
            // panic-ok: index is masked by cap-1, always in bounds.
            let slot = &self.buf[head & (self.cap() - 1)];
            // SAFETY: sole owner during drop; [head, tail) slots are
            // initialized.
            unsafe { (*slot.get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (mut p, mut c) = spsc(8);
        for i in 0..5 {
            p.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let (mut p, mut c) = spsc(2);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.push(3), Err(3));
        assert_eq!(c.pop(), Some(1));
        p.push(3).unwrap();
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (mut p, _c) = spsc::<u32>(5); // rounds to 8
        for i in 0..8 {
            p.push(i).unwrap();
        }
        assert!(p.push(9).is_err());
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut p, mut c) = spsc(4);
        for i in 0..1000u32 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut p, mut c) = spsc::<u8>(8);
        assert!(p.is_empty());
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(c.len(), 2);
        c.pop();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn batch_fifo_and_leftovers() {
        let (mut p, mut c) = spsc::<u32>(4);
        let mut items: Vec<u32> = (0..7).collect();
        // Ring holds 4: the first 4 move, 3 stay behind.
        assert_eq!(p.push_batch(&mut items), 4);
        assert_eq!(items, vec![4, 5, 6]);
        let mut out = Vec::new();
        assert_eq!(c.pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        // Space freed: the leftovers fit now.
        assert_eq!(p.push_batch(&mut items), 3);
        assert!(items.is_empty());
        out.clear();
        assert_eq!(c.pop_batch(&mut out, 100), 4);
        assert_eq!(out, vec![3, 4, 5, 6]);
        assert_eq!(c.pop_batch(&mut out, 100), 0);
    }

    #[test]
    fn batch_ops_across_counter_wrap() {
        let (mut p, mut c) = spsc_from(4, usize::MAX - 2);
        let mut out = Vec::new();
        for round in 0..8u32 {
            let mut items: Vec<u32> = (round * 3..round * 3 + 3).collect();
            assert_eq!(p.push_batch(&mut items), 3);
            out.clear();
            assert_eq!(c.pop_batch(&mut out, 3), 3);
            assert_eq!(out, (round * 3..round * 3 + 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pop_batch_respects_max() {
        let (mut p, mut c) = spsc::<u8>(8);
        let mut items = vec![1, 2, 3, 4, 5];
        assert_eq!(p.push_batch(&mut items), 5);
        let mut out = Vec::new();
        assert_eq!(c.pop_batch(&mut out, 2), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(c.pop_batch(&mut out, 2), 2);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn unconsumed_elements_are_dropped() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (mut p, _c) = spsc(4);
            assert!(p.push(D).is_ok());
            assert!(p.push(D).is_ok());
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unconsumed_batch_elements_are_dropped() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (mut p, _c) = spsc(4);
            let mut items = vec![D, D, D];
            assert_eq!(p.push_batch(&mut items), 3);
            assert!(items.is_empty());
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn unconsumed_elements_are_dropped_after_counter_wrap() {
        // Regression: Drop used `for i in head..tail`, an empty range
        // once the counters wrap past usize::MAX, leaking every queued
        // element. Start the counters just below the wrap so the queued
        // elements straddle it.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (mut p, _c) = spsc_from(4, usize::MAX - 1);
            for _ in 0..3 {
                assert!(p.push(D).is_ok());
            }
            // head = MAX-1, tail = MAX+2 (wrapped to 1): tail < head.
        }
        assert_eq!(
            DROPS.load(Ordering::Relaxed),
            3,
            "drain must survive counter wrap"
        );
    }

    #[test]
    fn push_pop_across_counter_wrap() {
        let (mut p, mut c) = spsc_from(4, usize::MAX - 2);
        for i in 0..10u32 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn cross_thread_stress_no_loss_no_dup() {
        const N: u64 = 20_000;
        let (mut p, mut c) = spsc(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        // Full: let the consumer run (matters on 1-core hosts).
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        let mut sum = 0u64;
        while expected < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected, "out of order or duplicated");
                sum += v;
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
    }

    #[test]
    fn cross_thread_batch_stress_no_loss_no_dup() {
        const N: u64 = 20_000;
        const B: usize = 8;
        let (mut p, mut c) = spsc(64);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            let mut pending: Vec<u64> = Vec::new();
            while next < N || !pending.is_empty() {
                while pending.len() < B && next < N {
                    pending.push(next);
                    next += 1;
                }
                if p.push_batch(&mut pending) == 0 {
                    // Full: let the consumer run (matters on 1-core hosts).
                    std::thread::yield_now();
                }
            }
        });
        let mut expected = 0u64;
        let mut out: Vec<u64> = Vec::new();
        while expected < N {
            out.clear();
            if c.pop_batch(&mut out, B) == 0 {
                std::thread::yield_now();
                continue;
            }
            for v in &out {
                assert_eq!(*v, expected, "out of order, lost, or duplicated");
                expected += 1;
            }
        }
        producer.join().unwrap();
    }
}
