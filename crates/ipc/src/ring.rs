//! Bounded lock-free single-producer/single-consumer ring.
//!
//! The highest-rate queues in LabStor have a fixed topology: one client
//! thread submitting, one worker consuming (an *ordered* primary queue), or
//! one worker submitting and one client polling (a completion queue). For
//! those, an SPSC ring needs no CAS at all — one release store per side —
//! which is what makes shared-memory queues "friendlier to CPU caches"
//! than syscalls (paper §IV-B).
//!
//! Safety is enforced by construction: [`spsc`] returns split
//! [`Producer`]/[`Consumer`] halves, so the single-producer/single-consumer
//! contract is a type-system fact rather than a documentation plea.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;

/// Shared state of an SPSC ring.
///
/// `head` is only advanced by the consumer, `tail` only by the producer.
/// Each is on its own cache line so the two sides do not false-share.
pub struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop (consumer-owned).
    head: CachePadded<AtomicUsize>,
    /// Next slot to push (producer-owned).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other, so `T: Send` is all the transfer needs.
unsafe impl<T: Send> Send for SpscRing<T> {}
// SAFETY: shared access goes through the head/tail atomics; slot access
// is serialized by the publication protocol (exhaustively checked by the
// labcheck interleaving model checker).
unsafe impl<T: Send> Sync for SpscRing<T> {}

/// The producing half of an SPSC ring.
pub struct Producer<T> {
    ring: Arc<SpscRing<T>>,
}

/// The consuming half of an SPSC ring.
pub struct Consumer<T> {
    ring: Arc<SpscRing<T>>,
}

/// Create a ring with capacity for `cap` elements (rounded up to a power
/// of two, minimum 2).
pub fn spsc<T>(cap: usize) -> (Producer<T>, Consumer<T>) {
    spsc_from(cap, 0)
}

/// [`spsc`] with both counters pre-set to `start`. The counters are
/// free-running, so any start value is legal; tests use values near
/// `usize::MAX` to exercise the wraparound paths.
fn spsc_from<T>(cap: usize, start: usize) -> (Producer<T>, Consumer<T>) {
    let cap = cap.max(2).next_power_of_two();
    let ring = Arc::new(SpscRing {
        buf: (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: CachePadded::new(AtomicUsize::new(start)),
        tail: CachePadded::new(AtomicUsize::new(start)),
    });
    (Producer { ring: ring.clone() }, Consumer { ring })
}

impl<T> SpscRing<T> {
    fn cap(&self) -> usize {
        self.buf.len()
    }

    /// Number of elements currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True if no elements are queued (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Producer<T> {
    /// Push an element; returns it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        // relaxed-ok: tail is producer-owned; we are its only writer.
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == ring.cap() {
            return Err(value);
        }
        // panic-ok: index is masked by cap-1 (cap is a power of two), so
        // it is always in bounds.
        let slot = &ring.buf[tail & (ring.cap() - 1)];
        // SAFETY: slot is outside [head, tail), so the consumer will not
        // touch it until the release store below publishes it.
        unsafe { (*slot.get()).write(value) };
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Queue occupancy as seen by the producer.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        // relaxed-ok: head is consumer-owned; we are its only writer.
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // panic-ok: index is masked by cap-1 (cap is a power of two), so
        // it is always in bounds.
        let slot = &ring.buf[head & (ring.cap() - 1)];
        // SAFETY: slot is inside [head, tail), fully written and published
        // by the producer's release store; we are the only consumer.
        let value = unsafe { (*slot.get()).assume_init_read() };
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Queue occupancy as seen by the consumer.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drain any elements never consumed so their drops run. This must
        // be `while head != tail` with `wrapping_add`, not `for i in
        // head..tail`: the counters are free-running and a `Range` where
        // the indices wrapped past `usize::MAX` (tail numerically below
        // head) is empty, which would silently leak every queued element.
        // relaxed-ok: &mut self during drop; no other thread can observe
        // or advance the counters.
        let mut head = self.head.load(Ordering::Relaxed);
        // relaxed-ok: same — exclusive owner during drop.
        let tail = self.tail.load(Ordering::Relaxed);
        while head != tail {
            // panic-ok: index is masked by cap-1, always in bounds.
            let slot = &self.buf[head & (self.cap() - 1)];
            // SAFETY: sole owner during drop; [head, tail) slots are
            // initialized.
            unsafe { (*slot.get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (mut p, mut c) = spsc(8);
        for i in 0..5 {
            p.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let (mut p, mut c) = spsc(2);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.push(3), Err(3));
        assert_eq!(c.pop(), Some(1));
        p.push(3).unwrap();
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (mut p, _c) = spsc::<u32>(5); // rounds to 8
        for i in 0..8 {
            p.push(i).unwrap();
        }
        assert!(p.push(9).is_err());
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut p, mut c) = spsc(4);
        for i in 0..1000u32 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut p, mut c) = spsc::<u8>(8);
        assert!(p.is_empty());
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(c.len(), 2);
        c.pop();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn unconsumed_elements_are_dropped() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (mut p, _c) = spsc(4);
            assert!(p.push(D).is_ok());
            assert!(p.push(D).is_ok());
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unconsumed_elements_are_dropped_after_counter_wrap() {
        // Regression: Drop used `for i in head..tail`, an empty range
        // once the counters wrap past usize::MAX, leaking every queued
        // element. Start the counters just below the wrap so the queued
        // elements straddle it.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (mut p, _c) = spsc_from(4, usize::MAX - 1);
            for _ in 0..3 {
                assert!(p.push(D).is_ok());
            }
            // head = MAX-1, tail = MAX+2 (wrapped to 1): tail < head.
        }
        assert_eq!(
            DROPS.load(Ordering::Relaxed),
            3,
            "drain must survive counter wrap"
        );
    }

    #[test]
    fn push_pop_across_counter_wrap() {
        let (mut p, mut c) = spsc_from(4, usize::MAX - 2);
        for i in 0..10u32 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn cross_thread_stress_no_loss_no_dup() {
        const N: u64 = 20_000;
        let (mut p, mut c) = spsc(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        // Full: let the consumer run (matters on 1-core hosts).
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        let mut sum = 0u64;
        while expected < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected, "out of order or duplicated");
                sum += v;
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
    }
}
