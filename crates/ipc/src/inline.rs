//! Inline completion payloads.
//!
//! Small results — pushdown aggregates (32 B), short KVS values, stat
//! words — do not justify a BufferPool round trip: allocating a handle,
//! copying the bytes in, shipping the handle, and copying back out costs
//! more than the payload itself. Results of at most [`INLINE_MAX`] bytes
//! instead ride *inside* the response envelope, exactly like NVMe's
//! in-CQE small completions. The 64-byte threshold is one cache line —
//! the unit the IPC cost model already charges per envelope transfer —
//! so an inline payload is IPC-free beyond the envelope itself and
//! counts **zero** payload copies.

/// Maximum inline payload size in bytes (one cache line).
pub const INLINE_MAX: usize = 64;

/// A small payload stored by value in the response envelope.
#[derive(Clone, Copy)]
pub struct InlineData {
    len: u8,
    bytes: [u8; INLINE_MAX],
}

impl InlineData {
    /// Wrap `data` if it fits; `None` above [`INLINE_MAX`] bytes (the
    /// caller falls back to the BufferPool path).
    pub fn from_slice(data: &[u8]) -> Option<InlineData> {
        if data.len() > INLINE_MAX {
            return None;
        }
        let mut bytes = [0u8; INLINE_MAX];
        // Copying into the by-value envelope replaces the pool round
        // trip entirely; it is the inline fast path, not a payload copy.
        bytes.get_mut(..data.len())?.copy_from_slice(data); // copy-ok: inline envelope fill <= 64 B
        Some(InlineData {
            len: data.len() as u8,
            bytes,
        })
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.bytes.get(..self.len as usize).unwrap_or(&[])
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy the payload out into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec() // copy-ok: client-side copy-out of an inline result
    }
}

impl std::fmt::Debug for InlineData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InlineData")
            .field("len", &self.len)
            .field("bytes", &self.as_slice())
            .finish()
    }
}

impl PartialEq for InlineData {
    fn eq(&self, other: &InlineData) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for InlineData {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the threshold: exactly 64 B rides inline, 65 B falls back
    /// to the BufferPool path.
    #[test]
    fn threshold_is_sixty_four_bytes() {
        let at = vec![0xabu8; INLINE_MAX];
        let d = InlineData::from_slice(&at).expect("64 B fits inline");
        assert_eq!(d.len(), INLINE_MAX);
        assert_eq!(d.as_slice(), &at[..]);

        let over = vec![0xabu8; INLINE_MAX + 1];
        assert!(
            InlineData::from_slice(&over).is_none(),
            "65 B must not inline"
        );
    }

    #[test]
    fn roundtrip_and_empty() {
        let d = InlineData::from_slice(b"hello").expect("fits");
        assert_eq!(d.to_vec(), b"hello");
        assert_eq!(d.len(), 5);
        assert!(!d.is_empty());

        let e = InlineData::from_slice(&[]).expect("empty fits");
        assert!(e.is_empty());
        assert_eq!(e.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn inlining_counts_no_payload_copies() {
        let before = crate::payload_copies();
        let d = InlineData::from_slice(&[7u8; 32]).expect("fits");
        assert_eq!(d.len(), 32);
        assert_eq!(crate::payload_copies(), before);
    }
}
