//! Doorbell: the park/wake primitive behind the completion-driven runtime.
//!
//! Real LabStor queue pairs carry a doorbell word the producer stores to
//! after publishing entries; a futex (or monitor/mwait on dedicated cores)
//! lets the consumer sleep on it. In the simulator the doorbell is an
//! epoch counter plus a condvar: producers bump the epoch once per burst
//! (the PR 3 one-doorbell-per-burst contract) and notify only when a
//! waiter is registered, so the un-contended ring is two atomic ops and
//! parking costs no CPU.
//!
//! # Protocol (lost-wakeup freedom)
//!
//! A consumer captures `epoch()` **before** scanning its queues, scans,
//! and only then parks with `wait_past(captured, timeout)`. Any ring that
//! lands after the capture moves the epoch, so `wait_past` returns
//! immediately instead of parking; any ring that lands before the capture
//! published its items before the scan (rings happen after the push).
//! Inside `wait_past` the epoch is re-checked under the mutex the ringer
//! must take to notify, closing the classic check-then-park window — the
//! planted `ParkWithoutRecheck` bug in `labcheck::mc_doorbell` shows what
//! breaks without it. The waiter-count fast path is the store-buffering
//! litmus test: both sides use `SeqCst` so "ringer misses the waiter while
//! the waiter misses the bump" is an impossible cycle.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// An epoch-counting park/wake word (condvar-backed futex stand-in).
///
/// `ring` never blocks on a parked waiter's timeslice and is two atomic
/// ops when nobody is parked; `wait_past` consumes no CPU while parked.
pub struct Doorbell {
    /// Ring counter. Monotonically increasing; never reset.
    epoch: AtomicU64,
    /// Number of threads inside `wait_past` past the registration point.
    waiters: AtomicU32,
    /// Serializes the park/notify handshake; held only for the re-check
    /// and the notify, never across a scan.
    mu: Mutex<()>,
    cv: Condvar,
}

impl Doorbell {
    /// A fresh doorbell at epoch 0 with no waiters.
    pub fn new() -> Self {
        Doorbell {
            epoch: AtomicU64::new(0),
            waiters: AtomicU32::new(0),
            mu: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// The current epoch. Capture this **before** scanning the queues the
    /// doorbell covers; pass the captured value to [`Doorbell::wait_past`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Ring the bell: bump the epoch and wake every parked waiter.
    ///
    /// Called once per successful burst *after* the items are visible in
    /// the queue. `SeqCst` on the bump and the waiter probe pairs with the
    /// waiter's registration (see module docs); the mutex is only taken
    /// when someone is actually parked.
    pub fn ring(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders the notify against a waiter that has
            // re-checked the epoch but not yet entered the condvar wait.
            let _guard = self.mu.lock(); // lock-class: ipc.bell
            self.cv.notify_all();
        }
    }

    /// Park until the epoch moves past `observed` or `timeout` elapses.
    ///
    /// Returns `true` if the epoch moved (a ring happened since the
    /// caller captured `observed`), `false` on timeout. Spurious wakeups
    /// never return early: the epoch is the sole wake condition.
    pub fn wait_past(&self, observed: u64, timeout: Duration) -> bool {
        if self.epoch.load(Ordering::SeqCst) != observed {
            return true;
        }
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + timeout;
        {
            let mut guard = self.mu.lock(); // lock-class: ipc.bell
                                            // Re-check under the mutex: a ring between the caller's queue
                                            // scan and this point already moved the epoch, and its notify
                                            // (which needs `mu`) cannot interleave with this check.
            while self.epoch.load(Ordering::SeqCst) == observed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let _ = self.cv.wait_for(&mut guard, deadline - now);
            }
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst) != observed
    }
}

impl Default for Doorbell {
    fn default() -> Self {
        Doorbell::new()
    }
}

impl std::fmt::Debug for Doorbell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Doorbell")
            .field("epoch", &self.epoch.load(Ordering::Acquire))
            .field("waiters", &self.waiters.load(Ordering::Acquire))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_before_wait_returns_immediately() {
        let bell = Doorbell::new();
        let e = bell.epoch();
        bell.ring();
        let t0 = Instant::now();
        assert!(bell.wait_past(e, Duration::from_secs(10)));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn wait_times_out_without_ring() {
        let bell = Doorbell::new();
        let e = bell.epoch();
        assert!(!bell.wait_past(e, Duration::from_millis(10)));
        assert_eq!(bell.epoch(), e);
    }

    #[test]
    fn ring_wakes_parked_waiter() {
        let bell = Arc::new(Doorbell::new());
        let bell2 = bell.clone();
        let e = bell.epoch();
        let t = std::thread::spawn(move || bell2.wait_past(e, Duration::from_secs(30)));
        // Let the waiter park (best-effort; correctness doesn't depend on it).
        std::thread::sleep(Duration::from_millis(5));
        bell.ring();
        assert!(t.join().unwrap(), "waiter should observe the ring");
    }

    #[test]
    fn burst_of_rings_counts_every_epoch() {
        let bell = Doorbell::new();
        let e = bell.epoch();
        for _ in 0..64 {
            bell.ring();
        }
        assert_eq!(bell.epoch(), e + 64);
    }

    /// Hammer the registration race: a producer ringing as fast as it can
    /// must never strand a consumer that interleaves capture/scan/park.
    #[test]
    fn no_lost_wakeup_under_stress() {
        let bell = Arc::new(Doorbell::new());
        let work = Arc::new(AtomicU64::new(0));
        const ITEMS: u64 = 2_000;

        let prod = {
            let (bell, work) = (bell.clone(), work.clone());
            std::thread::spawn(move || {
                for _ in 0..ITEMS {
                    work.fetch_add(1, Ordering::SeqCst);
                    bell.ring();
                }
            })
        };
        let mut seen = 0u64;
        while seen < ITEMS {
            let e = bell.epoch();
            let avail = work.load(Ordering::SeqCst);
            if avail > seen {
                seen = avail;
                continue;
            }
            // Nothing visible: park. A ring between the load above and
            // this call must abort the park via the epoch check.
            bell.wait_past(e, Duration::from_secs(30));
        }
        prod.join().unwrap();
        assert_eq!(seen, ITEMS);
    }
}
