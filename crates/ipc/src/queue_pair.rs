//! Queue Pairs: the request/completion conduits between clients, the
//! Runtime, and LabMods (paper §III-C1).
//!
//! Properties reproduced from the paper:
//!
//! * **Primary vs intermediate**: primary queues carry client-initiated
//!   requests (and live in shared memory); intermediate queues hold
//!   requests spawned by other requests (private memory).
//! * **Ordered vs unordered**: ordered queues must be drained in sequence
//!   by a single worker; unordered queues may be drained by many.
//! * **Upgrade flags**: the Module Manager marks primary queues
//!   `UPDATE_PENDING`; workers acknowledge with `UPDATE_ACKED` before the
//!   upgrade proceeds (§III-C2).
//!
//! ## Virtual-time causality
//!
//! Envelopes carry the producer's virtual timestamp. A consumer whose
//! clock lags the envelope's submit time first idles forward to it — work
//! cannot be processed before it exists. This is the conservative
//! synchronization rule that makes the simulation's timing host-independent
//! (see `labstor_sim::time`).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crossbeam::queue::ArrayQueue;
use labstor_sim::Ctx;
use labstor_telemetry::LogHistogram;

use crate::cost;

/// Whether a queue carries client-initiated or spawned requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueRole {
    /// Client-initiated requests; participates in upgrade quiescence.
    Primary,
    /// Requests spawned by other requests; drains to completion during
    /// upgrades.
    Intermediate,
}

/// Static properties of a queue pair.
#[derive(Debug, Clone, Copy)]
pub struct QueueFlags {
    /// Ordered queues are processed in sequence on a single worker.
    pub ordered: bool,
    /// Primary or intermediate (see [`QueueRole`]).
    pub role: QueueRole,
}

impl Default for QueueFlags {
    fn default() -> Self {
        QueueFlags {
            ordered: true,
            role: QueueRole::Primary,
        }
    }
}

/// Live-upgrade handshake state of a primary queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum UpgradeFlag {
    /// Normal operation.
    None = 0,
    /// The Module Manager requested quiescence.
    UpdatePending = 1,
    /// The owning worker acknowledged and paused the queue.
    UpdateAcked = 2,
}

/// A request wrapped with provenance used for cost accounting, causality,
/// and queueing-latency measurement.
#[derive(Debug)]
pub struct Envelope<T> {
    /// The request itself.
    pub payload: T,
    /// Virtual time at which the envelope entered the queue.
    pub submit_vt: u64,
    /// Domain (address space) that produced the envelope.
    pub origin_domain: u32,
}

/// A submission/completion queue pair.
///
/// Backed by bounded MPMC queues: FIFO per queue, safe under worker
/// reassignment by the orchestrator. The *ordered* flag is an assignment
/// constraint honored by the Work Orchestrator, which guarantees a single
/// consumer for ordered queues.
pub struct QueuePair<T> {
    /// Unique queue id within the IPC manager.
    pub id: u64,
    flags: QueueFlags,
    sq: ArrayQueue<Envelope<T>>,
    cq: ArrayQueue<Envelope<T>>,
    upgrade: AtomicU8,
    submitted: AtomicU64,
    consumed: AtomicU64,
    completed: AtomicU64,
    /// Estimated total processing cost (ns) of requests currently queued;
    /// maintained by callers via [`QueuePair::add_load`] and consumed by
    /// the Work Orchestrator's partitioner.
    est_load_ns: AtomicU64,
    /// Maximum estimated single-item cost seen (queue classification).
    max_item_ns: AtomicU64,
    /// Cumulative processing time workers spent on this queue's requests
    /// (the orchestrator's demand signal).
    work_done_ns: AtomicU64,
    /// Exponential moving average of the queue wait requests observed
    /// (worker pickup time minus submit time) — the orchestrator's
    /// latency-pressure signal.
    wait_ema_ns: AtomicU64,
    /// Histogram of measured per-item processing cost (everything passed
    /// to [`QueuePair::record_work`]). The Work Orchestrator classifies
    /// queues by its quantiles, falling back to [`QueuePair::max_item_ns`]
    /// while the histogram is still empty.
    item_hist: LogHistogram,
}

impl<T> QueuePair<T> {
    /// Create a queue pair with `depth` slots in each direction.
    pub fn new(id: u64, depth: usize, flags: QueueFlags) -> Self {
        QueuePair {
            id,
            flags,
            sq: ArrayQueue::new(depth.max(1)),
            cq: ArrayQueue::new(depth.max(1)),
            upgrade: AtomicU8::new(UpgradeFlag::None as u8),
            submitted: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            est_load_ns: AtomicU64::new(0),
            max_item_ns: AtomicU64::new(0),
            work_done_ns: AtomicU64::new(0),
            wait_ema_ns: AtomicU64::new(0),
            item_hist: LogHistogram::new(),
        }
    }

    /// Static queue properties.
    pub fn flags(&self) -> QueueFlags {
        self.flags
    }

    /// Submit a request at virtual time `submit_vt` from `origin_domain`.
    /// Fails (returning the payload) when the submission queue is full —
    /// callers back off and retry, which is the paper's backpressure
    /// behaviour.
    pub fn submit(&self, payload: T, submit_vt: u64, origin_domain: u32) -> Result<(), T> {
        let env = Envelope {
            payload,
            submit_vt,
            origin_domain,
        };
        match self.sq.push(env) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                Ok(())
            }
            Err(env) => Err(env.payload),
        }
    }

    /// Worker side: take the oldest submitted request. The consumer's
    /// clock idles forward to the submit time (causality) and is charged
    /// the transfer cost — cross-domain when the envelope came from
    /// another address space.
    pub fn consume(&self, ctx: &mut Ctx, consumer_domain: u32) -> Option<Envelope<T>> {
        let env = self.sq.pop()?;
        self.consumed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                                                       // Queue wait: how long the request sat before this worker's
                                                       // timeline reached it (zero when the worker was waiting for it).
        let wait = ctx.now().saturating_sub(env.submit_vt);
        let ema = self.wait_ema_ns.load(Ordering::Relaxed); // relaxed-ok: single-writer EMA, approximate by design
        self.wait_ema_ns
            .store(ema - ema / 8 + wait / 8, Ordering::Relaxed); // relaxed-ok: single-writer EMA, approximate by design
        ctx.idle_until(env.submit_vt);
        if env.origin_domain != consumer_domain {
            cost::cross_domain_hop(ctx);
        } else {
            cost::same_domain_hop(ctx);
        }
        Some(env)
    }

    /// Worker side: post a completion produced at `complete_vt` back
    /// toward the client.
    pub fn complete(&self, payload: T, complete_vt: u64, origin_domain: u32) -> Result<(), T> {
        let env = Envelope {
            payload,
            submit_vt: complete_vt,
            origin_domain,
        };
        match self.cq.push(env) {
            Ok(()) => {
                self.completed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                Ok(())
            }
            Err(env) => Err(env.payload),
        }
    }

    /// Client side: reap one completion, idling forward to its production
    /// time and paying the transfer cost when it was produced in another
    /// domain.
    pub fn reap(&self, ctx: &mut Ctx, consumer_domain: u32) -> Option<Envelope<T>> {
        let env = self.cq.pop()?;
        ctx.idle_until(env.submit_vt);
        if env.origin_domain != consumer_domain {
            cost::cross_domain_hop(ctx);
        } else {
            cost::same_domain_hop(ctx);
        }
        Some(env)
    }

    /// Number of submitted-but-unconsumed requests.
    pub fn sq_depth(&self) -> usize {
        self.sq.len()
    }

    /// Number of posted-but-unreaped completions.
    pub fn cq_depth(&self) -> usize {
        self.cq.len()
    }

    /// Total requests ever submitted.
    pub fn total_submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Total requests ever consumed by workers.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Total completions ever posted.
    pub fn total_completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    // ---- upgrade handshake ------------------------------------------------

    /// Current upgrade flag.
    pub fn upgrade_flag(&self) -> UpgradeFlag {
        match self.upgrade.load(Ordering::Acquire) {
            1 => UpgradeFlag::UpdatePending,
            2 => UpgradeFlag::UpdateAcked,
            _ => UpgradeFlag::None,
        }
    }

    /// Module Manager: request quiescence on this queue.
    pub fn mark_update_pending(&self) {
        self.upgrade
            .store(UpgradeFlag::UpdatePending as u8, Ordering::Release);
    }

    /// Worker: acknowledge the pending update (pauses the queue).
    /// Returns false if no update was pending.
    pub fn ack_update(&self) -> bool {
        self.upgrade
            .compare_exchange(
                UpgradeFlag::UpdatePending as u8,
                UpgradeFlag::UpdateAcked as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Module Manager: resume the queue after the upgrade completes.
    pub fn clear_update(&self) {
        self.upgrade
            .store(UpgradeFlag::None as u8, Ordering::Release);
    }

    /// True while the queue must not be drained (update acked, upgrade in
    /// progress).
    pub fn is_paused(&self) -> bool {
        self.upgrade.load(Ordering::Acquire) == UpgradeFlag::UpdateAcked as u8
    }

    // ---- orchestrator load accounting --------------------------------------

    /// Add (or with a negative value, remove) estimated processing cost.
    pub fn add_load(&self, delta_ns: i64) {
        if delta_ns >= 0 {
            self.est_load_ns
                .fetch_add(delta_ns as u64, Ordering::Relaxed); // relaxed-ok: self-contained stat counter; CAS guards no other memory
        } else {
            let sub = (-delta_ns) as u64;
            let mut cur = self.est_load_ns.load(Ordering::Relaxed); // relaxed-ok: self-contained stat counter; CAS guards no other memory
            loop {
                let next = cur.saturating_sub(sub);
                match self.est_load_ns.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                    Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                ) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
        }
    }

    /// Estimated processing cost of currently queued requests, in ns.
    pub fn est_load_ns(&self) -> u64 {
        self.est_load_ns.load(Ordering::Relaxed) // relaxed-ok: self-contained stat counter; CAS guards no other memory
    }

    /// Record the estimated cost of one submitted item; keeps the
    /// maximum. The Work Orchestrator classifies queues as
    /// latency-sensitive or computational from this (paper §III-C4).
    pub fn note_item_est(&self, est_ns: u64) {
        let mut cur = self.max_item_ns.load(Ordering::Relaxed); // relaxed-ok: self-contained stat counter; CAS guards no other memory
        while est_ns > cur {
            match self.max_item_ns.compare_exchange_weak(
                cur,
                est_ns,
                Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Maximum estimated single-item cost seen on this queue.
    pub fn max_item_ns(&self) -> u64 {
        self.max_item_ns.load(Ordering::Relaxed) // relaxed-ok: self-contained stat counter; CAS guards no other memory
    }

    /// Record `ns` of processing done for a request from this queue.
    pub fn record_work(&self, ns: u64) {
        self.work_done_ns.fetch_add(ns, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.item_hist.record(ns);
    }

    /// Cumulative processing time spent on this queue's requests.
    pub fn work_done_ns(&self) -> u64 {
        self.work_done_ns.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Recent average queue wait in ns.
    pub fn wait_ema_ns(&self) -> u64 {
        self.wait_ema_ns.load(Ordering::Relaxed) // relaxed-ok: single-writer EMA, approximate by design
    }

    /// Median measured per-item processing cost (0 until work is
    /// recorded).
    pub fn p50_item_ns(&self) -> u64 {
        self.item_hist.p50()
    }

    /// Tail (P99) measured per-item processing cost (0 until work is
    /// recorded).
    pub fn p99_item_ns(&self) -> u64 {
        self.item_hist.p99()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp() -> QueuePair<u32> {
        QueuePair::new(1, 8, QueueFlags::default())
    }

    #[test]
    fn submit_consume_complete_reap() {
        let q = qp();
        q.submit(7, 100, 1).unwrap();
        let mut worker = Ctx::new();
        let env = q.consume(&mut worker, 0).unwrap();
        assert_eq!(env.payload, 7);
        assert_eq!(env.origin_domain, 1);
        // Worker idled to submit time then paid the cross-domain hop.
        assert_eq!(worker.now(), 100 + cost::CROSS_DOMAIN_HOP_NS);
        q.complete(env.payload + 1, worker.now(), 0).unwrap();
        let mut client = Ctx::at(50);
        let done = q.reap(&mut client, 1).unwrap();
        assert_eq!(done.payload, 8);
        assert_eq!(client.now(), worker.now() + cost::CROSS_DOMAIN_HOP_NS);
    }

    #[test]
    fn same_domain_hop_is_cheap() {
        let q = qp();
        q.submit(1, 0, 0).unwrap();
        let mut ctx = Ctx::new();
        q.consume(&mut ctx, 0).unwrap();
        assert_eq!(ctx.now(), cost::SAME_DOMAIN_HOP_NS);
    }

    #[test]
    fn consumer_ahead_of_submit_does_not_rewind() {
        let q = qp();
        q.submit(1, 100, 1).unwrap();
        let mut worker = Ctx::at(500);
        q.consume(&mut worker, 0).unwrap();
        assert_eq!(worker.now(), 500 + cost::CROSS_DOMAIN_HOP_NS);
    }

    #[test]
    fn backpressure_when_full() {
        let q = QueuePair::new(1, 2, QueueFlags::default());
        q.submit(1, 0, 0).unwrap();
        q.submit(2, 0, 0).unwrap();
        assert_eq!(q.submit(3, 0, 0), Err(3));
        let mut ctx = Ctx::new();
        q.consume(&mut ctx, 0).unwrap();
        q.submit(3, 0, 0).unwrap();
    }

    #[test]
    fn counters_track_flow() {
        let q = qp();
        q.submit(1, 0, 0).unwrap();
        q.submit(2, 0, 0).unwrap();
        assert_eq!(q.sq_depth(), 2);
        let mut ctx = Ctx::new();
        q.consume(&mut ctx, 0).unwrap();
        assert_eq!((q.total_submitted(), q.total_consumed()), (2, 1));
        q.complete(9, 0, 0).unwrap();
        assert_eq!((q.cq_depth(), q.total_completed()), (1, 1));
    }

    #[test]
    fn upgrade_handshake() {
        let q = qp();
        assert_eq!(q.upgrade_flag(), UpgradeFlag::None);
        assert!(!q.ack_update()); // nothing pending
        q.mark_update_pending();
        assert_eq!(q.upgrade_flag(), UpgradeFlag::UpdatePending);
        assert!(q.ack_update());
        assert!(q.is_paused());
        q.clear_update();
        assert_eq!(q.upgrade_flag(), UpgradeFlag::None);
        assert!(!q.is_paused());
    }

    #[test]
    fn max_item_est_keeps_maximum() {
        let q = qp();
        q.note_item_est(500);
        q.note_item_est(200);
        q.note_item_est(900);
        assert_eq!(q.max_item_ns(), 900);
    }

    #[test]
    fn load_accounting_saturates_at_zero() {
        let q = qp();
        q.add_load(1000);
        q.add_load(-250);
        assert_eq!(q.est_load_ns(), 750);
        q.add_load(-10_000);
        assert_eq!(q.est_load_ns(), 0);
    }

    #[test]
    fn record_work_feeds_item_quantiles() {
        let q = qp();
        assert_eq!((q.p50_item_ns(), q.p99_item_ns()), (0, 0));
        for _ in 0..9 {
            q.record_work(1_000);
        }
        q.record_work(1_000_000);
        let p50 = q.p50_item_ns();
        assert!((1_000..1_100).contains(&p50), "p50 {p50}");
        assert!(q.p99_item_ns() >= 1_000_000);
        assert_eq!(q.work_done_ns(), 9_000 + 1_000_000);
    }

    #[test]
    fn fifo_order_preserved() {
        let q = QueuePair::new(1, 64, QueueFlags::default());
        for i in 0..10 {
            q.submit(i, 0, 0).unwrap();
        }
        let mut ctx = Ctx::new();
        for i in 0..10 {
            assert_eq!(q.consume(&mut ctx, 0).unwrap().payload, i);
        }
    }
}
