//! Queue Pairs: the request/completion conduits between clients, the
//! Runtime, and LabMods (paper §III-C1).
//!
//! Properties reproduced from the paper:
//!
//! * **Primary vs intermediate**: primary queues carry client-initiated
//!   requests (and live in shared memory); intermediate queues hold
//!   requests spawned by other requests (private memory).
//! * **Ordered vs unordered**: ordered queues must be drained in sequence
//!   by a single worker; unordered queues may be drained by many.
//! * **Upgrade flags**: the Module Manager marks primary queues
//!   `UPDATE_PENDING`; workers acknowledge with `UPDATE_ACKED` before the
//!   upgrade proceeds (§III-C2).
//!
//! ## Two-lane backend
//!
//! Each direction (SQ and CQ) is backed by one of two lanes:
//!
//! * [`LaneKind::Mpmc`] — crossbeam's CAS-based bounded MPMC queue. Safe
//!   under any topology; the default for directly constructed pairs and
//!   for intermediate queues.
//! * [`LaneKind::Spsc`] — the zero-CAS [`SpscRing`]. Selected at connect
//!   time for *ordered primary* queues, whose topology is fixed: one
//!   client submitting/reaping, one worker consuming/completing. The
//!   orchestrator's single-consumer assignment plus the
//!   `UpdatePending`/`UpdateAcked` drain-and-handoff keep the contract
//!   across reassignment (DESIGN.md §9). Debug builds additionally verify
//!   it dynamically with per-role access claims.
//!
//! ## Batched verbs
//!
//! `submit_batch` / `consume_batch` / `complete_batch` / `reap_batch`
//! process a burst per call: the ring publication, the flow counters, and
//! the wait-EMA store happen once per batch, while the *virtual-time*
//! accounting (causality idle, per-envelope hop cost) is charged per
//! envelope, exactly as N single verbs would — batching is a host-side
//! optimization and must not change simulated results.
//!
//! ## Virtual-time causality
//!
//! Envelopes carry the producer's virtual timestamp. A consumer whose
//! clock lags the envelope's submit time first idles forward to it — work
//! cannot be processed before it exists. This is the conservative
//! synchronization rule that makes the simulation's timing host-independent
//! (see `labstor_sim::time`).

#[cfg(debug_assertions)]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crossbeam::queue::ArrayQueue;
use labstor_sim::Ctx;
use labstor_telemetry::LogHistogram;
use parking_lot::RwLock;

use crate::cost;
use crate::doorbell::Doorbell;
use crate::ring::SpscRing;

/// Whether a queue carries client-initiated or spawned requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueRole {
    /// Client-initiated requests; participates in upgrade quiescence.
    Primary,
    /// Requests spawned by other requests; drains to completion during
    /// upgrades.
    Intermediate,
}

/// Static properties of a queue pair.
#[derive(Debug, Clone, Copy)]
pub struct QueueFlags {
    /// Ordered queues are processed in sequence on a single worker.
    pub ordered: bool,
    /// Primary or intermediate (see [`QueueRole`]).
    pub role: QueueRole,
}

impl Default for QueueFlags {
    fn default() -> Self {
        QueueFlags {
            ordered: true,
            role: QueueRole::Primary,
        }
    }
}

/// Which backend a queue-pair direction runs on (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneKind {
    /// CAS-based bounded MPMC queue — safe under any topology.
    Mpmc,
    /// Zero-CAS SPSC ring — requires the single-producer/single-consumer
    /// contract held by connect-time selection plus orchestrator
    /// assignment.
    Spsc,
}

/// Live-upgrade handshake state of a primary queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum UpgradeFlag {
    /// Normal operation.
    None = 0,
    /// The Module Manager requested quiescence.
    UpdatePending = 1,
    /// The owning worker acknowledged and paused the queue.
    UpdateAcked = 2,
}

/// A request wrapped with provenance used for cost accounting, causality,
/// and queueing-latency measurement.
#[derive(Debug)]
pub struct Envelope<T> {
    /// The request itself.
    pub payload: T,
    /// Virtual time at which the envelope entered the queue.
    pub submit_vt: u64,
    /// Domain (address space) that produced the envelope.
    pub origin_domain: u32,
    /// Virtual time at which the consumer finished the transfer hop for
    /// this envelope; stamped by `consume`/`reap` (0 while queued). Batch
    /// consumers use it to attribute per-envelope hop spans.
    pub dequeue_vt: u64,
}

/// One direction of a queue pair (see [`LaneKind`]).
enum Lane<T> {
    Mpmc(ArrayQueue<Envelope<T>>),
    Spsc(SpscRing<Envelope<T>>),
}

impl<T> Lane<T> {
    fn new(kind: LaneKind, depth: usize) -> Lane<T> {
        match kind {
            LaneKind::Mpmc => Lane::Mpmc(ArrayQueue::new(depth.max(1))),
            LaneKind::Spsc => Lane::Spsc(SpscRing::with_capacity(depth.max(1))),
        }
    }

    fn len(&self) -> usize {
        match self {
            Lane::Mpmc(q) => q.len(),
            Lane::Spsc(r) => r.len(),
        }
    }

    /// Push one envelope.
    ///
    /// # Safety
    ///
    /// For the SPSC lane the caller must be the direction's sole producer
    /// for the duration of the call (the queue-pair role contract; debug
    /// builds check it via [`LaneClaims`]). Always safe on the MPMC lane.
    // SAFETY: contract — forwards the unique-producer obligation to SpscRing.
    unsafe fn push(&self, env: Envelope<T>) -> Result<(), Envelope<T>> {
        match self {
            Lane::Mpmc(q) => q.push(env),
            // SAFETY: the caller upholds the unique-producer contract.
            Lane::Spsc(r) => unsafe { r.producer_push(env) },
        }
    }

    /// Pop the oldest envelope.
    ///
    /// # Safety
    ///
    /// For the SPSC lane the caller must be the direction's sole consumer
    /// for the duration of the call. Always safe on the MPMC lane.
    // SAFETY: contract — forwards the unique-consumer obligation to SpscRing.
    unsafe fn pop(&self) -> Option<Envelope<T>> {
        match self {
            Lane::Mpmc(q) => q.pop(),
            // SAFETY: the caller upholds the unique-consumer contract.
            Lane::Spsc(r) => unsafe { r.consumer_pop() },
        }
    }

    /// Pop up to `max` envelopes into `out` (FIFO, appended), with one
    /// counter publication per batch on the SPSC lane. Returns the count.
    ///
    /// # Safety
    ///
    /// Same unique-consumer contract as [`Lane::pop`].
    // SAFETY: contract — forwards the unique-consumer obligation to SpscRing.
    unsafe fn pop_batch(&self, out: &mut Vec<Envelope<T>>, max: usize) -> usize {
        match self {
            Lane::Mpmc(q) => {
                let mut n = 0usize;
                while n < max {
                    match q.pop() {
                        Some(env) => {
                            out.push(env);
                            n += 1;
                        }
                        None => break,
                    }
                }
                n
            }
            // SAFETY: the caller upholds the unique-consumer contract.
            Lane::Spsc(r) => unsafe { r.consumer_pop_batch(out, max) },
        }
    }
}

/// Debug-only dynamic enforcement of the SPSC lane contract: each of the
/// four roles (SQ producer/consumer, CQ producer/consumer) may be held by
/// at most one thread at a time. Release builds compile this away — the
/// contract is held by construction (connect-time lane selection, the
/// orchestrator's single-consumer assignment, and the drain-and-handoff
/// protocol in `Runtime::rebalance`).
#[cfg(debug_assertions)]
#[derive(Default)]
struct LaneClaims {
    sq_producer: AtomicBool,
    sq_consumer: AtomicBool,
    cq_producer: AtomicBool,
    cq_consumer: AtomicBool,
}

/// RAII holder of one lane role; see [`LaneClaims`].
#[cfg(debug_assertions)]
struct Claim<'a>(&'a AtomicBool);

#[cfg(debug_assertions)]
impl<'a> Claim<'a> {
    fn acquire(flag: &'a AtomicBool, what: &'static str) -> Claim<'a> {
        // panic-ok: debug-only contract check — a second concurrent holder
        // of an SPSC-lane role is exactly the bug this guard exists to
        // catch, and continuing would be UB on the ring.
        assert!(
            !flag.swap(true, Ordering::Acquire),
            "SPSC lane contract violated: concurrent {what}"
        );
        Claim(flag)
    }
}

#[cfg(debug_assertions)]
impl Drop for Claim<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// A submission/completion queue pair.
///
/// Backed by bounded queues: FIFO per queue; see the module docs for the
/// two lanes. The *ordered* flag is an assignment constraint honored by
/// the Work Orchestrator, which guarantees a single consumer for ordered
/// queues.
pub struct QueuePair<T> {
    /// Unique queue id within the IPC manager.
    pub id: u64,
    flags: QueueFlags,
    lane_kind: LaneKind,
    sq: Lane<T>,
    cq: Lane<T>,
    upgrade: AtomicU8,
    submitted: AtomicU64,
    consumed: AtomicU64,
    completed: AtomicU64,
    /// Estimated total processing cost (ns) of requests currently queued;
    /// maintained by callers via [`QueuePair::add_load`] and consumed by
    /// the Work Orchestrator's partitioner.
    est_load_ns: AtomicU64,
    /// Maximum estimated single-item cost seen (queue classification).
    max_item_ns: AtomicU64,
    /// Cumulative processing time workers spent on this queue's requests
    /// (the orchestrator's demand signal).
    work_done_ns: AtomicU64,
    /// Exponential moving average of the queue wait requests observed
    /// (worker pickup time minus submit time) — the orchestrator's
    /// latency-pressure signal.
    wait_ema_ns: AtomicU64,
    /// Histogram of measured per-item processing cost (everything passed
    /// to [`QueuePair::record_work`]). The Work Orchestrator classifies
    /// queues by its quantiles, falling back to [`QueuePair::max_item_ns`]
    /// while the histogram is still empty.
    item_hist: LogHistogram,
    /// Doorbell of the consumer currently draining the SQ (the assigned
    /// worker). Producers ring it once per successful burst; the worker
    /// re-registers its own bell when an assignment snapshot hands it the
    /// queue. `None` until a consumer registers (rings are dropped, which
    /// is safe: an unregistered consumer is by definition not parked).
    sq_bell: RwLock<Option<Arc<Doorbell>>>,
    /// Doorbell of the completion consumer (the owning client
    /// connection); registered once at connect time.
    cq_bell: RwLock<Option<Arc<Doorbell>>>,
    #[cfg(debug_assertions)]
    claims: LaneClaims,
}

/// The four lane roles checked by the debug claims.
#[cfg(debug_assertions)]
#[derive(Clone, Copy)]
enum LaneRole {
    SqProducer,
    SqConsumer,
    CqProducer,
    CqConsumer,
}

impl<T> QueuePair<T> {
    /// Create an MPMC-backed queue pair with `depth` slots in each
    /// direction — safe under any producer/consumer topology.
    pub fn new(id: u64, depth: usize, flags: QueueFlags) -> Self {
        QueuePair::with_lane(id, depth, flags, LaneKind::Mpmc)
    }

    /// Create a queue pair on an explicit lane. [`LaneKind::Spsc`] rounds
    /// `depth` up to a power of two and requires the single-producer/
    /// single-consumer contract per direction (module docs); it is
    /// selected by `IpcManager::connect` for ordered primary queues.
    pub fn with_lane(id: u64, depth: usize, flags: QueueFlags, lane: LaneKind) -> Self {
        QueuePair {
            id,
            flags,
            lane_kind: lane,
            sq: Lane::new(lane, depth),
            cq: Lane::new(lane, depth),
            upgrade: AtomicU8::new(UpgradeFlag::None as u8),
            submitted: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            est_load_ns: AtomicU64::new(0),
            max_item_ns: AtomicU64::new(0),
            work_done_ns: AtomicU64::new(0),
            wait_ema_ns: AtomicU64::new(0),
            item_hist: LogHistogram::new(),
            sq_bell: RwLock::new(None),
            cq_bell: RwLock::new(None),
            #[cfg(debug_assertions)]
            claims: LaneClaims::default(),
        }
    }

    // ---- doorbells ---------------------------------------------------------
    //
    // Registration/ring race, resolved by the slot lock: a consumer
    // registers its bell *before* scanning the queue; a producer pushes
    // *before* reading the slot to ring. If the producer's slot read
    // happens before the registration write, the consumer's subsequent
    // scan observes the push (the write lock's release/acquire orders it);
    // if it happens after, the ring lands on the registered bell and
    // aborts the park. Either way no envelope is stranded.

    /// Register the SQ consumer's doorbell (called by a worker when an
    /// assignment snapshot hands it this queue, before it first scans).
    pub fn register_sq_bell(&self, bell: &Arc<Doorbell>) {
        let mut slot = self.sq_bell.write(); // lock-class: ipc.bellslot
        *slot = Some(Arc::clone(bell));
    }

    /// Register the CQ consumer's doorbell (the owning client connection;
    /// called once at connect time, before any submission).
    pub fn register_cq_bell(&self, bell: &Arc<Doorbell>) {
        let mut slot = self.cq_bell.write(); // lock-class: ipc.bellslot
        *slot = Some(Arc::clone(bell));
    }

    /// Ring the SQ consumer's doorbell (once per successful submit burst,
    /// and on upgrade-flag edges a parked worker must observe).
    fn ring_sq(&self) {
        let slot = self.sq_bell.read(); // lock-class: ipc.bellslot
        if let Some(bell) = slot.as_ref() {
            bell.ring();
        }
    }

    /// Ring the CQ consumer's doorbell (once per successful completion
    /// burst).
    fn ring_cq(&self) {
        let slot = self.cq_bell.read(); // lock-class: ipc.bellslot
        if let Some(bell) = slot.as_ref() {
            bell.ring();
        }
    }

    /// Static queue properties.
    pub fn flags(&self) -> QueueFlags {
        self.flags
    }

    /// Which backend this pair runs on.
    pub fn lane(&self) -> LaneKind {
        self.lane_kind
    }

    /// Claim a lane role for the duration of one verb (debug builds,
    /// SPSC lane only — the MPMC lane allows any topology).
    #[cfg(debug_assertions)]
    fn claim(&self, role: LaneRole) -> Option<Claim<'_>> {
        if self.lane_kind != LaneKind::Spsc {
            return None;
        }
        let (flag, what) = match role {
            LaneRole::SqProducer => (&self.claims.sq_producer, "SQ producer (submit)"),
            LaneRole::SqConsumer => (&self.claims.sq_consumer, "SQ consumer (consume)"),
            LaneRole::CqProducer => (&self.claims.cq_producer, "CQ producer (complete)"),
            LaneRole::CqConsumer => (&self.claims.cq_consumer, "CQ consumer (reap)"),
        };
        Some(Claim::acquire(flag, what))
    }

    /// Submit a request at virtual time `submit_vt` from `origin_domain`.
    /// Fails (returning the payload) when the submission queue is full —
    /// callers back off and retry, which is the paper's backpressure
    /// behaviour.
    pub fn submit(&self, payload: T, submit_vt: u64, origin_domain: u32) -> Result<(), T> {
        #[cfg(debug_assertions)]
        let _claim = self.claim(LaneRole::SqProducer);
        let env = Envelope {
            payload,
            submit_vt,
            origin_domain,
            dequeue_vt: 0,
        };
        // SAFETY: SPSC lanes exist only on connect-allocated ordered
        // primary queues, whose sole SQ producer is the owning client
        // connection (debug-checked by `_claim`).
        match unsafe { self.sq.push(env) } {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                self.ring_sq();
                Ok(())
            }
            Err(env) => Err(env.payload),
        }
    }

    /// Batched [`QueuePair::submit`]: move requests from the front of
    /// `payloads` into the SQ until it fills, publishing the burst with
    /// one ring doorbell and one counter update. Returns how many were
    /// queued; leftovers stay in `payloads` for the caller's backpressure
    /// retry. Equivalent to N single submits at the same `submit_vt`.
    pub fn submit_batch(&self, payloads: &mut Vec<T>, submit_vt: u64, origin_domain: u32) -> usize {
        #[cfg(debug_assertions)]
        let _claim = self.claim(LaneRole::SqProducer);
        if payloads.is_empty() {
            return 0;
        }
        let wrap = |payload: T| Envelope {
            payload,
            submit_vt,
            origin_domain,
            dequeue_vt: 0,
        };
        let n = match &self.sq {
            Lane::Spsc(r) => {
                // SAFETY: SPSC lanes exist only on connect-allocated
                // ordered primary queues, whose sole SQ producer is the
                // owning client connection (debug-checked by `_claim`); as
                // sole producer, `free` cannot shrink before the push and
                // the drain iterator is consumed in full.
                let free = unsafe { r.producer_free() };
                let k = payloads.len().min(free);
                // SAFETY: same sole-SQ-producer contract as above.
                unsafe { r.producer_push_iter(payloads.drain(..k).map(wrap)) }
            }
            Lane::Mpmc(q) => {
                // Optimistic reservation; a racing MPMC producer can steal
                // slots, so rejected payloads are spliced back in order.
                let k = payloads.len().min(q.capacity().saturating_sub(q.len()));
                let mut pushed = 0usize;
                let mut rejected: Vec<T> = Vec::new();
                for payload in payloads.drain(..k) {
                    if !rejected.is_empty() {
                        rejected.push(payload);
                        continue;
                    }
                    match q.push(wrap(payload)) {
                        Ok(()) => pushed += 1,
                        Err(env) => rejected.push(env.payload),
                    }
                }
                if !rejected.is_empty() {
                    rejected.append(payloads);
                    *payloads = rejected;
                }
                pushed
            }
        };
        if n > 0 {
            self.submitted.fetch_add(n as u64, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            self.ring_sq(); // one doorbell per burst (PR 3 contract)
        }
        n
    }

    /// Worker side: take the oldest submitted request. The consumer's
    /// clock idles forward to the submit time (causality) and is charged
    /// the transfer cost — cross-domain when the envelope came from
    /// another address space.
    pub fn consume(&self, ctx: &mut Ctx, consumer_domain: u32) -> Option<Envelope<T>> {
        #[cfg(debug_assertions)]
        let _claim = self.claim(LaneRole::SqConsumer);
        // SAFETY: ordered queues are drained by a single worker at a time —
        // orchestrator assignment plus the drain-and-handoff protocol
        // (debug-checked by `_claim`).
        let mut env = unsafe { self.sq.pop() }?;
        self.consumed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                                                       // Queue wait: how long the request sat before this worker's
                                                       // timeline reached it (zero when the worker was waiting for it).
        let wait = ctx.now().saturating_sub(env.submit_vt);
        let ema = self.wait_ema_ns.load(Ordering::Relaxed); // relaxed-ok: single-writer EMA, approximate by design
        self.wait_ema_ns
            .store(ema - ema / 8 + wait / 8, Ordering::Relaxed); // relaxed-ok: single-writer EMA, approximate by design
        ctx.idle_until(env.submit_vt);
        if env.origin_domain != consumer_domain {
            cost::cross_domain_hop(ctx);
        } else {
            cost::same_domain_hop(ctx);
        }
        env.dequeue_vt = ctx.now();
        Some(env)
    }

    /// Batched [`QueuePair::consume`]: drain up to `max` requests into
    /// `out` (appended, FIFO). The ring doorbell, the flow counter, and
    /// the wait-EMA store happen once per batch; causality idling and the
    /// per-envelope transfer hop are charged per envelope, in order, so
    /// the virtual-time results are identical to N single consumes (the
    /// EMA recurrence is folded locally — bit-identical, since the
    /// consumer is the EMA's only writer). Returns the count drained.
    pub fn consume_batch(
        &self,
        ctx: &mut Ctx,
        consumer_domain: u32,
        out: &mut Vec<Envelope<T>>,
        max: usize,
    ) -> usize {
        #[cfg(debug_assertions)]
        let _claim = self.claim(LaneRole::SqConsumer);
        let start = out.len();
        // SAFETY: same single-draining-worker contract as `consume`
        // (debug-checked by `_claim`).
        let n = unsafe { self.sq.pop_batch(out, max) };
        if n == 0 {
            return 0;
        }
        self.consumed.fetch_add(n as u64, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let mut ema = self.wait_ema_ns.load(Ordering::Relaxed); // relaxed-ok: single-writer EMA, approximate by design
        for env in out.iter_mut().skip(start) {
            let wait = ctx.now().saturating_sub(env.submit_vt);
            ema = ema - ema / 8 + wait / 8;
            ctx.idle_until(env.submit_vt);
            if env.origin_domain != consumer_domain {
                cost::cross_domain_hop(ctx);
            } else {
                cost::same_domain_hop(ctx);
            }
            env.dequeue_vt = ctx.now();
        }
        self.wait_ema_ns.store(ema, Ordering::Relaxed); // relaxed-ok: single-writer EMA, approximate by design
        n
    }

    /// Worker side: post a completion produced at `complete_vt` back
    /// toward the client.
    pub fn complete(&self, payload: T, complete_vt: u64, origin_domain: u32) -> Result<(), T> {
        #[cfg(debug_assertions)]
        let _claim = self.claim(LaneRole::CqProducer);
        let env = Envelope {
            payload,
            submit_vt: complete_vt,
            origin_domain,
            dequeue_vt: 0,
        };
        // SAFETY: completions on an ordered queue are posted by its single
        // assigned worker (debug-checked by `_claim`).
        match unsafe { self.cq.push(env) } {
            Ok(()) => {
                self.completed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                self.ring_cq();
                Ok(())
            }
            Err(env) => Err(env.payload),
        }
    }

    /// Batched [`QueuePair::complete`]: post completions from the front of
    /// `items` — each a `(payload, complete_vt)` pair, preserving
    /// per-request production times — until the CQ fills. One doorbell and
    /// one counter update per batch. Returns how many were posted;
    /// leftovers stay in `items` for the caller's bounded-backoff retry.
    pub fn complete_batch(&self, items: &mut Vec<(T, u64)>, origin_domain: u32) -> usize {
        #[cfg(debug_assertions)]
        let _claim = self.claim(LaneRole::CqProducer);
        if items.is_empty() {
            return 0;
        }
        let wrap = |(payload, complete_vt): (T, u64)| Envelope {
            payload,
            submit_vt: complete_vt,
            origin_domain,
            dequeue_vt: 0,
        };
        let n = match &self.cq {
            Lane::Spsc(r) => {
                // SAFETY: completions on an ordered queue are posted by
                // its single assigned worker (debug-checked by `_claim`);
                // as sole CQ producer, `free` cannot shrink before the
                // push and the drain iterator is consumed in full.
                let free = unsafe { r.producer_free() };
                let k = items.len().min(free);
                // SAFETY: same single-completing-worker contract as above.
                unsafe { r.producer_push_iter(items.drain(..k).map(wrap)) }
            }
            Lane::Mpmc(q) => {
                // Optimistic reservation; a racing MPMC producer can steal
                // slots, so rejected completions are spliced back in order.
                let k = items.len().min(q.capacity().saturating_sub(q.len()));
                let mut pushed = 0usize;
                let mut rejected: Vec<(T, u64)> = Vec::new();
                for item in items.drain(..k) {
                    if !rejected.is_empty() {
                        rejected.push(item);
                        continue;
                    }
                    match q.push(wrap(item)) {
                        Ok(()) => pushed += 1,
                        Err(env) => rejected.push((env.payload, env.submit_vt)),
                    }
                }
                if !rejected.is_empty() {
                    rejected.append(items);
                    *items = rejected;
                }
                pushed
            }
        };
        if n > 0 {
            self.completed.fetch_add(n as u64, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            self.ring_cq(); // one doorbell per burst (PR 3 contract)
        }
        n
    }

    /// Client side: reap one completion, idling forward to its production
    /// time and paying the transfer cost when it was produced in another
    /// domain.
    pub fn reap(&self, ctx: &mut Ctx, consumer_domain: u32) -> Option<Envelope<T>> {
        #[cfg(debug_assertions)]
        let _claim = self.claim(LaneRole::CqConsumer);
        // SAFETY: completions are reaped only by the owning client
        // connection (debug-checked by `_claim`).
        let mut env = unsafe { self.cq.pop() }?;
        ctx.idle_until(env.submit_vt);
        if env.origin_domain != consumer_domain {
            cost::cross_domain_hop(ctx);
        } else {
            cost::same_domain_hop(ctx);
        }
        env.dequeue_vt = ctx.now();
        Some(env)
    }

    /// Batched [`QueuePair::reap`]: drain up to `max` completions into
    /// `out` (appended, FIFO), one doorbell per batch, virtual-time
    /// charges per envelope — identical results to N single reaps.
    /// Returns the count reaped.
    pub fn reap_batch(
        &self,
        ctx: &mut Ctx,
        consumer_domain: u32,
        out: &mut Vec<Envelope<T>>,
        max: usize,
    ) -> usize {
        #[cfg(debug_assertions)]
        let _claim = self.claim(LaneRole::CqConsumer);
        let start = out.len();
        // SAFETY: same single-reaping-client contract as `reap`
        // (debug-checked by `_claim`).
        let n = unsafe { self.cq.pop_batch(out, max) };
        for env in out.iter_mut().skip(start) {
            ctx.idle_until(env.submit_vt);
            if env.origin_domain != consumer_domain {
                cost::cross_domain_hop(ctx);
            } else {
                cost::same_domain_hop(ctx);
            }
            env.dequeue_vt = ctx.now();
        }
        n
    }

    /// Number of submitted-but-unconsumed requests.
    pub fn sq_depth(&self) -> usize {
        self.sq.len()
    }

    /// Number of posted-but-unreaped completions.
    pub fn cq_depth(&self) -> usize {
        self.cq.len()
    }

    /// Total requests ever submitted.
    pub fn total_submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Total requests ever consumed by workers.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Total completions ever posted.
    pub fn total_completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    // ---- upgrade handshake ------------------------------------------------

    /// Current upgrade flag.
    pub fn upgrade_flag(&self) -> UpgradeFlag {
        match self.upgrade.load(Ordering::Acquire) {
            1 => UpgradeFlag::UpdatePending,
            2 => UpgradeFlag::UpdateAcked,
            _ => UpgradeFlag::None,
        }
    }

    /// Module Manager: request quiescence on this queue. Rings the SQ
    /// doorbell so a parked worker wakes to acknowledge.
    pub fn mark_update_pending(&self) {
        self.upgrade
            .store(UpgradeFlag::UpdatePending as u8, Ordering::Release);
        self.ring_sq();
    }

    /// Worker: acknowledge the pending update (pauses the queue).
    /// Returns false if no update was pending.
    pub fn ack_update(&self) -> bool {
        self.upgrade
            .compare_exchange(
                UpgradeFlag::UpdatePending as u8,
                UpgradeFlag::UpdateAcked as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Module Manager: resume the queue after the upgrade completes.
    /// Rings the SQ doorbell: requests may have accumulated while the
    /// queue was paused and a parked worker must resume the drain.
    pub fn clear_update(&self) {
        self.upgrade
            .store(UpgradeFlag::None as u8, Ordering::Release);
        self.ring_sq();
    }

    /// True while the queue must not be drained (update acked, upgrade in
    /// progress).
    pub fn is_paused(&self) -> bool {
        self.upgrade.load(Ordering::Acquire) == UpgradeFlag::UpdateAcked as u8
    }

    // ---- orchestrator load accounting --------------------------------------

    /// Add (or with a negative value, remove) estimated processing cost.
    pub fn add_load(&self, delta_ns: i64) {
        if delta_ns >= 0 {
            self.est_load_ns
                .fetch_add(delta_ns as u64, Ordering::Relaxed); // relaxed-ok: self-contained stat counter; CAS guards no other memory
        } else {
            let sub = (-delta_ns) as u64;
            let mut cur = self.est_load_ns.load(Ordering::Relaxed); // relaxed-ok: self-contained stat counter; CAS guards no other memory
            loop {
                let next = cur.saturating_sub(sub);
                match self.est_load_ns.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                    Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                ) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
        }
    }

    /// Estimated processing cost of currently queued requests, in ns.
    pub fn est_load_ns(&self) -> u64 {
        self.est_load_ns.load(Ordering::Relaxed) // relaxed-ok: self-contained stat counter; CAS guards no other memory
    }

    /// Record the estimated cost of one submitted item; keeps the
    /// maximum. The Work Orchestrator classifies queues as
    /// latency-sensitive or computational from this (paper §III-C4).
    pub fn note_item_est(&self, est_ns: u64) {
        let mut cur = self.max_item_ns.load(Ordering::Relaxed); // relaxed-ok: self-contained stat counter; CAS guards no other memory
        while est_ns > cur {
            match self.max_item_ns.compare_exchange_weak(
                cur,
                est_ns,
                Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
                Ordering::Relaxed, // relaxed-ok: ticket CAS orders nothing else; slot seq carries the ordering
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Maximum estimated single-item cost seen on this queue.
    pub fn max_item_ns(&self) -> u64 {
        self.max_item_ns.load(Ordering::Relaxed) // relaxed-ok: self-contained stat counter; CAS guards no other memory
    }

    /// Record `ns` of processing done for a request from this queue.
    pub fn record_work(&self, ns: u64) {
        self.work_done_ns.fetch_add(ns, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.item_hist.record(ns);
    }

    /// Batched [`QueuePair::record_work`]: one counter update for the
    /// batch total; per-item histogram records (quantiles need the
    /// individual values).
    pub fn record_work_batch(&self, per_item_ns: &[u64]) {
        let total: u64 = per_item_ns.iter().sum();
        if total > 0 {
            self.work_done_ns.fetch_add(total, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        }
        for &ns in per_item_ns {
            self.item_hist.record(ns);
        }
    }

    /// Cumulative processing time spent on this queue's requests.
    pub fn work_done_ns(&self) -> u64 {
        self.work_done_ns.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Recent average queue wait in ns.
    pub fn wait_ema_ns(&self) -> u64 {
        self.wait_ema_ns.load(Ordering::Relaxed) // relaxed-ok: single-writer EMA, approximate by design
    }

    /// Median measured per-item processing cost (0 until work is
    /// recorded).
    pub fn p50_item_ns(&self) -> u64 {
        self.item_hist.p50()
    }

    /// Tail (P99) measured per-item processing cost (0 until work is
    /// recorded).
    pub fn p99_item_ns(&self) -> u64 {
        self.item_hist.p99()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp() -> QueuePair<u32> {
        QueuePair::new(1, 8, QueueFlags::default())
    }

    fn qp_spsc() -> QueuePair<u32> {
        QueuePair::with_lane(1, 8, QueueFlags::default(), LaneKind::Spsc)
    }

    #[test]
    fn submit_consume_complete_reap() {
        for q in [qp(), qp_spsc()] {
            q.submit(7, 100, 1).unwrap();
            let mut worker = Ctx::new();
            let env = q.consume(&mut worker, 0).unwrap();
            assert_eq!(env.payload, 7);
            assert_eq!(env.origin_domain, 1);
            // Worker idled to submit time then paid the cross-domain hop.
            assert_eq!(worker.now(), 100 + cost::CROSS_DOMAIN_HOP_NS);
            assert_eq!(env.dequeue_vt, worker.now());
            q.complete(env.payload + 1, worker.now(), 0).unwrap();
            let mut client = Ctx::at(50);
            let done = q.reap(&mut client, 1).unwrap();
            assert_eq!(done.payload, 8);
            assert_eq!(client.now(), worker.now() + cost::CROSS_DOMAIN_HOP_NS);
            assert_eq!(done.dequeue_vt, client.now());
        }
    }

    #[test]
    fn same_domain_hop_is_cheap() {
        let q = qp();
        q.submit(1, 0, 0).unwrap();
        let mut ctx = Ctx::new();
        q.consume(&mut ctx, 0).unwrap();
        assert_eq!(ctx.now(), cost::SAME_DOMAIN_HOP_NS);
    }

    #[test]
    fn consumer_ahead_of_submit_does_not_rewind() {
        let q = qp();
        q.submit(1, 100, 1).unwrap();
        let mut worker = Ctx::at(500);
        q.consume(&mut worker, 0).unwrap();
        assert_eq!(worker.now(), 500 + cost::CROSS_DOMAIN_HOP_NS);
    }

    #[test]
    fn backpressure_when_full() {
        for q in [
            QueuePair::new(1, 2, QueueFlags::default()),
            QueuePair::with_lane(1, 2, QueueFlags::default(), LaneKind::Spsc),
        ] {
            q.submit(1, 0, 0).unwrap();
            q.submit(2, 0, 0).unwrap();
            assert_eq!(q.submit(3, 0, 0), Err(3));
            let mut ctx = Ctx::new();
            q.consume(&mut ctx, 0).unwrap();
            q.submit(3, 0, 0).unwrap();
        }
    }

    #[test]
    fn counters_track_flow() {
        let q = qp();
        q.submit(1, 0, 0).unwrap();
        q.submit(2, 0, 0).unwrap();
        assert_eq!(q.sq_depth(), 2);
        let mut ctx = Ctx::new();
        q.consume(&mut ctx, 0).unwrap();
        assert_eq!((q.total_submitted(), q.total_consumed()), (2, 1));
        q.complete(9, 0, 0).unwrap();
        assert_eq!((q.cq_depth(), q.total_completed()), (1, 1));
    }

    #[test]
    fn batch_verbs_roundtrip_both_lanes() {
        for q in [qp(), qp_spsc()] {
            let mut payloads: Vec<u32> = (0..5).collect();
            assert_eq!(q.submit_batch(&mut payloads, 100, 1), 5);
            assert!(payloads.is_empty());
            assert_eq!((q.total_submitted(), q.sq_depth()), (5, 5));

            let mut worker = Ctx::new();
            let mut inbox = Vec::new();
            assert_eq!(q.consume_batch(&mut worker, 0, &mut inbox, 8), 5);
            assert_eq!(q.total_consumed(), 5);
            let order: Vec<u32> = inbox.iter().map(|e| e.payload).collect();
            assert_eq!(order, vec![0, 1, 2, 3, 4]);
            // First envelope: idle to 100 then cross-domain hop; the rest
            // pay one hop each (already past their submit time).
            assert_eq!(worker.now(), 100 + 5 * cost::CROSS_DOMAIN_HOP_NS);
            assert_eq!(inbox[0].dequeue_vt, 100 + cost::CROSS_DOMAIN_HOP_NS);
            assert_eq!(inbox[4].dequeue_vt, worker.now());

            let mut completions: Vec<(u32, u64)> = inbox
                .iter()
                .map(|e| (e.payload + 10, e.dequeue_vt))
                .collect();
            assert_eq!(q.complete_batch(&mut completions, 0), 5);
            assert!(completions.is_empty());
            assert_eq!(q.total_completed(), 5);

            let mut client = Ctx::new();
            let mut done = Vec::new();
            assert_eq!(q.reap_batch(&mut client, 1, &mut done, 8), 5);
            let order: Vec<u32> = done.iter().map(|e| e.payload).collect();
            assert_eq!(order, vec![10, 11, 12, 13, 14]);
            // Per-completion production times survive the batch.
            assert_eq!(done[0].submit_vt, 100 + cost::CROSS_DOMAIN_HOP_NS);
        }
    }

    #[test]
    fn batch_submit_backpressure_keeps_leftovers_in_order() {
        for q in [
            QueuePair::new(1, 4, QueueFlags::default()),
            QueuePair::with_lane(1, 4, QueueFlags::default(), LaneKind::Spsc),
        ] {
            let mut payloads: Vec<u32> = (0..7).collect();
            assert_eq!(q.submit_batch(&mut payloads, 0, 0), 4);
            assert_eq!(payloads, vec![4, 5, 6]);
            let mut ctx = Ctx::new();
            let mut inbox = Vec::new();
            assert_eq!(q.consume_batch(&mut ctx, 0, &mut inbox, 2), 2);
            assert_eq!(q.submit_batch(&mut payloads, 0, 0), 2);
            assert_eq!(payloads, vec![6]);
            // FIFO across the partial batches.
            inbox.clear();
            q.consume_batch(&mut ctx, 0, &mut inbox, 16);
            let order: Vec<u32> = inbox.iter().map(|e| e.payload).collect();
            assert_eq!(order, vec![2, 3, 4, 5]);
        }
    }

    #[test]
    fn consume_batch_max_zero_is_noop() {
        let q = qp_spsc();
        q.submit(1, 0, 0).unwrap();
        let mut ctx = Ctx::new();
        let mut out = Vec::new();
        assert_eq!(q.consume_batch(&mut ctx, 0, &mut out, 0), 0);
        assert_eq!(ctx.now(), 0);
        assert_eq!(q.sq_depth(), 1);
    }

    #[test]
    fn spsc_lane_reports_kind_and_rounds_depth() {
        let q = QueuePair::<u32>::with_lane(9, 5, QueueFlags::default(), LaneKind::Spsc);
        assert_eq!(q.lane(), LaneKind::Spsc);
        // 5 rounds to 8.
        for i in 0..8 {
            q.submit(i, 0, 0).unwrap();
        }
        assert!(q.submit(9, 0, 0).is_err());
        assert_eq!(qp().lane(), LaneKind::Mpmc);
    }

    #[test]
    fn doorbells_ring_once_per_burst() {
        for q in [qp(), qp_spsc()] {
            let worker_bell = Arc::new(Doorbell::new());
            let client_bell = Arc::new(Doorbell::new());
            q.register_sq_bell(&worker_bell);
            q.register_cq_bell(&client_bell);
            let (sq0, cq0) = (worker_bell.epoch(), client_bell.epoch());

            // A 4-item burst rings the SQ bell exactly once.
            let mut payloads: Vec<u32> = (0..4).collect();
            assert_eq!(q.submit_batch(&mut payloads, 0, 0), 4);
            assert_eq!(worker_bell.epoch(), sq0 + 1);
            assert_eq!(client_bell.epoch(), cq0);

            // Singles ring once each.
            q.submit(9, 0, 0).unwrap();
            assert_eq!(worker_bell.epoch(), sq0 + 2);

            // Completions ring the CQ bell, once per burst.
            let mut ctx = Ctx::new();
            let mut inbox = Vec::new();
            q.consume_batch(&mut ctx, 0, &mut inbox, 8);
            let mut completions: Vec<(u32, u64)> =
                inbox.iter().map(|e| (e.payload, e.dequeue_vt)).collect();
            assert_eq!(q.complete_batch(&mut completions, 0), 5);
            assert_eq!(client_bell.epoch(), cq0 + 1);
            assert_eq!(worker_bell.epoch(), sq0 + 2);

            // Upgrade edges ring the SQ bell so a parked worker reacts.
            q.mark_update_pending();
            assert_eq!(worker_bell.epoch(), sq0 + 3);
            q.clear_update();
            assert_eq!(worker_bell.epoch(), sq0 + 4);
        }
    }

    #[test]
    fn failed_submit_does_not_ring() {
        let q = QueuePair::new(1, 2, QueueFlags::default());
        let bell = Arc::new(Doorbell::new());
        q.register_sq_bell(&bell);
        q.submit(1, 0, 0).unwrap();
        q.submit(2, 0, 0).unwrap();
        let e = bell.epoch();
        assert_eq!(q.submit(3, 0, 0), Err(3));
        assert_eq!(bell.epoch(), e, "a rejected submit must not ring");
    }

    #[test]
    fn upgrade_handshake() {
        let q = qp();
        assert_eq!(q.upgrade_flag(), UpgradeFlag::None);
        assert!(!q.ack_update()); // nothing pending
        q.mark_update_pending();
        assert_eq!(q.upgrade_flag(), UpgradeFlag::UpdatePending);
        assert!(q.ack_update());
        assert!(q.is_paused());
        q.clear_update();
        assert_eq!(q.upgrade_flag(), UpgradeFlag::None);
        assert!(!q.is_paused());
    }

    #[test]
    fn max_item_est_keeps_maximum() {
        let q = qp();
        q.note_item_est(500);
        q.note_item_est(200);
        q.note_item_est(900);
        assert_eq!(q.max_item_ns(), 900);
    }

    #[test]
    fn load_accounting_saturates_at_zero() {
        let q = qp();
        q.add_load(1000);
        q.add_load(-250);
        assert_eq!(q.est_load_ns(), 750);
        q.add_load(-10_000);
        assert_eq!(q.est_load_ns(), 0);
    }

    #[test]
    fn record_work_feeds_item_quantiles() {
        let q = qp();
        assert_eq!((q.p50_item_ns(), q.p99_item_ns()), (0, 0));
        for _ in 0..9 {
            q.record_work(1_000);
        }
        q.record_work(1_000_000);
        let p50 = q.p50_item_ns();
        assert!((1_000..1_100).contains(&p50), "p50 {p50}");
        assert!(q.p99_item_ns() >= 1_000_000);
        assert_eq!(q.work_done_ns(), 9_000 + 1_000_000);
    }

    #[test]
    fn record_work_batch_matches_singles() {
        let a = qp();
        let b = qp();
        for ns in [1_000u64, 2_000, 4_000] {
            a.record_work(ns);
        }
        b.record_work_batch(&[1_000, 2_000, 4_000]);
        assert_eq!(a.work_done_ns(), b.work_done_ns());
        assert_eq!(a.p50_item_ns(), b.p50_item_ns());
        assert_eq!(a.p99_item_ns(), b.p99_item_ns());
    }

    #[test]
    fn fifo_order_preserved() {
        for q in [
            QueuePair::new(1, 64, QueueFlags::default()),
            QueuePair::with_lane(1, 64, QueueFlags::default(), LaneKind::Spsc),
        ] {
            for i in 0..10 {
                q.submit(i, 0, 0).unwrap();
            }
            let mut ctx = Ctx::new();
            for i in 0..10 {
                assert_eq!(q.consume(&mut ctx, 0).unwrap().payload, i);
            }
        }
    }
}
