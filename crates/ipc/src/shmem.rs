//! Grant-based shared memory regions (the ShMemMod analog).
//!
//! The paper's ShMemMod allocates regions with `vmalloc` and maps them into
//! a user's address space with `remap_pfn_range` — but *only* for processes
//! the Runtime has granted access, "enabling both high-performance and
//! security, even among processes launched by the same user."
//!
//! Here a region is a byte arena; the grant discipline is identical:
//! [`ShmManager::attach`] fails unless the attaching pid has been granted,
//! and revocation invalidates future attaches (existing handles model
//! already-mapped pages, which in the real system also stay mapped).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::lockwitness::{OrderedRwLock, SHMEM_CHUNK};

/// Errors from the shared-memory manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmError {
    /// The region id is unknown.
    NoSuchRegion(u64),
    /// The pid has not been granted access to the region.
    NotGranted {
        /// Region id the attach targeted.
        region: u64,
        /// The pid lacking a grant.
        pid: u32,
    },
    /// Access beyond the region size.
    OutOfBounds {
        /// Region id.
        region: u64,
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// The region's size.
        size: usize,
    },
}

impl fmt::Display for ShmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmError::NoSuchRegion(id) => write!(f, "no shared-memory region {id}"),
            ShmError::NotGranted { region, pid } => {
                write!(f, "pid {pid} has no grant for region {region}")
            }
            ShmError::OutOfBounds {
                region,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) beyond region {region} size {size}"
            ),
        }
    }
}

impl std::error::Error for ShmError {}

/// Regions are split into independently locked chunks of this many bytes
/// so concurrent buffer fills at different offsets don't serialize on one
/// region-wide lock.
const CHUNK_BYTES: usize = 4096;

struct Region {
    /// Independently locked fixed-size chunks; the last chunk may be
    /// short. A region-spanning access acquires every chunk it touches up
    /// front, in ascending index order (consistent order ⇒ no lock
    /// cycles), and holds them all for the duration of the copy so a
    /// multi-chunk write stays atomic with respect to a concurrent read
    /// of the same span — the same guarantee the old region-wide RwLock
    /// gave, without serializing accesses to disjoint chunks.
    chunks: Box<[OrderedRwLock<Box<[u8]>>]>,
    size: usize,
    grants: RwLock<HashSet<u32>>,
}

impl Region {
    fn with_size(size: usize) -> Self {
        let nchunks = size.div_ceil(CHUNK_BYTES).max(1);
        let chunks: Box<[OrderedRwLock<Box<[u8]>>]> = (0..nchunks)
            .map(|i| {
                let len = (size - (i * CHUNK_BYTES).min(size)).min(CHUNK_BYTES);
                OrderedRwLock::new(&SHMEM_CHUNK, vec![0u8; len].into_boxed_slice())
            })
            .collect();
        Region {
            chunks,
            size,
            grants: RwLock::new(HashSet::new()),
        }
    }
}

/// A mapped view of a granted region.
///
/// Cloning is cheap (the mapping is shared); reads and writes go straight
/// to the region bytes.
#[derive(Clone)]
pub struct ShmRegionHandle {
    id: u64,
    region: Arc<Region>,
}

impl ShmRegionHandle {
    /// Region id this handle maps.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.region.size
    }

    /// True for a zero-sized region.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bounds_check(&self, offset: usize, len: usize) -> Result<(), ShmError> {
        offset
            .checked_add(len)
            .filter(|&e| e <= self.region.size)
            .map(|_| ())
            .ok_or(ShmError::OutOfBounds {
                region: self.id,
                offset,
                len,
                size: self.region.size,
            })
    }

    /// Indices of the chunks a `[offset, offset+len)` span touches.
    /// Caller guarantees `len > 0` and the span is in bounds.
    fn chunk_range(offset: usize, len: usize) -> std::ops::RangeInclusive<usize> {
        (offset / CHUNK_BYTES)..=((offset + len - 1) / CHUNK_BYTES)
    }

    /// Copy bytes out of the region. Locks only the chunks the span
    /// touches (all up front, ascending, held for the whole copy), so
    /// fills of disjoint buffers proceed in parallel while a read of a
    /// multi-chunk span never observes a torn concurrent write.
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<(), ShmError> {
        self.bounds_check(offset, buf.len())?;
        if buf.is_empty() {
            return Ok(());
        }
        let range = Self::chunk_range(offset, buf.len());
        let first = *range.start();
        let guards: Vec<_> = range.map(|i| self.region.chunks[i].read()).collect(); // lock-class: shmem.chunk
        let mut pos = offset;
        let mut copied = 0;
        while copied < buf.len() {
            let chunk_idx = pos / CHUNK_BYTES;
            let chunk_off = pos % CHUNK_BYTES;
            let data = &guards[chunk_idx - first];
            let n = (data.len() - chunk_off).min(buf.len() - copied);
            buf[copied..copied + n].copy_from_slice(&data[chunk_off..chunk_off + n]);
            pos += n;
            copied += n;
        }
        Ok(())
    }

    /// Copy bytes into the region. Same locking discipline as
    /// [`ShmRegionHandle::read`]: every touched chunk is write-locked up
    /// front in ascending order and held until the whole span is copied,
    /// so the write is atomic with respect to concurrent readers.
    pub fn write(&self, offset: usize, buf: &[u8]) -> Result<(), ShmError> {
        self.bounds_check(offset, buf.len())?;
        if buf.is_empty() {
            return Ok(());
        }
        let range = Self::chunk_range(offset, buf.len());
        let first = *range.start();
        let mut guards: Vec<_> = range.map(|i| self.region.chunks[i].write()).collect(); // lock-class: shmem.chunk
        let mut pos = offset;
        let mut copied = 0;
        while copied < buf.len() {
            let chunk_idx = pos / CHUNK_BYTES;
            let chunk_off = pos % CHUNK_BYTES;
            let data = &mut guards[chunk_idx - first];
            let n = (data.len() - chunk_off).min(buf.len() - copied);
            data[chunk_off..chunk_off + n].copy_from_slice(&buf[copied..copied + n]);
            pos += n;
            copied += n;
        }
        Ok(())
    }
}

/// The Runtime-owned shared memory manager.
#[derive(Default)]
pub struct ShmManager {
    regions: RwLock<HashMap<u64, Arc<Region>>>,
    next_id: RwLock<u64>,
}

impl ShmManager {
    /// Create an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a region of `size` bytes, owned by (and granted to)
    /// `owner_pid`. Returns the region id.
    pub fn create_region(&self, size: usize, owner_pid: u32) -> u64 {
        let mut next = self.next_id.write(); // lock-class: shmem.ids
        let id = *next;
        *next += 1;
        let region = Arc::new(Region::with_size(size));
        region.grants.write().insert(owner_pid); // lock-class: shmem.grants
        self.regions.write().insert(id, region); // lock-class: shmem.grants
        id
    }

    /// Grant `pid` the right to attach `region`.
    pub fn grant(&self, region: u64, pid: u32) -> Result<(), ShmError> {
        let regions = self.regions.read(); // lock-class: shmem.regions
        let r = regions.get(&region).ok_or(ShmError::NoSuchRegion(region))?;
        r.grants.write().insert(pid); // lock-class: shmem.grants
        Ok(())
    }

    /// Revoke `pid`'s grant. Existing handles stay valid (pages already
    /// mapped), future attaches fail.
    pub fn revoke(&self, region: u64, pid: u32) -> Result<(), ShmError> {
        let regions = self.regions.read(); // lock-class: shmem.regions
        let r = regions.get(&region).ok_or(ShmError::NoSuchRegion(region))?;
        r.grants.write().remove(&pid); // lock-class: shmem.grants
        Ok(())
    }

    /// Map the region into `pid`'s address space.
    pub fn attach(&self, region: u64, pid: u32) -> Result<ShmRegionHandle, ShmError> {
        let regions = self.regions.read(); // lock-class: shmem.regions
        let r = regions.get(&region).ok_or(ShmError::NoSuchRegion(region))?;
        // lock-class: shmem.grants
        if !r.grants.read().contains(&pid) {
            return Err(ShmError::NotGranted { region, pid });
        }
        Ok(ShmRegionHandle {
            id: region,
            region: r.clone(),
        })
    }

    /// Destroy a region. Outstanding handles keep the memory alive but the
    /// id becomes invalid.
    pub fn destroy(&self, region: u64) -> Result<(), ShmError> {
        self.regions
            .write() // lock-class: shmem.regions
            .remove(&region)
            .map(|_| ())
            .ok_or(ShmError::NoSuchRegion(region))
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.regions.read().len() // lock-class: shmem.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_can_attach_and_rw() {
        let m = ShmManager::new();
        let id = m.create_region(64, 100);
        let h = m.attach(id, 100).unwrap();
        h.write(10, b"abc").unwrap();
        let mut out = [0u8; 3];
        h.read(10, &mut out).unwrap();
        assert_eq!(&out, b"abc");
    }

    #[test]
    fn ungranted_pid_rejected() {
        let m = ShmManager::new();
        let id = m.create_region(64, 100);
        match m.attach(id, 200) {
            Err(ShmError::NotGranted { region, pid }) => {
                assert_eq!((region, pid), (id, 200));
            }
            other => panic!("expected NotGranted, got {:?}", other.err()),
        }
    }

    #[test]
    fn grant_then_attach() {
        let m = ShmManager::new();
        let id = m.create_region(64, 100);
        m.grant(id, 200).unwrap();
        assert!(m.attach(id, 200).is_ok());
    }

    #[test]
    fn revoke_blocks_future_attach_not_existing_handle() {
        let m = ShmManager::new();
        let id = m.create_region(64, 100);
        m.grant(id, 200).unwrap();
        let h = m.attach(id, 200).unwrap();
        m.revoke(id, 200).unwrap();
        assert!(m.attach(id, 200).is_err());
        // Already-mapped handle still works.
        h.write(0, &[1]).unwrap();
    }

    #[test]
    fn oob_access_rejected() {
        let m = ShmManager::new();
        let id = m.create_region(16, 1);
        let h = m.attach(id, 1).unwrap();
        assert!(h.write(10, &[0u8; 10]).is_err());
        let mut buf = [0u8; 20];
        assert!(h.read(0, &mut buf).is_err());
    }

    #[test]
    fn destroy_invalidates_id_keeps_memory() {
        let m = ShmManager::new();
        let id = m.create_region(16, 1);
        let h = m.attach(id, 1).unwrap();
        m.destroy(id).unwrap();
        assert!(m.attach(id, 1).is_err());
        assert_eq!(m.region_count(), 0);
        h.write(0, &[7]).unwrap(); // handle-held memory survives
    }

    #[test]
    fn rw_spans_chunk_boundaries() {
        let m = ShmManager::new();
        let id = m.create_region(3 * CHUNK_BYTES + 100, 1);
        let h = m.attach(id, 1).unwrap();
        assert_eq!(h.len(), 3 * CHUNK_BYTES + 100);
        // A write straddling chunks 0..=3, ending in the short tail chunk.
        let pattern: Vec<u8> = (0..(2 * CHUNK_BYTES + 150))
            .map(|i| (i % 251) as u8)
            .collect();
        let start = CHUNK_BYTES - 50;
        h.write(start, &pattern).unwrap();
        let mut out = vec![0u8; pattern.len()];
        h.read(start, &mut out).unwrap();
        assert_eq!(out, pattern);
        // Tail-exact write; one past it fails.
        h.write(3 * CHUNK_BYTES + 99, &[7]).unwrap();
        assert!(h.write(3 * CHUNK_BYTES + 100, &[7]).is_err());
    }

    #[test]
    fn multi_chunk_write_is_atomic_wrt_concurrent_read() {
        // Regression: chunk locks used to be taken and released one chunk
        // at a time, so a reader could see half-old, half-new bytes of a
        // write spanning the chunk boundary.
        let m = ShmManager::new();
        let id = m.create_region(2 * CHUNK_BYTES, 1);
        let writer = m.attach(id, 1).unwrap();
        let reader = m.attach(id, 1).unwrap();
        let off = CHUNK_BYTES / 2; // span straddles chunks 0 and 1
        let span = CHUNK_BYTES;
        writer.write(off, &vec![0u8; span]).unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..400u32 {
                    writer.write(off, &vec![(i % 2) as u8; span]).unwrap();
                }
            });
            s.spawn(move || {
                let mut buf = vec![0u8; span];
                for _ in 0..400 {
                    reader.read(off, &mut buf).unwrap();
                    let first = buf[0];
                    assert!(
                        buf.iter().all(|&b| b == first),
                        "torn read across the chunk boundary"
                    );
                }
            });
        });
    }

    #[test]
    fn handles_share_the_same_bytes() {
        let m = ShmManager::new();
        let id = m.create_region(8, 1);
        m.grant(id, 2).unwrap();
        let a = m.attach(id, 1).unwrap();
        let b = m.attach(id, 2).unwrap();
        a.write(0, &[42]).unwrap();
        let mut out = [0u8; 1];
        b.read(0, &mut out).unwrap();
        assert_eq!(out[0], 42);
    }
}
