//! Runtime lock-order witness: `OrderedMutex`/`OrderedRwLock` wrappers
//! that enforce the workspace lock-class discipline dynamically.
//!
//! Every lock is tagged with a static [`LockClass`] drawn from the same
//! registry labcheck's `lock-order` lint declares (`labcheck::lint::
//! Config::labstor`, DESIGN.md §"Lock classes & ordering"): classes must
//! be acquired in ascending rank, a non-`nest_within` class may never be
//! held twice by one thread, and `nest_within` classes (the sharded chunk
//! locks) may only nest in ascending instance-address order.
//!
//! In debug builds each thread keeps a stack of held classes; a violating
//! acquisition panics *before blocking* with both backtraces (the held
//! lock's acquisition site and the violating one), turning a potential
//! deadlock — which the PR 5 pool-dry page-cache write shipped as — into
//! an immediate, attributable test failure. In release builds the
//! wrappers compile down to the plain `parking_lot` primitives: no
//! thread-local, no branch, so the BENCH gates measure the real thing.

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// One equivalence class of locks in the workspace-wide partial order.
///
/// `rank` mirrors the static registry in `labcheck`; the
/// `lock_registry_matches_labcheck` test keeps the two in sync.
#[derive(Debug)]
pub struct LockClass {
    /// Registry name, e.g. `pagecache.shard`.
    pub name: &'static str,
    /// Position in the global acquisition order (acquire ascending).
    pub rank: u16,
    /// Whether two instances of this class may nest (ascending instance
    /// address only) — the sharded chunk-lock pattern.
    pub nest_within: bool,
}

/// Tenant policy/accounting table (`labstor_qos::TenantTable`). Acquired
/// after the Runtime's rebalance locks (ranks 10–34) during the
/// weighted-fair pass, and must be released before any pool or page-cache
/// lock is taken — shed attribution in the pool-dry path runs on atomics,
/// never back into the table.
pub static TENANT_TABLE: LockClass = LockClass {
    name: "qos.tenants",
    rank: 36,
    nest_within: false,
};

/// Per-tenant token-bucket state. Nests inside a `qos.tenants` read hold
/// (admission resolves the tenant, then charges its bucket) and is a leaf
/// with respect to the data-path locks below.
pub static TENANT_BUCKET: LockClass = LockClass {
    name: "qos.bucket",
    rank: 38,
    nest_within: false,
};

/// Page-cache shard locks (`PageCache` LRU shards).
pub static PAGECACHE_SHARD: LockClass = LockClass {
    name: "pagecache.shard",
    rank: 70,
    nest_within: false,
};

/// Shared-memory region chunk locks (acquired ascending for multi-chunk
/// transfers).
pub static SHMEM_CHUNK: LockClass = LockClass {
    name: "shmem.chunk",
    rank: 78,
    nest_within: true,
};

/// Buffer-pool debug handle tracker (leaf: nothing nests inside it).
pub static POOL_TRACKER: LockClass = LockClass {
    name: "pool.tracker",
    rank: 90,
    nest_within: false,
};

#[cfg(debug_assertions)]
mod witness {
    use super::LockClass;
    use std::backtrace::Backtrace;
    use std::cell::RefCell;

    struct Held {
        class: &'static LockClass,
        addr: usize,
        acquired_at: Backtrace,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Check `class`/`addr` against everything this thread holds, then
    /// record it. Runs *before* the underlying lock call so a violation
    /// panics instead of deadlocking.
    pub(super) fn enter(class: &'static LockClass, addr: usize) {
        HELD.with(|cell| {
            let held = cell.borrow();
            for h in held.iter() {
                if h.addr == addr {
                    die(
                        "self-deadlock: re-acquiring a lock this thread already holds",
                        class,
                        addr,
                        h,
                    );
                }
                if std::ptr::eq(h.class, class) {
                    if !class.nest_within {
                        die(
                            "lock-reentry: second acquisition of a non-reentrant class",
                            class,
                            addr,
                            h,
                        );
                    }
                    if addr < h.addr {
                        die(
                            "lock-order: same-class nesting must acquire instances in \
                             ascending address order",
                            class,
                            addr,
                            h,
                        );
                    }
                } else if class.rank <= h.class.rank {
                    die(
                        "lock-order: acquiring a class at or below a held class's rank",
                        class,
                        addr,
                        h,
                    );
                }
            }
            drop(held);
            cell.borrow_mut().push(Held {
                class,
                addr,
                acquired_at: Backtrace::capture(),
            });
        });
    }

    /// Remove the entry for `addr`. Searched by token rather than popped
    /// so guards dropped out of acquisition order stay correct.
    pub(super) fn exit(addr: usize) {
        HELD.with(|cell| {
            let mut held = cell.borrow_mut();
            if let Some(i) = held.iter().rposition(|h| h.addr == addr) {
                held.remove(i);
            }
        });
    }

    fn die(kind: &str, acquiring: &'static LockClass, addr: usize, conflict: &Held) -> ! {
        panic!(
            "lockwitness: {kind}\n  \
             acquiring `{}` (rank {}, instance {:#x})\n  \
             conflicts with held `{}` (rank {}, instance {:#x})\n\
             held lock acquired at:\n{}\n\
             violating acquisition at:\n{}",
            acquiring.name,
            acquiring.rank,
            addr,
            conflict.class.name,
            conflict.class.rank,
            conflict.addr,
            conflict.acquired_at,
            Backtrace::capture(),
        );
    }

    /// Guard-held token: its drop releases the witness entry.
    pub(super) struct Token(usize);

    impl Token {
        pub(super) fn acquire(class: &'static LockClass, addr: usize) -> Token {
            enter(class, addr);
            Token(addr)
        }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            exit(self.0);
        }
    }
}

/// A [`parking_lot::Mutex`] tagged with a [`LockClass`] and checked by the
/// debug-build witness.
pub struct OrderedMutex<T: ?Sized> {
    class: &'static LockClass,
    inner: Mutex<T>,
}

/// Guard for [`OrderedMutex::lock`]; releases the witness entry on drop.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    // Field order matters: the lock must be released before the witness
    // entry, so a contending thread never observes entry-without-lock.
    inner: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: witness::Token,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` in a mutex belonging to `class`.
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        OrderedMutex {
            class,
            inner: Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// Acquire, checking this thread's held classes first (debug builds).
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = witness::Token::acquire(self.class, self.addr());
        OrderedMutexGuard {
            inner: self.inner.lock(), // lock-class: (caller)
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// The class this lock was declared under.
    pub fn class(&self) -> &'static LockClass {
        self.class
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    #[cfg(debug_assertions)]
    fn addr(&self) -> usize {
        self as *const Self as *const u8 as usize
    }
}

impl<T: ?Sized> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("class", &self.class.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// A [`parking_lot::RwLock`] tagged with a [`LockClass`] and checked by
/// the debug-build witness. Readers and writers are witnessed alike: a
/// recursive read can still deadlock behind a queued writer, so the
/// discipline treats every acquisition the same way.
pub struct OrderedRwLock<T: ?Sized> {
    class: &'static LockClass,
    inner: RwLock<T>,
}

/// Guard for [`OrderedRwLock::read`].
pub struct OrderedReadGuard<'a, T: ?Sized> {
    inner: RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: witness::Token,
}

/// Guard for [`OrderedRwLock::write`].
pub struct OrderedWriteGuard<'a, T: ?Sized> {
    inner: RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: witness::Token,
}

impl<T> OrderedRwLock<T> {
    /// Wrap `value` in an rwlock belonging to `class`.
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        OrderedRwLock {
            class,
            inner: RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// Shared acquire, witness-checked in debug builds.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = witness::Token::acquire(self.class, self.addr());
        OrderedReadGuard {
            inner: self.inner.read(), // lock-class: (caller)
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// Exclusive acquire, witness-checked in debug builds.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = witness::Token::acquire(self.class, self.addr());
        OrderedWriteGuard {
            inner: self.inner.write(), // lock-class: (caller)
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    /// The class this lock was declared under.
    pub fn class(&self) -> &'static LockClass {
        self.class
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    #[cfg(debug_assertions)]
    fn addr(&self) -> usize {
        self as *const Self as *const u8 as usize
    }
}

impl<T: ?Sized> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("class", &self.class.name)
            .field("inner", &self.inner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The witness only exists in debug builds; every panic-expecting test
    // is gated so `--release` test runs (where the wrappers are plain
    // parking_lot) don't hang or spuriously fail.

    fn catch(f: impl FnOnce() + Send + 'static) -> Option<String> {
        std::thread::spawn(f)
            .join()
            .err()
            .map(|e| match e.downcast::<String>() {
                Ok(s) => *s,
                Err(e) => e
                    .downcast::<&'static str>()
                    .map(|s| s.to_string())
                    .unwrap_or_default(),
            })
    }

    #[test]
    #[cfg(debug_assertions)]
    fn self_reentry_panics_instead_of_deadlocking() {
        let msg = catch(|| {
            let m = OrderedMutex::new(&PAGECACHE_SHARD, 0u32);
            let _a = m.lock();
            let _b = m.lock(); // would deadlock without the witness
        })
        .expect("witness should panic");
        assert!(msg.contains("self-deadlock"), "{msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn same_class_reentry_on_nonreentrant_class_panics() {
        let msg = catch(|| {
            let a = OrderedMutex::new(&PAGECACHE_SHARD, 0u32);
            let b = OrderedMutex::new(&PAGECACHE_SHARD, 0u32);
            let _a = a.lock();
            let _b = b.lock();
        })
        .expect("witness should panic");
        assert!(msg.contains("lock-reentry"), "{msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn rank_inversion_panics_with_both_sites() {
        let msg = catch(|| {
            let chunk = OrderedRwLock::new(&SHMEM_CHUNK, ());
            let shard = OrderedMutex::new(&PAGECACHE_SHARD, ());
            let _c = chunk.read(); // rank 78
            let _s = shard.lock(); // rank 70: descending
        })
        .expect("witness should panic");
        assert!(msg.contains("lock-order"), "{msg}");
        assert!(msg.contains("pagecache.shard"), "{msg}");
        assert!(msg.contains("shmem.chunk"), "{msg}");
        assert!(msg.contains("held lock acquired at"), "{msg}");
        assert!(msg.contains("violating acquisition at"), "{msg}");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn descending_chunk_instances_panic() {
        let msg = catch(|| {
            let chunks: Vec<_> = (0..3)
                .map(|_| OrderedRwLock::new(&SHMEM_CHUNK, ()))
                .collect();
            let _b = chunks[1].read();
            let _a = chunks[0].read(); // descending instance
        })
        .expect("witness should panic");
        assert!(msg.contains("ascending address order"), "{msg}");
    }

    #[test]
    fn ascending_chunk_sweep_is_clean() {
        // The fixed PR 5 multi-chunk protocol: ascending up-front
        // acquisition, then release all.
        let chunks: Vec<_> = (0..4)
            .map(|_| OrderedRwLock::new(&SHMEM_CHUNK, ()))
            .collect();
        let guards: Vec<_> = chunks.iter().map(|c| c.read()).collect();
        drop(guards);
        let _w = chunks[2].write();
    }

    #[test]
    fn ascending_ranks_are_clean() {
        let shard = OrderedMutex::new(&PAGECACHE_SHARD, ());
        let chunk = OrderedRwLock::new(&SHMEM_CHUNK, ());
        let tracker = OrderedMutex::new(&POOL_TRACKER, ());
        let _s = shard.lock();
        let _c = chunk.write();
        let _t = tracker.lock();
    }

    #[test]
    fn non_lifo_guard_drop_releases_the_right_entry() {
        let shard = OrderedMutex::new(&PAGECACHE_SHARD, ());
        let tracker = OrderedMutex::new(&POOL_TRACKER, ());
        let s = shard.lock();
        let t = tracker.lock();
        drop(s); // out of acquisition order
        drop(t);
        // Both entries gone: a fresh ascending sequence is clean.
        let _s = shard.lock();
        let _t = tracker.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    fn planted_inversion_across_threads_is_caught() {
        // Two threads taking pagecache.shard and shmem.chunk in opposite
        // orders: the classic ABBA deadlock. The witness catches the
        // descending thread deterministically, on every schedule, without
        // needing the timing to actually deadlock.
        use std::sync::Arc;
        let shard = Arc::new(OrderedMutex::new(&PAGECACHE_SHARD, ()));
        let chunk = Arc::new(OrderedRwLock::new(&SHMEM_CHUNK, ()));

        let (s1, c1) = (shard.clone(), chunk.clone());
        let good = std::thread::spawn(move || {
            let _s = s1.lock();
            let _c = c1.read();
        });
        assert!(good.join().is_ok());

        let msg = catch(move || {
            let _c = chunk.read();
            let _s = shard.lock();
        })
        .expect("witness should panic on the inverted thread");
        assert!(msg.contains("lock-order"), "{msg}");
    }
}
