//! Calibrated IPC cost model.
//!
//! The paper's Fig. 4a attributes 8.4% of a ~17 µs 4 KB write to IPC:
//! "since the Runtime is on a separate core, the request needs to be
//! fetched from another core's cache or directly from DRAM". Our queue
//! operations are real, but the *time* they would take on the testbed —
//! a cross-core cache-line bounce of the request descriptor — is charged
//! to the consuming actor's virtual clock.

use labstor_sim::Ctx;

/// Cost of transferring a request descriptor to another core's cache
/// (one direction). Two hops per request/response round trip lands IPC at
/// ≈1.2 µs, the paper's 8.4% share of a ~15 µs 4 KB write.
pub const CROSS_DOMAIN_HOP_NS: u64 = 600;

/// Cost of handing a request to a LabMod in the *same* address space
/// (a function call through the registry) — negligible but nonzero.
pub const SAME_DOMAIN_HOP_NS: u64 = 20;

/// Charge the cross-domain transfer cost to `ctx`.
pub fn cross_domain_hop(ctx: &mut Ctx) {
    ctx.advance(CROSS_DOMAIN_HOP_NS);
}

/// Charge the same-domain hand-off cost to `ctx`.
pub fn same_domain_hop(ctx: &mut Ctx) {
    ctx.advance(SAME_DOMAIN_HOP_NS);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hops_charge_the_clock() {
        let mut ctx = Ctx::new();
        cross_domain_hop(&mut ctx);
        assert_eq!(ctx.now(), CROSS_DOMAIN_HOP_NS);
        same_domain_hop(&mut ctx);
        assert_eq!(ctx.now(), CROSS_DOMAIN_HOP_NS + SAME_DOMAIN_HOP_NS);
    }

    #[test]
    fn cross_domain_costs_more() {
        const _: () = assert!(CROSS_DOMAIN_HOP_NS > SAME_DOMAIN_HOP_NS);
    }
}
