//! Randomized property test for the runtime lock witness: any sequence of
//! acquisitions that *respects* the declared discipline — ascending class
//! rank, ascending instance order within the `nest_within` chunk class —
//! never trips the witness, no matter which subset is taken, how deeply
//! rounds repeat, or in which order guards are dropped (non-LIFO drops
//! must release the right held entry, not a random one).

use proptest::prelude::*;

use labstor_ipc::lockwitness::{
    OrderedMutex, OrderedRwLock, PAGECACHE_SHARD, POOL_TRACKER, SHMEM_CHUNK,
};

const CHUNKS: usize = 5;

/// One round of a well-ordered program: which locks to take (the chunk
/// mask is walked ascending) and a seed shuffling the drop order.
#[derive(Debug, Clone)]
struct Round {
    take_shard: bool,
    chunk_mask: u8,
    chunk_writes: u8,
    take_tracker: bool,
    drop_seed: u64,
}

fn round_strategy() -> impl Strategy<Value = Round> {
    (
        any::<bool>(),
        0u8..(1 << CHUNKS),
        any::<u8>(),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(take_shard, chunk_mask, chunk_writes, take_tracker, drop_seed)| Round {
                take_shard,
                chunk_mask,
                chunk_writes,
                take_tracker,
                drop_seed,
            },
        )
}

enum Guard<'a> {
    Shard(#[allow(dead_code)] labstor_ipc::lockwitness::OrderedMutexGuard<'a, u32>),
    Read(#[allow(dead_code)] labstor_ipc::lockwitness::OrderedReadGuard<'a, u32>),
    Write(#[allow(dead_code)] labstor_ipc::lockwitness::OrderedWriteGuard<'a, u32>),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Well-ordered rounds never panic: acquire shard (70), then touched
    /// chunks ascending (78, nest_within), then the tracker (90); release
    /// everything in a shuffled order between rounds.
    #[test]
    fn well_ordered_sequences_never_trip_the_witness(
        rounds in proptest::collection::vec(round_strategy(), 1..24),
    ) {
        let shard = OrderedMutex::new(&PAGECACHE_SHARD, 0u32);
        let chunks: Vec<_> = (0..CHUNKS)
            .map(|_| OrderedRwLock::new(&SHMEM_CHUNK, 0u32))
            .collect();
        let tracker = OrderedMutex::new(&POOL_TRACKER, 0u32);

        for round in rounds {
            let mut guards: Vec<Guard> = Vec::new();
            if round.take_shard {
                guards.push(Guard::Shard(shard.lock()));
            }
            for (i, chunk) in chunks.iter().enumerate() {
                if round.chunk_mask & (1 << i) != 0 {
                    if round.chunk_writes & (1 << i) != 0 {
                        guards.push(Guard::Write(chunk.write()));
                    } else {
                        guards.push(Guard::Read(chunk.read()));
                    }
                }
            }
            if round.take_tracker {
                guards.push(Guard::Shard(tracker.lock()));
            }
            // Shuffled (possibly non-LIFO) release via a tiny LCG.
            let mut seed = round.drop_seed;
            while !guards.is_empty() {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let i = (seed >> 33) as usize % guards.len();
                guards.swap_remove(i);
            }
        }
        // Every entry released: a full ascending pass is still clean.
        let _s = shard.lock();
        let _c: Vec<_> = chunks.iter().map(|c| c.read()).collect();
        let _t = tracker.lock();
    }
}
