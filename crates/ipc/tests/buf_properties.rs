//! Randomized property tests for the shared-memory buffer pool: random
//! alloc/clone/slice/drop interleavings never leak a slot, never alias two
//! live *allocations* onto overlapping bytes, and return each slot to the
//! free list exactly once (the debug tracker panics on a double free).

use proptest::prelude::*;

use labstor_ipc::{BufHandle, BufferPool, PoolConfig};

/// A scripted action over a growing set of live handles. Indices are taken
/// modulo the live count so any byte script is a valid program.
#[derive(Debug, Clone)]
enum Action {
    Alloc(usize),
    CloneOf(usize),
    SliceOf(usize, usize, usize),
    Drop(usize),
    Fill(usize, u8),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1usize..300).prop_map(Action::Alloc),
        (0usize..64).prop_map(Action::CloneOf),
        (0usize..64, 0usize..300, 0usize..300).prop_map(|(i, o, l)| Action::SliceOf(i, o, l)),
        (0usize..64).prop_map(Action::Drop),
        (0usize..64, 0u8..255).prop_map(|(i, v)| Action::Fill(i, v)),
    ]
}

fn pool() -> BufferPool {
    BufferPool::new(PoolConfig {
        classes: vec![(64, 6), (256, 3)],
    })
}

/// Each live entry remembers which allocation (slot lineage) it came from
/// so the aliasing check can tell slices (legal overlap) from distinct
/// allocations (must never overlap).
struct Live {
    handle: BufHandle,
    lineage: usize,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of alloc/clone/slice/fill/drop keeps the pool
    /// consistent: live count matches our model, distinct allocations
    /// never overlap, and after dropping everything the pool drains back
    /// to zero live slots (no leak, and the debug tracker would have
    /// panicked on any double free).
    #[test]
    fn interleavings_never_leak_or_alias(
        script in proptest::collection::vec(action_strategy(), 1..120),
    ) {
        let pool = pool();
        let mut live: Vec<Live> = Vec::new();
        let mut next_lineage = 0usize;

        for act in script {
            match act {
                Action::Alloc(len) => {
                    if let Some(h) = pool.alloc(len) {
                        prop_assert!(h.is_unique());
                        live.push(Live { handle: h, lineage: next_lineage });
                        next_lineage += 1;
                    }
                }
                Action::CloneOf(i) => {
                    if !live.is_empty() {
                        let i = i % live.len();
                        let dup = live[i].handle.clone();
                        let lineage = live[i].lineage;
                        live.push(Live { handle: dup, lineage });
                    }
                }
                Action::SliceOf(i, off, len) => {
                    if !live.is_empty() {
                        let i = i % live.len();
                        if let Some(s) = live[i].handle.slice(off, len) {
                            prop_assert!(len == 0 || s.same_slot(&live[i].handle));
                            let lineage = live[i].lineage;
                            live.push(Live { handle: s, lineage });
                        } else {
                            prop_assert!(off + len > live[i].handle.len());
                        }
                    }
                }
                Action::Drop(i) => {
                    if !live.is_empty() {
                        let i = i % live.len();
                        live.swap_remove(i);
                    }
                }
                Action::Fill(i, v) => {
                    if !live.is_empty() {
                        let i = i % live.len();
                        let unique = live[i].handle.is_unique();
                        let len = live[i].handle.len();
                        let wrote = live[i].handle.write_with(|b| b.fill(v));
                        // Mutation succeeds iff the handle was unique.
                        prop_assert_eq!(wrote, unique);
                        if wrote && len > 0 {
                            prop_assert!(live[i].handle.as_slice().iter().all(|&b| b == v));
                        }
                    }
                }
            }

            // Distinct allocations must never alias overlapping bytes.
            for (a_idx, a) in live.iter().enumerate() {
                for b in &live[a_idx + 1..] {
                    if a.lineage != b.lineage {
                        prop_assert!(
                            !a.handle.overlaps(&b.handle),
                            "allocations {} and {} alias", a.lineage, b.lineage
                        );
                    }
                }
            }

            // The pool's live-slot count matches the distinct slots we hold.
            let mut slots: Vec<(u64, usize)> = Vec::new();
            for l in &live {
                let key = (l.handle.region(), l.handle.offset() - offset_in_view(&l.handle));
                if !slots.contains(&key) {
                    slots.push(key);
                }
            }
            prop_assert_eq!(pool.live() as usize, slots.len());
        }

        let peak = pool.high_water();
        live.clear();
        prop_assert_eq!(pool.live(), 0);
        prop_assert!(peak <= 9, "high water {} exceeds total slots", peak);
    }
}

/// Offset of the view inside its slot (so two views of one slot map to the
/// same slot key). Derived from the public API: a full-slot view of class
/// c starts at a multiple of the class buffer size.
fn offset_in_view(h: &BufHandle) -> usize {
    let class_size = match h.region() {
        0 => 64,
        _ => 256,
    };
    h.offset() % class_size
}

/// Dropping the last of many clones frees the slot exactly once: the slot
/// becomes reallocatable, and the debug tracker (which panics on a second
/// free) stays silent.
#[test]
fn drop_to_zero_frees_exactly_once() {
    let pool = BufferPool::new(PoolConfig {
        classes: vec![(64, 1)],
    });
    let h = pool.alloc(64).unwrap();
    let clones: Vec<_> = (0..10).map(|_| h.clone()).collect();
    assert!(pool.alloc(64).is_none(), "sole slot is held");
    drop(h);
    assert_eq!(pool.live(), 1, "clones keep the slot live");
    drop(clones);
    assert_eq!(pool.live(), 0);
    // Slot is back on the free list exactly once: one alloc succeeds, a
    // second fails.
    let again = pool.alloc(64).unwrap();
    assert!(pool.alloc(64).is_none());
    drop(again);
}
