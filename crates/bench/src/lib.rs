#![warn(missing_docs)]

//! # labstor-bench — harnesses regenerating the paper's tables & figures
//!
//! One binary per experiment (see `DESIGN.md` §4 for the index):
//!
//! | binary                | reproduces |
//! |-----------------------|------------|
//! | `fig4a_anatomy`       | Fig. 4a — I/O stack anatomy |
//! | `table1_upgrade`      | Table I — live-upgrade cost |
//! | `fig5a_dynamic_cpu`   | Fig. 5a — dynamic CPU allocation |
//! | `fig5b_partitioning`  | Fig. 5b — request partitioning |
//! | `fig6_storage_api`    | Fig. 6 — storage interface performance |
//! | `fig7_metadata`       | Fig. 7 — metadata throughput |
//! | `fig8_schedulers`     | Fig. 8 / Table II — I/O schedulers |
//! | `fig9a_pfs`           | Fig. 9a — PFS with VPIC / BD-CATS |
//! | `fig9b_labios`        | Fig. 9b — LABIOS object store |
//! | `fig9c_filebench`     | Fig. 9c — Filebench personalities |
//!
//! This library holds the shared setup: the paper's LabStack variants
//! (`Lab-All` / `Lab-Min` / `Lab-D`, §IV "we define the following
//! LabStacks"), device fixtures, and table printing.

use std::sync::Arc;

use labstor_core::{Runtime, RuntimeConfig, StackSpec, VertexSpec};
use labstor_mods::DeviceRegistry;
use labstor_sim::DeviceKind;

/// The three LabStack configurations §IV evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabVariant {
    /// `Lab-All` / "Centralized+Permissions": permissions → FS/KVS → LRU →
    /// NoOp → Kernel Driver, async execution.
    All,
    /// `Lab-Min` / "Centralized": permissions removed.
    Min,
    /// `Lab-D` / "Minimal": permissions removed, synchronous (client-side)
    /// execution.
    Decentralized,
}

impl LabVariant {
    /// Label used in output (matches the paper's legends).
    pub fn label(self, base: &str) -> String {
        match self {
            LabVariant::All => format!("{base}-all"),
            LabVariant::Min => format!("{base}-min"),
            LabVariant::Decentralized => format!("{base}-d"),
        }
    }

    /// All three, in the paper's order.
    pub fn all() -> [LabVariant; 3] {
        [LabVariant::All, LabVariant::Min, LabVariant::Decentralized]
    }
}

/// Build the paper's filesystem LabStack spec for a variant over `device`.
/// The full chain is permissions → labfs → lru_cache → noop_sched →
/// kernel_driver (§IV "Lab-All: permissions checks, LRU cache, NoOp sched,
/// Kernel_Driver, async_exec_mode").
pub fn labfs_stack_spec(
    variant: LabVariant,
    mount: &str,
    device: &str,
    workers: usize,
    cache_bytes: usize,
) -> StackSpec {
    let key = mount_key(mount);
    let mut mods = Vec::new();
    if variant == LabVariant::All {
        mods.push(VertexSpec {
            uuid: format!("perm_{device}_{key}"),
            type_name: "permissions".into(),
            params: serde_json::Value::Null,
            outputs: vec![format!("labfs_{device}_{key}")],
        });
    }
    mods.push(VertexSpec {
        uuid: format!("labfs_{device}_{key}"),
        type_name: "labfs".into(),
        params: serde_json::json!({"device": device, "workers": workers}),
        outputs: vec![format!("lru_{device}_{key}")],
    });
    mods.push(VertexSpec {
        uuid: format!("lru_{device}_{key}"),
        type_name: "lru_cache".into(),
        params: serde_json::json!({"capacity_bytes": cache_bytes}),
        outputs: vec![format!("sched_{device}_{key}")],
    });
    mods.push(VertexSpec {
        uuid: format!("sched_{device}_{key}"),
        type_name: "noop_sched".into(),
        params: serde_json::Value::Null,
        outputs: vec![format!("drv_{device}_{key}")],
    });
    mods.push(VertexSpec {
        uuid: format!("drv_{device}_{key}"),
        type_name: "kernel_driver".into(),
        params: serde_json::json!({"device": device}),
        outputs: vec![],
    });
    StackSpec {
        mount: mount.to_string(),
        exec: match variant {
            LabVariant::Decentralized => "sync".into(),
            _ => "async".into(),
        },
        authorized_uids: vec![0],
        labmods: mods,
    }
}

/// Build the KVS LabStack spec for a variant (permissions → labkvs → noop
/// → kernel_driver).
pub fn labkvs_stack_spec(
    variant: LabVariant,
    mount: &str,
    device: &str,
    workers: usize,
) -> StackSpec {
    let key = mount_key(mount);
    let mut mods = Vec::new();
    if variant == LabVariant::All {
        mods.push(VertexSpec {
            uuid: format!("kperm_{device}_{key}"),
            type_name: "permissions".into(),
            params: serde_json::Value::Null,
            outputs: vec![format!("labkvs_{device}_{key}")],
        });
    }
    mods.push(VertexSpec {
        uuid: format!("labkvs_{device}_{key}"),
        type_name: "labkvs".into(),
        params: serde_json::json!({"device": device, "workers": workers}),
        outputs: vec![format!("ksched_{device}_{key}")],
    });
    mods.push(VertexSpec {
        uuid: format!("ksched_{device}_{key}"),
        type_name: "noop_sched".into(),
        params: serde_json::Value::Null,
        outputs: vec![format!("kdrv_{device}_{key}")],
    });
    mods.push(VertexSpec {
        uuid: format!("kdrv_{device}_{key}"),
        type_name: "kernel_driver".into(),
        params: serde_json::json!({"device": device}),
        outputs: vec![],
    });
    StackSpec {
        mount: mount.to_string(),
        exec: match variant {
            LabVariant::Decentralized => "sync".into(),
            _ => "async".into(),
        },
        authorized_uids: vec![0],
        labmods: mods,
    }
}

fn mount_key(mount: &str) -> String {
    mount.replace(['/', ':'], "_")
}

/// Start a runtime with all bundled LabMod factories installed.
pub fn runtime_with_mods(
    devices: &Arc<DeviceRegistry>,
    max_workers: usize,
    auto_admin: bool,
) -> Arc<Runtime> {
    let rt = Runtime::start(RuntimeConfig {
        max_workers,
        auto_admin,
        admin_interval: std::time::Duration::from_millis(1),
        ..Default::default()
    });
    labstor_mods::install_all(&rt.mm, devices);
    rt
}

/// The paper's device fixture: one of each storage class.
pub fn testbed_devices() -> Arc<DeviceRegistry> {
    let devices = DeviceRegistry::new();
    devices.add_preset("hdd0", DeviceKind::Hdd);
    devices.add_preset("ssd0", DeviceKind::SataSsd);
    devices.add_preset("nvme0", DeviceKind::Nvme);
    devices.add_preset("pmem0", DeviceKind::Pmem);
    devices.add_pmem("pmemdax0", labstor_sim::PmemDevice::preset());
    devices
}

/// Print a fixed-width table (the harnesses' common output format).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:>w$}", h, w = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Format ns as a human-readable duration.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_specs_are_valid() {
        for v in LabVariant::all() {
            let spec = labfs_stack_spec(v, "fs::/b", "nvme0", 4, 1 << 20);
            let stack = spec.to_stack().expect("valid spec");
            let expected = if v == LabVariant::All { 5 } else { 4 };
            assert_eq!(stack.vertices.len(), expected, "{v:?}");
            let spec = labkvs_stack_spec(v, "kv::/b", "nvme0", 4);
            assert!(spec.to_stack().is_ok());
        }
    }

    #[test]
    fn variants_label() {
        assert_eq!(LabVariant::All.label("labfs"), "labfs-all");
        assert_eq!(LabVariant::Decentralized.label("labkvs"), "labkvs-d");
    }

    #[test]
    fn testbed_has_all_devices() {
        let d = testbed_devices();
        for name in ["hdd0", "ssd0", "nvme0", "pmem0"] {
            assert!(d.block(name).is_some(), "{name}");
        }
        assert!(d.pmem("pmemdax0").is_some());
    }

    #[test]
    fn stacks_mount_on_a_runtime() {
        let devices = testbed_devices();
        let rt = runtime_with_mods(&devices, 2, false);
        for (i, v) in LabVariant::all().iter().enumerate() {
            let spec = labfs_stack_spec(*v, &format!("fs::/m{i}"), "nvme0", 4, 1 << 20);
            rt.mount_stack(&spec).expect("mounts");
        }
        rt.shutdown();
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
