//! Data-path benchmark: copy vs zero-copy read hits, and page-cache
//! shard scaling — emits `BENCH_datapath.json`.
//!
//! Two sweeps:
//!
//! 1. **Read-hit sweep** — lane (MPMC vs SPSC) × payload size
//!    (4 KiB / 64 KiB / 256 KiB) × mode (copying `BlockOp::Read` vs
//!    zero-copy `BlockOp::ReadBuf`). A client half submits read
//!    descriptors over a queue pair; the worker half serves them from a
//!    pre-warmed `LruCacheMod` whose blocks live in the shared buffer
//!    pool. The copying mode clones the cached bytes into
//!    `RespPayload::Data` per hit; the zero-copy mode answers with a
//!    `BufHandle` slice — a refcount bump. Both wall-clock ops/s and the
//!    modeled per-hit virtual cost are recorded.
//! 2. **Shard sweep** — the kernel `PageCache` at 1/2/4/8 shards under 8
//!    concurrent request streams of pure hits. Throughput is measured in
//!    *virtual* time (ops per simulated second): each shard's mapping
//!    lock is a [`labstor_sim`] `Resource`, so one shard serializes all
//!    streams while 8 shards let them proceed in parallel. Virtual
//!    throughput is deterministic — immune to host core count and CI
//!    noise — which is what the scaling gate compares.
//!
//! Gates (run fails with exit 1 if either misses):
//! - zero-copy read hits at 64 KiB must not fall below the copying
//!   baseline on wall-clock ops/s (target 2×, floor 1× to keep CI hosts
//!   from flaking the build) AND must beat it ≥2× on modeled virtual
//!   cost (deterministic, so the floor is the target).
//! - page-cache virtual hit throughput must scale ≥3× from 1 to 8
//!   shards at 8 streams.
//!
//! Usage: `bench_datapath [--smoke]` — `--smoke` shrinks op counts for CI.

use std::sync::Arc;
use std::time::Instant;

use labstor_core::stack::{ExecMode, LabStack, Vertex};
use labstor_core::{BlockOp, ModuleManager, Payload, Request, RespPayload, StackEnv};
use labstor_ipc::{
    default_pool, Credentials, Envelope, LaneKind, QueueFlags, QueuePair, QueueRole,
};
use labstor_kernel::page_cache::{PageCache, PAGE_SIZE};
use labstor_sim::Ctx;

const RUNTIME_DOMAIN: u32 = 0;
const CLIENT_DOMAIN: u32 = 1;
const QUEUE_DEPTH: usize = 256;
const BATCH: usize = 8;
/// Distinct cached blocks the read-hit sweep cycles through (bounded by
/// the default pool's 256 KiB class, which has 16 slots).
const NBLOCKS: u64 = 8;

/// Queue message: the lba to read going down, the response coming back.
type Msg = (u64, Option<RespPayload>);

fn queue(lane: LaneKind) -> Arc<QueuePair<Msg>> {
    Arc::new(QueuePair::with_lane(
        0,
        QUEUE_DEPTH,
        QueueFlags {
            ordered: true,
            role: QueueRole::Primary,
        },
        lane,
    ))
}

fn lane_name(lane: LaneKind) -> &'static str {
    match lane {
        LaneKind::Mpmc => "mpmc",
        LaneKind::Spsc => "spsc",
    }
}

/// One read-hit configuration's measurements.
struct ReadHit {
    lane: LaneKind,
    size: usize,
    zero_copy: bool,
    ops: usize,
    ops_per_sec: f64,
    gib_per_sec: f64,
    /// Modeled (virtual) busy ns per hit on the worker side.
    virt_hit_ns: f64,
}

/// Build a single-vertex stack around a warm write-back LRU cache so
/// every benchmarked read is a hit served straight from the mod.
fn warm_cache(size: usize) -> (ModuleManager, LabStack) {
    let mm = ModuleManager::new();
    labstor_mods::lru::install(&mm);
    mm.instantiate(
        "cache",
        "lru_cache",
        &serde_json::json!({"capacity_bytes": 64usize << 20, "write_back": true}),
    )
    .expect("instantiate lru_cache");
    let stack = LabStack {
        id: 1,
        mount: "bench".into(),
        exec: ExecMode::Sync,
        vertices: vec![Vertex {
            uuid: "cache".into(),
            outputs: vec![],
        }],
        authorized_uids: vec![],
    };
    let env = StackEnv {
        stack: &stack,
        vertex: 0,
        registry: &mm,
        domain: RUNTIME_DOMAIN,
    };
    let cache = mm.get("cache").expect("cache registered");
    let mut ctx = Ctx::new();
    for lba in 0..NBLOCKS {
        let mut buf = default_pool().alloc(size).expect("pool has a slot");
        assert!(buf.write_with(|b| b.fill(lba as u8)), "fresh handle");
        let resp = cache.process(
            &mut ctx,
            Request::new(
                lba,
                stack.id,
                Payload::Block(BlockOp::WriteBuf { lba, buf }),
                Credentials::ROOT,
            ),
            &env,
        );
        assert!(
            matches!(resp, RespPayload::Len(n) if n == size),
            "warm write cached"
        );
    }
    (mm, stack)
}

/// Client and worker halves interleaved in one thread (deterministic, no
/// scheduler noise): the client streams lbas over the queue pair, the
/// worker answers each from the cache mod, the client checks a byte of
/// every response.
fn run_readhit(lane: LaneKind, size: usize, zero_copy: bool, ops: usize) -> ReadHit {
    let (mm, stack) = warm_cache(size);
    let env = StackEnv {
        stack: &stack,
        vertex: 0,
        registry: &mm,
        domain: RUNTIME_DOMAIN,
    };
    let cache = mm.get("cache").expect("cache registered");
    let qp = queue(lane);
    let mut client = Ctx::new();
    let mut worker = Ctx::new();
    let vbase = worker.busy();
    let mut pend: Vec<Msg> = Vec::with_capacity(BATCH);
    let mut inbox: Vec<Envelope<Msg>> = Vec::with_capacity(BATCH);
    let mut done: Vec<(Msg, u64)> = Vec::with_capacity(BATCH);
    let mut outbox: Vec<Envelope<Msg>> = Vec::with_capacity(BATCH);
    let mut next: u64 = 0;
    let mut reaped = 0usize;
    let t0 = Instant::now();
    while reaped < ops {
        if pend.is_empty() && (next as usize) < ops {
            let n = BATCH.min(ops - next as usize);
            for _ in 0..n {
                pend.push((next % NBLOCKS, None));
                next += 1;
            }
        }
        if !pend.is_empty() {
            qp.submit_batch(&mut pend, client.now(), CLIENT_DOMAIN);
        }
        inbox.clear();
        qp.consume_batch(&mut worker, RUNTIME_DOMAIN, &mut inbox, BATCH);
        for env_msg in inbox.drain(..) {
            let lba = env_msg.payload.0;
            let op = if zero_copy {
                BlockOp::ReadBuf { lba, len: size }
            } else {
                BlockOp::Read { lba, len: size }
            };
            let resp = cache.process(
                &mut worker,
                Request::new(lba, stack.id, Payload::Block(op), Credentials::ROOT),
                &env,
            );
            done.push(((lba, Some(resp)), worker.now()));
        }
        while !done.is_empty() {
            qp.complete_batch(&mut done, RUNTIME_DOMAIN);
        }
        outbox.clear();
        qp.reap_batch(&mut client, CLIENT_DOMAIN, &mut outbox, BATCH);
        for env_msg in outbox.drain(..) {
            let (lba, resp) = env_msg.payload;
            let resp = resp.expect("worker filled the response");
            if zero_copy {
                assert!(
                    matches!(resp, RespPayload::DataBuf(_)),
                    "zero-copy hit must answer with a handle"
                );
            }
            let bytes = resp.data_bytes().expect("hit carries data");
            assert_eq!(bytes.len(), size);
            assert_eq!(bytes[0], lba as u8, "payload integrity");
            reaped += 1;
        }
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    ReadHit {
        lane,
        size,
        zero_copy,
        ops,
        ops_per_sec: ops as f64 / elapsed,
        gib_per_sec: (ops * size) as f64 / elapsed / (1u64 << 30) as f64,
        virt_hit_ns: (worker.busy() - vbase) as f64 / ops as f64,
    }
}

/// One shard-count configuration's measurements.
struct ShardSweep {
    shards: usize,
    streams: usize,
    ops: usize,
    /// Ops per *virtual* second — deterministic contention model.
    virt_ops_per_sec: f64,
    wall_ops_per_sec: f64,
}

/// 8 request streams of pure page-cache hits, round-robin interleaved
/// (each stream has its own virtual clock; the per-shard mapping-lock
/// `Resource` arbitrates them in virtual time exactly as racing threads
/// would be). Virtual span = the latest clock at the end of the run.
fn run_shards(shards: usize, streams: usize, ops_per_stream: usize) -> ShardSweep {
    let pages_per_stream: u64 = 64;
    let working_set = streams * pages_per_stream as usize * PAGE_SIZE;
    // 2x the working set so hash imbalance across shards cannot evict.
    let pc = PageCache::with_shards(2 * working_set, shards);
    let mut warm = Ctx::new();
    for s in 0..streams as u64 {
        for p in 0..pages_per_stream {
            pc.read_page(&mut warm, s, p, |_, _, b| {
                b.fill(s as u8);
                true
            })
            .expect("warm fill");
        }
    }
    assert_eq!(pc.len(), streams * pages_per_stream as usize);
    // Start every stream clock at the warm watermark so warm-up queueing
    // does not bleed into the measured span.
    let start = warm.now();
    let mut ctxs: Vec<Ctx> = (0..streams)
        .map(|_| {
            let mut c = Ctx::new();
            c.poll_until(start);
            c
        })
        .collect();
    let t0 = Instant::now();
    for round in 0..ops_per_stream as u64 {
        for (s, ctx) in ctxs.iter_mut().enumerate() {
            let (h, hit) = pc
                .read_page(ctx, s as u64, round % pages_per_stream, |_, _, _| false)
                .expect("resident page");
            assert!(hit, "sweep must be all hits");
            assert_eq!(h.as_slice()[0], s as u8);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let vspan = ctxs
        .iter()
        .map(|c| c.now() - start)
        .max()
        .unwrap_or(1)
        .max(1);
    let ops = streams * ops_per_stream;
    ShardSweep {
        shards,
        streams,
        ops,
        virt_ops_per_sec: ops as f64 / (vspan as f64 / 1e9),
        wall_ops_per_sec: ops as f64 / elapsed,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (hit_ops, stream_ops) = if smoke {
        (4_000, 2_000)
    } else {
        (40_000, 25_000)
    };

    let lanes = [LaneKind::Mpmc, LaneKind::Spsc];
    let sizes = [4 * 1024usize, 64 * 1024, 256 * 1024];
    let mut hits: Vec<ReadHit> = Vec::new();
    for lane in lanes {
        for size in sizes {
            for zero_copy in [false, true] {
                hits.push(run_readhit(lane, size, zero_copy, hit_ops));
            }
        }
    }

    let shard_counts = [1usize, 2, 4, 8];
    let sweeps: Vec<ShardSweep> = shard_counts
        .iter()
        .map(|&n| run_shards(n, 8, stream_ops))
        .collect();

    let find_hit = |lane: LaneKind, size: usize, zc: bool| {
        hits.iter()
            .find(|h| h.lane == lane && h.size == size && h.zero_copy == zc)
            .expect("config present")
    };
    let copy64 = find_hit(LaneKind::Spsc, 64 * 1024, false);
    let zc64 = find_hit(LaneKind::Spsc, 64 * 1024, true);
    let wall_speedup = zc64.ops_per_sec / copy64.ops_per_sec.max(1e-9);
    let virt_speedup = copy64.virt_hit_ns / zc64.virt_hit_ns.max(1e-9);
    // Wall floor 1.0 (never regress, CI-noise proof); the modeled cost is
    // deterministic so it gates at the full 2x target.
    let zc_pass = wall_speedup >= 1.0 && virt_speedup >= 2.0;

    let one = sweeps.iter().find(|s| s.shards == 1).expect("1 shard");
    let eight = sweeps.iter().find(|s| s.shards == 8).expect("8 shards");
    let shard_scaling = eight.virt_ops_per_sec / one.virt_ops_per_sec.max(1e-9);
    let shard_pass = shard_scaling >= 3.0;

    let hit_json: Vec<serde_json::Value> = hits
        .iter()
        .map(|h| {
            serde_json::json!({
                "lane": lane_name(h.lane),
                "payload_bytes": h.size,
                "mode": if h.zero_copy { "zerocopy" } else { "copy" },
                "ops": h.ops,
                "ops_per_sec": h.ops_per_sec,
                "gib_per_sec": h.gib_per_sec,
                "virt_hit_ns": h.virt_hit_ns,
            })
        })
        .collect();
    let sweep_json: Vec<serde_json::Value> = sweeps
        .iter()
        .map(|s| {
            serde_json::json!({
                "shards": s.shards,
                "streams": s.streams,
                "ops": s.ops,
                "virt_ops_per_sec": s.virt_ops_per_sec,
                "wall_ops_per_sec": s.wall_ops_per_sec,
            })
        })
        .collect();
    let zc_gate = serde_json::json!({
        "compare": "spsc 64KiB zerocopy vs copy read hits",
        "wall_speedup": wall_speedup,
        "wall_floor": 1.0,
        "virt_speedup": virt_speedup,
        "virt_floor": 2.0,
        "target": 2.0,
        "pass": zc_pass,
    });
    let shard_gate = serde_json::json!({
        "compare": "8 vs 1 page-cache shards, 8 streams, virtual ops/s",
        "speedup": shard_scaling,
        "required_min": 3.0,
        "pass": shard_pass,
    });
    let doc = serde_json::json!({
        "benchmark": "datapath",
        "smoke": smoke,
        "read_hits": hit_json,
        "shard_sweep": sweep_json,
        "gates": serde_json::json!({
            "zero_copy_64k": zc_gate,
            "shard_scaling": shard_gate,
        }),
    });
    let out = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write("BENCH_datapath.json", format!("{out}\n")).expect("write BENCH_datapath.json");

    println!("== datapath ({}) ==", if smoke { "smoke" } else { "full" });
    println!(
        "{:>5} {:>9} {:>9} {:>14} {:>10} {:>12}",
        "lane", "payload", "mode", "ops/s", "GiB/s", "vhit(ns)"
    );
    for h in &hits {
        println!(
            "{:>5} {:>9} {:>9} {:>14.0} {:>10.2} {:>12.0}",
            lane_name(h.lane),
            h.size,
            if h.zero_copy { "zerocopy" } else { "copy" },
            h.ops_per_sec,
            h.gib_per_sec,
            h.virt_hit_ns,
        );
    }
    println!(
        "{:>7} {:>8} {:>16} {:>16}",
        "shards", "streams", "vops/s", "wall ops/s"
    );
    for s in &sweeps {
        println!(
            "{:>7} {:>8} {:>16.0} {:>16.0}",
            s.shards, s.streams, s.virt_ops_per_sec, s.wall_ops_per_sec
        );
    }
    println!(
        "zero-copy 64KiB: wall {wall_speedup:.2}x (floor 1.0), modeled {virt_speedup:.2}x (floor 2.0)"
    );
    println!("shard scaling 1->8: {shard_scaling:.2}x virtual (floor 3.0)");
    if !zc_pass {
        eprintln!("FAIL: zero-copy read-hit path regressed against the copying baseline");
    }
    if !shard_pass {
        eprintln!("FAIL: page-cache shard scaling fell below 3x");
    }
    if !(zc_pass && shard_pass) {
        std::process::exit(1);
    }
}
