//! IPC hot-path benchmark: lane (MPMC vs SPSC) × submit/consume batch
//! size (1/8/32) × client threads (1/4), emitting `BENCH_ipc.json`.
//!
//! Measures the host-side cost of the queue-pair verb path — the thing
//! the SPSC lane and the batched verbs (`submit_batch`/`consume_batch`/
//! `complete_batch`/`reap_batch`) optimize. Virtual time is tracked too:
//! p50/p99 per-request virtual latency (submit → reap, per-envelope
//! `dequeue_vt`) proves batching does not distort the simulated cost
//! model — batch verbs charge hops per envelope, so the virtual
//! percentiles must stay flat across batch sizes while ops/s climbs.
//!
//! Also the CI regression gate for the fast path: the run fails (exit 1)
//! if SPSC at batch 32 does not at least match the seed configuration
//! (MPMC, batch 1) on single-thread ops/s. Target is ≥2×.
//!
//! Usage: `bench_ipc [--smoke]` — `--smoke` shrinks the op counts for CI.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use labstor_ipc::{Envelope, LaneKind, QueueFlags, QueuePair, QueueRole};
use labstor_sim::Ctx;

/// Request payload: `(request id, client submit virtual time)` — the
/// worker echoes it back so the client can histogram submit→reap virtual
/// latency without a side table.
type Req = (u64, u64);

const RUNTIME_DOMAIN: u32 = 0;
const QUEUE_DEPTH: usize = 1024;

fn queue(lane: LaneKind, id: u64) -> Arc<QueuePair<Req>> {
    Arc::new(QueuePair::with_lane(
        id,
        QUEUE_DEPTH,
        QueueFlags {
            ordered: true,
            role: QueueRole::Primary,
        },
        lane,
    ))
}

/// One config's measurements.
struct ConfigResult {
    lane: LaneKind,
    batch: usize,
    threads: usize,
    ops: usize,
    ops_per_sec: f64,
    p50_vns: u64,
    p99_vns: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Single-thread mode: client and worker halves interleaved in one
/// thread, four batched verbs per pass. Deterministic (no scheduler
/// noise), which is what the regression gate compares.
fn run_single(lane: LaneKind, batch: usize, ops: usize) -> ConfigResult {
    let qp = queue(lane, 0);
    let mut client = Ctx::new();
    let mut worker = Ctx::new();
    let mut lat: Vec<u64> = Vec::with_capacity(ops);
    let mut pend: Vec<Req> = Vec::with_capacity(batch);
    let mut inbox: Vec<Envelope<Req>> = Vec::with_capacity(batch);
    let mut done: Vec<(Req, u64)> = Vec::with_capacity(batch);
    let mut outbox: Vec<Envelope<Req>> = Vec::with_capacity(batch);
    let mut next: u64 = 0;
    let t0 = Instant::now();
    while lat.len() < ops {
        if pend.is_empty() && (next as usize) < ops {
            let n = batch.min(ops - next as usize);
            let now = client.now();
            for _ in 0..n {
                pend.push((next, now));
                next += 1;
            }
        }
        if !pend.is_empty() {
            qp.submit_batch(&mut pend, client.now(), 1);
        }
        inbox.clear();
        qp.consume_batch(&mut worker, RUNTIME_DOMAIN, &mut inbox, batch);
        for env in inbox.drain(..) {
            done.push((env.payload, worker.now()));
        }
        while !done.is_empty() {
            qp.complete_batch(&mut done, RUNTIME_DOMAIN);
        }
        outbox.clear();
        qp.reap_batch(&mut client, 1, &mut outbox, batch);
        for env in outbox.drain(..) {
            lat.push(env.dequeue_vt.saturating_sub(env.payload.1));
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    ConfigResult {
        lane,
        batch,
        threads: 1,
        ops,
        ops_per_sec: ops as f64 / elapsed.max(1e-9),
        p50_vns: percentile(&lat, 0.50),
        p99_vns: percentile(&lat, 0.99),
    }
}

/// Multi-thread mode: `clients` client threads (one queue pair each, so
/// the SPSC per-direction contract holds) against one worker thread
/// draining all queues with the batched verbs.
fn run_multi(lane: LaneKind, batch: usize, clients: usize, ops_per_client: usize) -> ConfigResult {
    let qps: Vec<Arc<QueuePair<Req>>> = (0..clients).map(|i| queue(lane, i as u64)).collect();
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let qps = qps.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut ctx = Ctx::new();
            let mut inbox: Vec<Envelope<Req>> = Vec::with_capacity(batch);
            let mut done: Vec<(Req, u64)> = Vec::with_capacity(batch);
            while !stop.load(Ordering::Acquire) {
                let mut idle = true;
                for q in &qps {
                    inbox.clear();
                    if q.consume_batch(&mut ctx, RUNTIME_DOMAIN, &mut inbox, batch) == 0 {
                        continue;
                    }
                    idle = false;
                    for env in inbox.drain(..) {
                        done.push((env.payload, ctx.now()));
                    }
                    while !done.is_empty() && !stop.load(Ordering::Acquire) {
                        if q.complete_batch(&mut done, RUNTIME_DOMAIN) == 0 {
                            std::hint::spin_loop();
                        }
                    }
                    done.clear();
                }
                if idle {
                    std::hint::spin_loop();
                }
            }
        })
    };
    let t0 = Instant::now();
    let handles: Vec<_> = qps
        .iter()
        .enumerate()
        .map(|(i, qp)| {
            let qp = qp.clone();
            std::thread::spawn(move || {
                let domain = i as u32 + 1;
                let mut ctx = Ctx::new();
                let mut lat: Vec<u64> = Vec::with_capacity(ops_per_client);
                let mut pend: Vec<Req> = Vec::with_capacity(batch);
                let mut outbox: Vec<Envelope<Req>> = Vec::with_capacity(batch);
                let mut next: u64 = 0;
                while lat.len() < ops_per_client {
                    if pend.is_empty() && (next as usize) < ops_per_client {
                        let n = batch.min(ops_per_client - next as usize);
                        let now = ctx.now();
                        for _ in 0..n {
                            pend.push((next, now));
                            next += 1;
                        }
                    }
                    if !pend.is_empty() {
                        qp.submit_batch(&mut pend, ctx.now(), domain);
                    }
                    outbox.clear();
                    if qp.reap_batch(&mut ctx, domain, &mut outbox, batch) == 0 {
                        std::hint::spin_loop();
                    }
                    for env in outbox.drain(..) {
                        lat.push(env.dequeue_vt.saturating_sub(env.payload.1));
                    }
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u64> = Vec::with_capacity(clients * ops_per_client);
    for h in handles {
        lat.extend(h.join().expect("client thread"));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    worker.join().expect("worker thread");
    lat.sort_unstable();
    let ops = clients * ops_per_client;
    ConfigResult {
        lane,
        batch,
        threads: clients,
        ops,
        ops_per_sec: ops as f64 / elapsed.max(1e-9),
        p50_vns: percentile(&lat, 0.50),
        p99_vns: percentile(&lat, 0.99),
    }
}

fn lane_name(lane: LaneKind) -> &'static str {
    match lane {
        LaneKind::Mpmc => "mpmc",
        LaneKind::Spsc => "spsc",
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (ops_single, ops_per_client) = if smoke {
        (2_000, 500)
    } else {
        (100_000, 25_000)
    };

    let lanes = [LaneKind::Mpmc, LaneKind::Spsc];
    let batches = [1usize, 8, 32];
    let mut results: Vec<ConfigResult> = Vec::new();
    for lane in lanes {
        for batch in batches {
            results.push(run_single(lane, batch, ops_single));
            results.push(run_multi(lane, batch, 4, ops_per_client));
        }
    }

    let find = |lane: LaneKind, batch: usize, threads: usize| {
        results
            .iter()
            .find(|r| r.lane == lane && r.batch == batch && r.threads == threads)
            .expect("config present")
    };
    let seed = find(LaneKind::Mpmc, 1, 1);
    let fast = find(LaneKind::Spsc, 32, 1);
    let speedup = fast.ops_per_sec / seed.ops_per_sec.max(1e-9);
    // Gate: the fast path must never regress below the seed path. The
    // tentpole target is 2x; the hard floor is 1x so host noise in CI
    // cannot flake the build.
    let required_min = 1.0;
    let target = 2.0;
    let pass = speedup >= required_min;

    let configs: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "lane": lane_name(r.lane),
                "batch": r.batch,
                "threads": r.threads,
                "ops": r.ops,
                "ops_per_sec": r.ops_per_sec,
                "p50_vns": r.p50_vns,
                "p99_vns": r.p99_vns,
            })
        })
        .collect();
    let gate = serde_json::json!({
        "compare": "spsc batch=32 threads=1 vs mpmc batch=1 threads=1 (ops/s)",
        "speedup": speedup,
        "required_min": required_min,
        "target": target,
        "pass": pass,
    });
    let doc = serde_json::json!({
        "benchmark": "ipc_hotpath",
        "smoke": smoke,
        "queue_depth": QUEUE_DEPTH,
        "configs": configs,
        "gate": gate,
    });
    let out = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write("BENCH_ipc.json", format!("{out}\n")).expect("write BENCH_ipc.json");

    println!(
        "== ipc_hotpath ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>5} {:>6} {:>8} {:>8} {:>14} {:>9} {:>9}",
        "lane", "batch", "threads", "ops", "ops/s", "p50(vns)", "p99(vns)"
    );
    for r in &results {
        println!(
            "{:>5} {:>6} {:>8} {:>8} {:>14.0} {:>9} {:>9}",
            lane_name(r.lane),
            r.batch,
            r.threads,
            r.ops,
            r.ops_per_sec,
            r.p50_vns,
            r.p99_vns
        );
    }
    println!("speedup (spsc b32 t1 / mpmc b1 t1): {speedup:.2}x (target {target}x, floor {required_min}x)");
    if !pass {
        eprintln!("FAIL: SPSC fast path regressed below the seed MPMC path");
        std::process::exit(1);
    }
}
