//! Fig. 7 — Metadata throughput (FxMark file creation).
//!
//! "We compare three configurations of LabFS to various I/O systems
//! (EXT4, XFS, F2FS) on workloads which stress file creation using
//! FxMark. We vary the number of client threads to be between 1 and 24.
//! The LabStor Runtime is configured with 16 workers."
//!
//! Expected shape: all LabFS configs beat the kernel filesystems by up to
//! 3× single-threaded; removing permissions adds ~7%; going decentralized
//! adds another ~20%. LabFS scales with threads (sharded hashmap,
//! per-worker allocators); the kernel filesystems collapse on their
//! journal locks.

use labstor_bench::{labfs_stack_spec, print_table, runtime_with_mods, LabVariant};
use labstor_kernel::fs::{FsProfile, KernelFs};
use labstor_kernel::vfs::Vfs;
use labstor_kernel::BlockLayer;
use labstor_mods::DeviceRegistry;
use labstor_sim::{DeviceKind, SimDevice};
use labstor_workloads::fxmark::{run_create, CreateMode, FxmarkJob};
use labstor_workloads::stats::Recorder;
use labstor_workloads::targets::FsTarget;
use labstor_workloads::targets::{KernelFsTarget, LabStorFsTarget};

const FILES_PER_THREAD: usize = 1500;
const THREAD_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 24];

/// Kernel filesystems: virtual-time contention comes from the reservation
/// algebra, so one driver thread can interleave per-thread operations —
/// round-robin one create per simulated thread keeps every thread's
/// requests arriving concurrently on the journal/directory Resources,
/// exactly like FxMark's parallel phase.
fn kernel_fs_throughput(profile: FsProfile, threads: usize) -> f64 {
    let vfs = Vfs::new();
    let dev = SimDevice::preset(DeviceKind::Nvme);
    let label = profile.name;
    vfs.mount(
        "/mnt",
        KernelFs::new(profile, BlockLayer::new(dev), 64 << 20),
    );
    let mut targets: Vec<KernelFsTarget> = (0..threads)
        .map(|t| KernelFsTarget::new(vfs.clone(), "/mnt", label, t as u32 + 1, t))
        .collect();
    for (t, target) in targets.iter_mut().enumerate() {
        let _ = target.mkdir("/shared");
        let _ = t;
    }
    let mut recorders: Vec<Recorder> = targets.iter().map(|t| Recorder::new(t.ctx.now())).collect();
    for i in 0..FILES_PER_THREAD {
        for (t, target) in targets.iter_mut().enumerate() {
            let path = format!("/shared/t{t}f{i}");
            let t0 = target.ctx.now();
            let fd = target.open(&path, true, false).expect("create");
            target.close(fd).expect("close");
            recorders[t].record(target.ctx.now() - t0, 0);
        }
    }
    for (t, target) in targets.iter().enumerate() {
        recorders[t].end_vt = target.ctx.now();
    }
    Recorder::merge(recorders).ops_per_sec()
}

/// LabFS variants: async variants need live Runtime workers, so client
/// threads are real.
fn labfs_throughput(variant: LabVariant, threads: usize) -> f64 {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = runtime_with_mods(&devices, 16, true); // paper: 16 workers
    let spec = labfs_stack_spec(variant, "fs::/b", "nvme0", 16, 64 << 20);
    rt.mount_stack(&spec).expect("stack mounts");

    let recorders: Vec<Recorder> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let rt = rt.clone();
                let label = variant.label("labfs");
                s.spawn(move || {
                    let mut client =
                        rt.connect(labstor_ipc::Credentials::new(t as u32 + 1, 0, 0), 1);
                    client.core = t;
                    let mut target = LabStorFsTarget::new(client, "fs::/b", &label);
                    let job = FxmarkJob {
                        files: FILES_PER_THREAD,
                        mode: CreateMode::SharedDir,
                        thread: t,
                    };
                    let rec = run_create(&job, &mut target).expect("fxmark");
                    let _ = target; // keep the connection alive to the end
                    rec
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });
    rt.shutdown();
    Recorder::merge(recorders).ops_per_sec()
}

/// Kernel FS throughput with per-thread private directories (FxMark's
/// MWCL): XFS's allocation groups parallelize here while ext4/F2FS still
/// serialize on their global journal/log.
fn kernel_fs_private_dirs(profile: FsProfile, threads: usize) -> f64 {
    let vfs = Vfs::new();
    let dev = SimDevice::preset(DeviceKind::Nvme);
    let label = profile.name;
    vfs.mount(
        "/mnt",
        KernelFs::new(profile, BlockLayer::new(dev), 64 << 20),
    );
    let mut targets: Vec<KernelFsTarget> = (0..threads)
        .map(|t| KernelFsTarget::new(vfs.clone(), "/mnt", label, t as u32 + 1, t))
        .collect();
    for (t, target) in targets.iter_mut().enumerate() {
        let _ = target.mkdir(&format!("/priv{t}"));
    }
    let mut recorders: Vec<Recorder> = targets.iter().map(|t| Recorder::new(t.ctx.now())).collect();
    for i in 0..FILES_PER_THREAD {
        for (t, target) in targets.iter_mut().enumerate() {
            let path = format!("/priv{t}/f{i}");
            let t0 = target.ctx.now();
            let fd = target.open(&path, true, false).expect("create");
            target.close(fd).expect("close");
            recorders[t].record(target.ctx.now() - t0, 0);
        }
    }
    for (t, target) in targets.iter().enumerate() {
        recorders[t].end_vt = target.ctx.now();
    }
    Recorder::merge(recorders).ops_per_sec()
}

fn main() {
    let systems: Vec<String> = vec![
        "ext4".into(),
        "xfs".into(),
        "f2fs".into(),
        "labfs-all".into(),
        "labfs-min".into(),
        "labfs-d".into(),
    ];
    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mut row = vec![threads.to_string()];
        row.push(format!(
            "{:.0}",
            kernel_fs_throughput(FsProfile::ext4_like(), threads) / 1000.0
        ));
        row.push(format!(
            "{:.0}",
            kernel_fs_throughput(FsProfile::xfs_like(), threads) / 1000.0
        ));
        row.push(format!(
            "{:.0}",
            kernel_fs_throughput(FsProfile::f2fs_like(), threads) / 1000.0
        ));
        for variant in LabVariant::all() {
            row.push(format!(
                "{:.0}",
                labfs_throughput(variant, threads) / 1000.0
            ));
        }
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["threads"];
    headers.extend(systems.iter().map(|s| s.as_str()));
    print_table(
        &format!(
            "Fig 7: file-create throughput, kops/s ({FILES_PER_THREAD} creates/thread, shared dir)"
        ),
        &headers,
        &rows,
    );
    println!("\npaper: LabFS ~3x kernel FSes @1 thread; -perms +7%; decentralized +20% more;");
    println!("       LabFS scales with threads, kernel FSes flatten on journal locks");

    // Companion table: private directories (MWCL) — the regime where
    // XFS's per-allocation-group locks pay off against the global
    // journals of ext4/F2FS.
    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        rows.push(vec![
            threads.to_string(),
            format!(
                "{:.0}",
                kernel_fs_private_dirs(FsProfile::ext4_like(), threads) / 1000.0
            ),
            format!(
                "{:.0}",
                kernel_fs_private_dirs(FsProfile::xfs_like(), threads) / 1000.0
            ),
            format!(
                "{:.0}",
                kernel_fs_private_dirs(FsProfile::f2fs_like(), threads) / 1000.0
            ),
        ]);
    }
    print_table(
        "Fig 7 companion: private-dir creates (MWCL), kops/s — XFS AGs parallelize",
        &["threads", "ext4", "xfs", "f2fs"],
        &rows,
    );
}
