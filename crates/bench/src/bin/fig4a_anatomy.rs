//! Fig. 4a — I/O stack anatomy.
//!
//! "We run a test where we read/write 4KB of data from/to an NVMe drive
//! using LabFS. We capture the amount of time spent in different LabMods
//! on the data path. A LabStack resembling that of a traditional I/O
//! stack is configured to use LabFS, permissions checking, No-Op I/O
//! scheduling, LRU Page Cache, and the Kernel Driver LabMod. The LabStor
//! Runtime uses a single worker."
//!
//! Paper shares of a 4 KB write: I/O ≈66%(*), page cache 17%, IPC 8.4%,
//! NoOp scheduler 5%, FS metadata 3%, permissions 3%, driver ~1%.
//! (*) "I/O takes the most time as expected. Software amounts to 34%."
//!
//! Each LabMod's `est_total_time` counter measures its *exclusive*
//! software time; the device's busy counter provides the media share, and
//! IPC is whatever part of client-observed latency neither accounts for.

use labstor_bench::{fmt_ns, labfs_stack_spec, print_table, runtime_with_mods, LabVariant};
use labstor_core::{FsOp, Payload, RespPayload};
use labstor_mods::DeviceRegistry;
use labstor_sim::{BlockDevice, DeviceKind};

fn main() {
    let devices = DeviceRegistry::new();
    let dev = devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = runtime_with_mods(&devices, 1, true); // single worker
                                                   // A cache smaller than the working set: reads exercise the full path
                                                   // (the paper reports "results are similar for reads").
    let spec = labfs_stack_spec(LabVariant::All, "fs::/b", "nvme0", 1, 1 << 20);
    let stack = rt.mount_stack(&spec).expect("stack mounts");
    let mut client = rt.connect(labstor_ipc::Credentials::new(1, 0, 0), 1);

    const OPS: usize = 2000;
    let data = vec![0x5Au8; 4096];

    // The chain, entry first (uuids from labfs_stack_spec).
    let uuids = [
        "perm_nvme0_fs___b",
        "labfs_nvme0_fs___b",
        "lru_nvme0_fs___b",
        "sched_nvme0_fs___b",
        "drv_nvme0_fs___b",
    ];
    let names = [
        "permissions",
        "labfs (metadata)",
        "lru cache",
        "noop sched",
        "kernel driver",
    ];

    let ino = match client
        .execute(
            &stack,
            Payload::Fs(FsOp::Open {
                path: "/file".into(),
                create: true,
                truncate: false,
            }),
        )
        .expect("open")
        .0
    {
        RespPayload::Ino(i) => i,
        other => panic!("open failed: {other:?}"),
    };

    for direction in ["write", "read"] {
        // Instances persist across passes: snapshot counters instead of
        // remounting.
        let before: Vec<u64> = uuids
            .iter()
            .map(|u| rt.mm.get(u).expect("mod loaded").est_total_time())
            .collect();
        let dev_before = dev.stats().snapshot().busy_ns;
        let t0 = client.ctx.now();

        for i in 0..OPS {
            let off = (i % 1024) as u64 * 4096;
            let payload = if direction == "write" {
                Payload::Fs(FsOp::Write {
                    ino,
                    offset: off,
                    data: data.clone(),
                })
            } else {
                Payload::Fs(FsOp::Read {
                    ino,
                    offset: off,
                    len: 4096,
                })
            };
            let (resp, _) = client.execute(&stack, payload).expect("op");
            assert!(resp.is_ok(), "{direction} failed: {resp:?}");
        }

        let total_latency = client.ctx.now() - t0;
        let exclusive: Vec<u64> = uuids
            .iter()
            .zip(&before)
            .map(|(u, b)| rt.mm.get(u).expect("mod loaded").est_total_time() - b)
            .collect();
        let io_ns = dev.stats().snapshot().busy_ns - dev_before;

        let mut rows = Vec::new();
        let mut software_total = 0u64;
        for (i, &ns) in exclusive.iter().enumerate() {
            software_total += ns;
            rows.push((names[i].to_string(), ns));
        }
        // IPC: everything the client saw that no stage or the device
        // accounts for (queue hops, cross-core transfer).
        let accounted: u64 = software_total + io_ns;
        let ipc = total_latency.saturating_sub(accounted);
        rows.push(("ipc (shm queues)".into(), ipc));
        rows.push(("device i/o".into(), io_ns));

        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|(name, ns)| {
                vec![
                    name.clone(),
                    fmt_ns(ns / OPS as u64),
                    format!("{:.1}%", *ns as f64 * 100.0 / total_latency as f64),
                ]
            })
            .collect();
        print_table(
            &format!("Fig 4a: anatomy of a 4KB {direction} through Lab-All on NVMe ({OPS} ops, avg latency {})",
                fmt_ns(total_latency / OPS as u64)),
            &["stage", "per-op", "share"],
            &table,
        );
    }
    println!(
        "\npaper (write): io ~66%  cache 17%  ipc 8.4%  sched 5%  fs-meta 3%  perms 3%  driver ~1%"
    );
    rt.shutdown();
}
