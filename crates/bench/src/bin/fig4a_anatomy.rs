//! Fig. 4a — I/O stack anatomy.
//!
//! "We run a test where we read/write 4KB of data from/to an NVMe drive
//! using LabFS. We capture the amount of time spent in different LabMods
//! on the data path. A LabStack resembling that of a traditional I/O
//! stack is configured to use LabFS, permissions checking, No-Op I/O
//! scheduling, LRU Page Cache, and the Kernel Driver LabMod. The LabStor
//! Runtime uses a single worker."
//!
//! Paper shares of a 4 KB write: I/O ≈66%(*), page cache 17%, IPC 8.4%,
//! NoOp scheduler 5%, FS metadata 3%, permissions 3%, driver ~1%.
//! (*) "I/O takes the most time as expected. Software amounts to 34%."
//!
//! The stage times come from the labtelem flight recorder: every request
//! leaves Submit/HopReq/Vertex/Device/HopResp spans in virtual time, and
//! `labstor_telemetry::anatomy` computes per-stage *exclusive* time by
//! subtracting each nested span from its parent — the vertex spans are
//! inclusive, the Device span sits inside the driver's, and whatever no
//! stage accounts for lands in the hop (IPC) categories.

use labstor_bench::{fmt_ns, labfs_stack_spec, print_table, runtime_with_mods, LabVariant};
use labstor_core::{FsOp, Payload, RespPayload};
use labstor_mods::DeviceRegistry;
use labstor_sim::DeviceKind;
use labstor_telemetry::{anatomy, SpanEvent, Stage};

fn main() {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = runtime_with_mods(&devices, 1, true); // single worker
                                                   // A cache smaller than the working set: reads exercise the full path
                                                   // (the paper reports "results are similar for reads").
    let spec = labfs_stack_spec(LabVariant::All, "fs::/b", "nvme0", 1, 1 << 20);
    let stack = rt.mount_stack(&spec).expect("stack mounts");
    let mut client = rt.connect(labstor_ipc::Credentials::new(1, 0, 0), 1);

    const OPS: usize = 2000;
    let data = vec![0x5Au8; 4096];

    // Stage names per vertex index (order from labfs_stack_spec).
    let names = [
        "permissions",
        "labfs (metadata)",
        "lru cache",
        "noop sched",
        "kernel driver",
    ];
    let label = |s: &SpanEvent| match s.stage {
        Stage::Vertex => names
            .get(s.vertex as usize)
            .copied()
            .unwrap_or("vertex?")
            .to_string(),
        Stage::Device => "device i/o".to_string(),
        _ => "ipc (shm queues)".to_string(),
    };

    let rec = rt.mm.telemetry().clone();
    rec.set_ring_capacity(1 << 16); // one pass is ~24k spans
    rec.enable();

    let ino = match client
        .execute(
            &stack,
            Payload::Fs(FsOp::Open {
                path: "/file".into(),
                create: true,
                truncate: false,
            }),
        )
        .expect("open")
        .0
    {
        RespPayload::Ino(i) => i,
        other => panic!("open failed: {other:?}"),
    };

    for direction in ["write", "read"] {
        let t0 = client.ctx.now();

        for i in 0..OPS {
            let off = (i % 1024) as u64 * 4096;
            let payload = if direction == "write" {
                Payload::Fs(FsOp::Write {
                    ino,
                    offset: off,
                    data: data.clone(),
                })
            } else {
                Payload::Fs(FsOp::Read {
                    ino,
                    offset: off,
                    len: 4096,
                })
            };
            let (resp, _) = client.execute(&stack, payload).expect("op");
            assert!(resp.is_ok(), "{direction} failed: {resp:?}");
        }

        // Rings persist across passes: keep only this pass's spans.
        let spans: Vec<SpanEvent> = rec
            .snapshot()
            .into_iter()
            .filter(|s| s.t_start_vns >= t0)
            .collect();
        assert_eq!(rec.dropped(), 0, "ring too small, spans lost");
        let a = anatomy(&spans, label);
        let total_latency = a.total_ns;

        let order = [
            names[0],
            names[1],
            names[2],
            names[3],
            names[4],
            "ipc (shm queues)",
            "device i/o",
        ];
        let table: Vec<Vec<String>> = order
            .iter()
            .map(|name| {
                let ns = a.ns(name);
                vec![
                    name.to_string(),
                    fmt_ns(ns / OPS as u64),
                    format!("{:.1}%", ns as f64 * 100.0 / total_latency as f64),
                ]
            })
            .collect();
        print_table(
            &format!("Fig 4a: anatomy of a 4KB {direction} through Lab-All on NVMe ({OPS} ops, avg latency {})",
                fmt_ns(total_latency / OPS as u64)),
            &["stage", "per-op", "share"],
            &table,
        );
    }
    println!(
        "\npaper (write): io ~66%  cache 17%  ipc 8.4%  sched 5%  fs-meta 3%  perms 3%  driver ~1%"
    );
    rt.shutdown();
}
