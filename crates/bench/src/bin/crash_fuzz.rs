//! Crash-recovery fuzz campaign, emitting `BENCH_crash_fuzz.json` and a
//! failure-reproduction seed file under `results/`.
//!
//! Runs the `labstor_workloads::crash` campaign: seeded fio-like and
//! filebench-like mixes over LabFS plus a LabKVS mix, each killed at a
//! randomized virtual time, restarted over the same media, repaired, and
//! checked for prefix consistency against the acknowledged history
//! (DESIGN.md §12). Exit 1 on any violation.
//!
//! Usage: `crash_fuzz [--smoke]` — `--smoke` runs 52 crash points per
//! mix (208 total, bounded virtual time) for CI; the full run does 150
//! per mix. Any violating trial's (workload, seed, crash_at) triple is
//! written to `results/crash_fuzz_failures.json`, which the CI workflow
//! uploads as an artifact so failures replay exactly.

use std::collections::HashMap;

use labstor_workloads::crash::{run_campaign, CampaignConfig};
use serde_json::Value;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = CampaignConfig {
        trials_per_workload: if smoke { 52 } else { 150 },
        flows: if smoke { 4 } else { 8 },
        base_seed: 0x1AB5_702C,
    };
    let report = run_campaign(&cfg);
    let violations = report.violations();

    // Failure-reproduction seeds: everything needed to replay a
    // violating trial exactly.
    let failures: Vec<Value> = violations
        .iter()
        .map(|t| {
            serde_json::json!({
                "workload": t.workload.label(),
                "seed": t.seed,
                "crash_at": t.crash_at.map(Value::from).unwrap_or(Value::Null),
                "flows": cfg.flows as u64,
                "violation": t.violation.clone().unwrap_or_default(),
            })
        })
        .collect();
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(
        "results/crash_fuzz_failures.json",
        format!("{}\n", Value::from(failures)),
    )
    .expect("write failure seeds");

    // Per-workload replay/discard totals.
    let mut agg: HashMap<&str, (u64, u64, u64)> = HashMap::new();
    for t in &report.trials {
        let e = agg.entry(t.workload.label()).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += t.repair.txns_replayed;
        e.2 += t.repair.txns_discarded;
    }
    let mut per_workload = serde_json::Map::new();
    for (label, (trials, replayed, discarded)) in agg {
        per_workload.insert(
            label.to_string(),
            serde_json::json!({
                "trials": trials,
                "txns_replayed": replayed,
                "txns_discarded": discarded,
            }),
        );
    }
    let out = serde_json::json!({
        "bench": "crash_fuzz",
        "smoke": smoke,
        "trials": report.trials.len() as u64,
        "crash_points": report.crashes() as u64,
        "torn_tails_discarded": report.torn_tails() as u64,
        "violations": violations.len() as u64,
        "per_workload": Value::Object(per_workload),
    });
    std::fs::write("BENCH_crash_fuzz.json", format!("{out}\n"))
        .expect("write BENCH_crash_fuzz.json");

    println!(
        "crash_fuzz ({}): {}",
        if smoke { "smoke" } else { "full" },
        report.summary()
    );
    if !violations.is_empty() {
        for t in &violations {
            eprintln!(
                "FAIL: {} seed={} crash_at={:?}: {}",
                t.workload.label(),
                t.seed,
                t.crash_at,
                t.violation.as_deref().unwrap_or("?")
            );
        }
        eprintln!(
            "FAIL: crash fuzzer found prefix-consistency violations \
             (seeds in results/crash_fuzz_failures.json)"
        );
        std::process::exit(1);
    }
}
