//! Noisy-neighbor tenant isolation benchmark, emitting
//! `BENCH_tenants.json`.
//!
//! One hostile tenant hammers 256 KiB writes at an async block LabStack
//! while a fleet of latency-sensitive tenants (99 in the full run) do
//! 4 KiB reads. Three configurations:
//!
//! - `solo` — the victim fleet alone: the isolation baseline.
//! - `contended_noqos` — hostile added, every tenant on the permissive
//!   default policy (no token bucket, weight 1): the damage case.
//! - `contended_qos` — victims declare `LatencySensitive` weight-4
//!   policies; the hostile tenant is admitted through a token bucket and
//!   deprioritized by the weighted-fair pass in the orchestrator.
//!
//! Also the CI regression gate for the labtenant subsystem (DESIGN.md
//! §11): the run fails (exit 1) if the QoS run's aggregate victim p99
//! blows past the isolation ceiling relative to solo, or if the hostile
//! tenant's admitted virtual throughput escapes its bucket rate. Target
//! is p99(qos) ≤ 2× p99(solo); the hard ceiling is deliberately lenient
//! so host scheduling noise cannot flake CI.
//!
//! Usage: `bench_tenants [--smoke]` — `--smoke` shrinks the fleet and op
//! counts for CI.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use labstor_bench::runtime_with_mods;
use labstor_core::client::ClientError;
use labstor_core::{BlockOp, Payload, StackSpec, VertexSpec};
use labstor_ipc::Credentials;
use labstor_mods::DeviceRegistry;
use labstor_qos::{DeadlineClass, TenantPolicy};
use labstor_sim::DeviceKind;
use labstor_workloads::stats::SkewGate;

/// Victim request size (4 KiB reads).
const VICTIM_BYTES: usize = 4096;
/// Hostile request size (256 KiB writes).
const HOSTILE_BYTES: usize = 256 * 1024;
/// Device span the fleet reads across (sectors of 512 B).
const SPAN_SECTORS: u64 = (64 << 20) / 512;
/// Hostile pipeline depth: 256 KiB writes kept in flight per batch.
const HOSTILE_DEPTH: usize = 8;
/// Hostile token-bucket rate in the QoS run (bytes of payload per
/// virtual second): 8 MiB/s, ~32 hostile writes per virtual second.
const HOSTILE_RATE: u64 = 8 * 1024 * 1024;
/// Hostile bucket burst: one full pipeline batch.
const HOSTILE_BURST: u64 = (HOSTILE_DEPTH * HOSTILE_BYTES) as u64;
/// Victim open-loop arrival interval: one 4 KiB read per 2 ms of virtual
/// time per tenant (500 IOPS each). Open-loop pacing keeps latency
/// measurements honest under contention (no coordinated omission).
const VICTIM_INTERVAL_NS: u64 = 2_000_000;
/// Conservative-PDES window: no actor's virtual clock may run more than
/// this far ahead of the slowest live actor, so a throttled tenant
/// idling forward cannot drag shared worker clocks into its future.
/// Kept tight (an eighth of the victim interval) because inter-client
/// skew is a latency measurement floor: worker clocks ride the
/// front-runner, and a lagging victim observes that lead as latency.
const MAX_SKEW_NS: u64 = 250_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Solo,
    ContendedNoQos,
    ContendedQos,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Solo => "solo",
            Mode::ContendedNoQos => "contended_noqos",
            Mode::ContendedQos => "contended_qos",
        }
    }

    fn hostile(self) -> bool {
        self != Mode::Solo
    }
}

/// Hostile-side measurements (zeroed when the mode runs no hostile).
#[derive(Debug, Default, Clone, Copy)]
struct HostileStats {
    ops: u64,
    throttled: u64,
    bytes: u64,
    /// The hostile clock at exit — admitted bytes over this window is the
    /// virtual throughput the bucket gate checks.
    elapsed_vns: u64,
}

struct RunResult {
    mode: Mode,
    victim_p50_vns: u64,
    victim_p99_vns: u64,
    victim_ops: u64,
    hostile: HostileStats,
    /// Per-tenant accounting snapshot from the runtime's `TenantTable`.
    tenants_json: serde_json::Value,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn block_stack_spec() -> StackSpec {
    StackSpec {
        mount: "blk::/t".into(),
        exec: "async".into(),
        authorized_uids: vec![0],
        labmods: vec![
            VertexSpec {
                uuid: "sched_t".into(),
                type_name: "noop_sched".into(),
                params: serde_json::Value::Null,
                outputs: vec!["drv_t".into()],
            },
            VertexSpec {
                uuid: "drv_t".into(),
                type_name: "kernel_driver".into(),
                params: serde_json::json!({"device": "nvme0"}),
                outputs: vec![],
            },
        ],
    }
}

/// Deterministic per-thread LBA sequence (splitmix64).
fn next_lba(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Keep the op inside the span, sector-aligned to its size.
    let sectors = (VICTIM_BYTES / 512) as u64;
    (z % (SPAN_SECTORS - sectors)) / sectors * sectors
}

fn run(mode: Mode, victims: usize, ops_per_victim: usize) -> RunResult {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = runtime_with_mods(&devices, 4, true);
    let stack = rt.mount_stack(&block_stack_spec()).expect("stack mounts");

    let victim_policy = TenantPolicy::default()
        .with_weight(4)
        .with_deadline(DeadlineClass::LatencySensitive);
    let hostile_policy = TenantPolicy::rate_limited(HOSTILE_RATE, HOSTILE_BURST).with_weight(1);

    let stop = Arc::new(AtomicBool::new(false));
    let actors = victims + usize::from(mode.hostile());
    let gate = Arc::new(SkewGate::new(actors, MAX_SKEW_NS));
    let (lat, hostile) = std::thread::scope(|s| {
        // The hostile tenant runs for as long as the fleet does: writes
        // 256 KiB as fast as admission lets it, backing off by the
        // bucket's retry-after hint in virtual time when throttled.
        let hostile_handle = mode.hostile().then(|| {
            let rt = rt.clone();
            let stack = stack.clone();
            let stop = stop.clone();
            let gate = gate.clone();
            s.spawn(move || {
                let creds = Credentials::new(1000, 0, 0).with_tenant(1000.into());
                let mut client = match mode {
                    Mode::ContendedQos => rt.connect_with_policy(creds, 1, hostile_policy),
                    _ => rt.connect(creds, 1),
                };
                let mut stats = HostileStats::default();
                let mut lba = 0u64;
                while !stop.load(Ordering::Acquire) {
                    gate.sync(victims, client.ctx.now());
                    // Pipeline a full batch of writes; `submit_all`
                    // charges the whole burst against the bucket at once.
                    let payloads: Vec<Payload> = (0..HOSTILE_DEPTH)
                        .map(|_| {
                            let p = Payload::Block(BlockOp::Write {
                                lba,
                                data: vec![0xa5; HOSTILE_BYTES],
                            });
                            lba = (lba + (HOSTILE_BYTES / 512) as u64) % SPAN_SECTORS;
                            p
                        })
                        .collect();
                    match client.submit_all(&stack, payloads) {
                        Ok(ids) => {
                            for _ in &ids {
                                client.reap_one().expect("hostile completion");
                            }
                            stats.ops += ids.len() as u64;
                            stats.bytes += (ids.len() * HOSTILE_BYTES) as u64;
                        }
                        Err(ClientError::Throttled { retry_after_ns }) => {
                            stats.throttled += 1;
                            let target = client.ctx.now() + retry_after_ns;
                            client.ctx.idle_until(target);
                        }
                        Err(e) => panic!("hostile tenant: {e}"),
                    }
                }
                gate.finish(victims);
                stats.elapsed_vns = client.ctx.now();
                stats
            })
        });

        let victim_handles: Vec<_> = (0..victims)
            .map(|i| {
                let rt = rt.clone();
                let stack = stack.clone();
                let gate = gate.clone();
                s.spawn(move || {
                    let tenant = i as u32 + 1;
                    let creds = Credentials::new(tenant, 0, 0).with_tenant(tenant.into());
                    let mut client = match mode {
                        Mode::ContendedNoQos => rt.connect(creds, 1),
                        _ => rt.connect_with_policy(creds, 1, victim_policy),
                    };
                    let mut rng = tenant as u64;
                    let mut lat = Vec::with_capacity(ops_per_victim);
                    let start = client.ctx.now();
                    for op in 0..ops_per_victim {
                        // Open-loop arrival: one read per interval, paced
                        // in virtual time and held inside the skew window.
                        client
                            .ctx
                            .idle_until(start + op as u64 * VICTIM_INTERVAL_NS);
                        gate.sync(i, client.ctx.now());
                        let payload = Payload::Block(BlockOp::Read {
                            lba: next_lba(&mut rng),
                            len: VICTIM_BYTES,
                        });
                        match client.execute(&stack, payload) {
                            Ok((_, latency)) => lat.push(latency),
                            Err(e) => panic!("victim tenant {tenant}: {e}"),
                        }
                    }
                    gate.finish(i);
                    lat
                })
            })
            .collect();

        let mut lat: Vec<u64> = Vec::with_capacity(victims * ops_per_victim);
        for h in victim_handles {
            lat.extend(h.join().expect("victim thread"));
        }
        stop.store(true, Ordering::Release);
        let hostile = hostile_handle
            .map(|h| h.join().expect("hostile thread"))
            .unwrap_or_default();
        (lat, hostile)
    });

    let tenants_json = rt.tenants.export_json();
    rt.shutdown();
    let mut lat = lat;
    lat.sort_unstable();
    RunResult {
        mode,
        victim_p50_vns: percentile(&lat, 0.50),
        victim_p99_vns: percentile(&lat, 0.99),
        victim_ops: lat.len() as u64,
        hostile,
        tenants_json,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (victims, ops_per_victim) = if smoke { (12, 40) } else { (99, 200) };

    let results: Vec<RunResult> = [Mode::Solo, Mode::ContendedNoQos, Mode::ContendedQos]
        .into_iter()
        .map(|m| run(m, victims, ops_per_victim))
        .collect();
    let find = |m: Mode| results.iter().find(|r| r.mode == m).expect("mode ran");
    let solo = find(Mode::Solo);
    let noqos = find(Mode::ContendedNoQos);
    let qos = find(Mode::ContendedQos);

    // Gate 1: with QoS on, the fleet's aggregate p99 stays near solo.
    // Target 2x; the hard ceiling is lenient so CI noise cannot flake.
    let isolation_ratio = qos.victim_p99_vns as f64 / solo.victim_p99_vns.max(1) as f64;
    let damage_ratio = noqos.victim_p99_vns as f64 / solo.victim_p99_vns.max(1) as f64;
    let target = 2.0;
    let required_max = 16.0;
    // Gate 2: the hostile tenant's admitted virtual throughput stays at
    // its bucket rate (burst slack + 2x leniency).
    let hostile_secs = qos.hostile.elapsed_vns as f64 / 1e9;
    let hostile_rate = qos.hostile.bytes as f64 / hostile_secs.max(1e-9);
    let hostile_capped = qos.hostile.bytes as f64
        <= 2.0 * (HOSTILE_RATE as f64 * hostile_secs + HOSTILE_BURST as f64);
    let pass = isolation_ratio <= required_max && hostile_capped;

    let runs: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "mode": r.mode.label(),
                "victim_ops": r.victim_ops,
                "victim_p50_vns": r.victim_p50_vns,
                "victim_p99_vns": r.victim_p99_vns,
                "hostile_ops": r.hostile.ops,
                "hostile_throttled": r.hostile.throttled,
                "hostile_bytes": r.hostile.bytes,
                "hostile_elapsed_vns": r.hostile.elapsed_vns,
                "tenants": r.tenants_json.clone(),
            })
        })
        .collect();
    let gate = serde_json::json!({
        "compare": "contended_qos victim p99 vs solo victim p99 (virtual ns)",
        "isolation_ratio": isolation_ratio,
        "damage_ratio_noqos": damage_ratio,
        "target": target,
        "required_max": required_max,
        "hostile_rate_bytes_per_vsec": hostile_rate,
        "hostile_bucket_rate": HOSTILE_RATE,
        "hostile_capped": hostile_capped,
        "pass": pass,
    });
    let doc = serde_json::json!({
        "benchmark": "tenant_isolation",
        "smoke": smoke,
        "victims": victims,
        "ops_per_victim": ops_per_victim,
        "victim_bytes": VICTIM_BYTES,
        "hostile_bytes_per_op": HOSTILE_BYTES,
        "runs": runs,
        "gate": gate,
    });
    let out = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write("BENCH_tenants.json", format!("{out}\n")).expect("write BENCH_tenants.json");

    println!(
        "== tenant_isolation ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>16} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "mode", "ops", "p50(vns)", "p99(vns)", "hostile", "throttled"
    );
    for r in &results {
        println!(
            "{:>16} {:>10} {:>12} {:>12} {:>10} {:>10}",
            r.mode.label(),
            r.victim_ops,
            r.victim_p50_vns,
            r.victim_p99_vns,
            r.hostile.ops,
            r.hostile.throttled
        );
    }
    println!(
        "isolation: qos/solo p99 {isolation_ratio:.2}x (target {target}x, ceiling {required_max}x); noqos/solo {damage_ratio:.2}x"
    );
    println!(
        "hostile admitted rate: {:.0} B/vs (bucket {HOSTILE_RATE} B/vs, capped: {hostile_capped})",
        hostile_rate
    );
    if !pass {
        eprintln!("FAIL: tenant isolation gate (see BENCH_tenants.json)");
        std::process::exit(1);
    }
}
