//! Fig. 8 / Table II — Developing & customizing I/O policies
//! (I/O schedulers).
//!
//! "We integrate the No-Op and blk-switch I/O schedulers into LabStor and
//! compare against their in-kernel counterparts. We deploy two
//! applications: throughput-bound (T-App, 64KB random writes, iodepth 32)
//! and latency-bound (L-App, 4KB random writes, iodepth 1). Both … have 8
//! threads. … We measure average and P99 latency when the L-Apps and
//! T-Apps are isolated and colocated."
//!
//! Paper (Table II, L-App latency): isolated — Linux-NoOp 110 µs,
//! Linux-Blk 120 µs, Lab-Blk 95 µs; colocated — Linux-NoOp 945 µs
//! (head-of-line blocking behind T-App requests in shared hardware
//! queues), Linux-Blk 106 µs, Lab-Blk 96 µs. LabStor beats the kernel
//! blk-switch by ~20% by skipping the syscall + block layer.
//!
//! The Runtime runs one worker per queue here so the scheduler effect is
//! isolated from worker scheduling (the paper's separate Fig. 5b topic).

use std::sync::Arc;

use labstor_bench::{fmt_ns, print_table, runtime_with_mods};
use labstor_core::{RoundRobinPolicy, StackSpec, VertexSpec};
use labstor_kernel::engines::{IoEngineKind, RawEngine};
use labstor_kernel::sched::{BlkSwitchSched, IoClass, NoopSched};
use labstor_kernel::{BlockLayer, KernelSched};
use labstor_mods::DeviceRegistry;
use labstor_sim::{DeviceKind, SimDevice};
use labstor_workloads::fio::{run_fio_gated, EngineTarget, FioJob, RwMode, StackTarget};
use labstor_workloads::stats::{Recorder, SkewGate};

const APP_THREADS: usize = 8;
const L_OPS: usize = 1200;
const T_OPS: usize = 400;

fn l_job(seed: u64) -> FioJob {
    FioJob {
        mode: RwMode::RandWrite,
        bs: 4096,
        ops: L_OPS,
        iodepth: 1,
        span_bytes: 64 << 20,
        seed,
    }
}

fn t_job(seed: u64) -> FioJob {
    FioJob {
        mode: RwMode::RandWrite,
        bs: 64 * 1024,
        ops: T_OPS,
        iodepth: 32,
        span_bytes: 512 << 20,
        seed,
    }
}

/// Kernel path: fio through libaio over a shared block layer with the
/// given in-kernel scheduler. Returns the L-App recorder.
fn kernel_run(sched: Arc<dyn KernelSched>, colocated: bool) -> Recorder {
    let dev = SimDevice::preset(DeviceKind::Nvme);
    let layer = BlockLayer::with_sched(dev, sched);
    let n_actors = APP_THREADS * if colocated { 2 } else { 1 };
    let gate = Arc::new(SkewGate::new(n_actors, 100_000));
    std::thread::scope(|s| {
        let t_handles: Vec<_> = if colocated {
            (0..APP_THREADS)
                .map(|t| {
                    let layer = layer.clone();
                    let gate = gate.clone();
                    s.spawn(move || {
                        let engine = RawEngine::new(IoEngineKind::Libaio, layer);
                        let mut target = EngineTarget::new(engine, t, IoClass::Throughput);
                        run_fio_gated(&t_job(100 + t as u64), &mut target, &gate, APP_THREADS + t)
                            .expect("t-app")
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        let l_handles: Vec<_> = (0..APP_THREADS)
            .map(|t| {
                let layer = layer.clone();
                let gate = gate.clone();
                s.spawn(move || {
                    let engine = RawEngine::new(IoEngineKind::Posix, layer);
                    // Colocated with the T-App on the same cores.
                    let mut target = EngineTarget::new(engine, t, IoClass::Latency);
                    run_fio_gated(&l_job(t as u64 + 1), &mut target, &gate, t).expect("l-app")
                })
            })
            .collect();
        let l = Recorder::merge(l_handles.into_iter().map(|h| h.join().expect("l thread")));
        for h in t_handles {
            let _ = h.join().expect("t thread");
        }
        l
    })
}

/// LabStor path: fio through async LabStacks [scheduler → kernel_driver];
/// one worker per queue so only hardware-queue policy differs.
fn lab_run(sched_type: &str, colocated: bool) -> Recorder {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let workers = APP_THREADS * if colocated { 2 } else { 1 };
    let rt = runtime_with_mods(&devices, workers, true);
    rt.set_policy(Arc::new(RoundRobinPolicy));
    let spec = StackSpec {
        mount: "blk::/s".into(),
        exec: "async".into(),
        authorized_uids: vec![0],
        labmods: vec![
            VertexSpec {
                uuid: format!("sched8_{sched_type}"),
                type_name: sched_type.into(),
                params: serde_json::json!({"device": "nvme0"}),
                outputs: vec![format!("drv8_{sched_type}")],
            },
            VertexSpec {
                uuid: format!("drv8_{sched_type}"),
                type_name: "kernel_driver".into(),
                params: serde_json::json!({"device": "nvme0"}),
                outputs: vec![],
            },
        ],
    };
    let stack = rt.mount_stack(&spec).expect("stack mounts");
    let n_actors = APP_THREADS * if colocated { 2 } else { 1 };
    let gate = Arc::new(SkewGate::new(n_actors, 100_000));
    let l = std::thread::scope(|s| {
        let t_handles: Vec<_> = if colocated {
            (0..APP_THREADS)
                .map(|t| {
                    let rt = rt.clone();
                    let stack = stack.clone();
                    let gate = gate.clone();
                    s.spawn(move || {
                        let client =
                            rt.connect(labstor_ipc::Credentials::new(100 + t as u32, 0, 0), 1);
                        let mut target = StackTarget::new(client, stack, t, "lab-t");
                        run_fio_gated(&t_job(100 + t as u64), &mut target, &gate, APP_THREADS + t)
                            .expect("t-app")
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        let l_handles: Vec<_> = (0..APP_THREADS)
            .map(|t| {
                let rt = rt.clone();
                let stack = stack.clone();
                let gate = gate.clone();
                s.spawn(move || {
                    let client = rt.connect(labstor_ipc::Credentials::new(t as u32 + 1, 0, 0), 1);
                    let mut target = StackTarget::new(client, stack, t, "lab-l");
                    run_fio_gated(&l_job(t as u64 + 1), &mut target, &gate, t).expect("l-app")
                })
            })
            .collect();
        let l = Recorder::merge(l_handles.into_iter().map(|h| h.join().expect("l thread")));
        for h in t_handles {
            let _ = h.join().expect("t thread");
        }
        l
    });
    rt.shutdown();
    l
}

fn main() {
    let mut rows = Vec::new();
    for colocated in [false, true] {
        let place = if colocated { "colocated" } else { "isolated" };
        let mut cases: Vec<(String, Recorder)> = Vec::new();
        type Case<'c> = (&'static str, Box<dyn Fn() -> Recorder + 'c>);
        let list: Vec<Case<'_>> = vec![
            (
                "linux-noop",
                Box::new(move || kernel_run(Arc::new(NoopSched), colocated)),
            ),
            (
                "linux-blk",
                Box::new(move || kernel_run(Arc::new(BlkSwitchSched::default()), colocated)),
            ),
            (
                "lab-noop",
                Box::new(move || lab_run("noop_sched", colocated)),
            ),
            (
                "lab-blk",
                Box::new(move || lab_run("blk_switch_sched", colocated)),
            ),
        ];
        for (name, f) in list {
            eprintln!("[fig8] start {place}/{name}");
            let rec = f();
            eprintln!("[fig8] done  {place}/{name}");
            cases.push((name.to_string(), rec));
        }
        for (name, rec) in cases {
            rows.push(vec![
                place.to_string(),
                name,
                fmt_ns(rec.mean_ns()),
                fmt_ns(rec.percentile_ns(99.0)),
            ]);
        }
    }
    print_table(
        "Fig 8 / Table II: L-App 4KB QD1 latency vs scheduler (T-App: 64KB QD32 x8 threads when colocated)",
        &["placement", "scheduler", "avg", "p99"],
        &rows,
    );
    println!("\npaper: isolated ~95-120µs everywhere; colocated linux-noop ~945µs (HoL),");
    println!("       blk-switch fixes it (~106µs); Lab variants ~20% under Linux");
}
