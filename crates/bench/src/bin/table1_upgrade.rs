//! Table I — live-upgrade cost.
//!
//! "We run an application which messages a dummy module 100,000 times
//! using a single thread. Roughly 20 seconds after the app is launched,
//! the dummy module is upgraded. … We vary the number of upgrades and
//! report the application's running time in seconds."
//!
//! Paper:
//! | upgrades      | 0     | 256   | 512    | 1024   |
//! | centralized   | 29.08 | 30.21 | 32.536 | 34.338 |
//! | decentralized | 29.08 | 30.51 | 33.56  | 35.81  |
//!
//! ≈5 ms per upgrade, dominated by reading the 1 MB module binary from
//! NVMe plus linking; state transfer is "a few bytes of pointers".

use labstor_bench::print_table;
use labstor_core::{Payload, RespPayload, StackSpec, UpgradeKind, UpgradeRequest, VertexSpec};
use labstor_mods::DeviceRegistry;
use labstor_sim::DeviceKind;

/// Per-message dummy work chosen so the 100k-message baseline lands near
/// the paper's 29 s (their driver does ~290 µs of work per message).
const MSG_WORK_NS: u64 = 287_000;
const MESSAGES: usize = 100_000;
/// Upgrades fire after this many messages (the paper's ~20 s mark ≈ 2/3
/// of the run).
const UPGRADE_AT: usize = MESSAGES * 2 / 3;

fn run_once(upgrades: usize, kind: UpgradeKind) -> f64 {
    let devices = DeviceRegistry::new();
    let code_dev = devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = labstor_bench::runtime_with_mods(&devices, 1, true); // 1 worker
    let spec = StackSpec {
        mount: "dummy::/".into(),
        exec: "async".into(),
        authorized_uids: vec![0],
        labmods: vec![VertexSpec {
            uuid: "dummy1".into(),
            type_name: "dummy".into(),
            params: serde_json::json!({"work_ns": MSG_WORK_NS}),
            outputs: vec![],
        }],
    };
    let stack = rt.mount_stack(&spec).expect("stack mounts");
    let mut client = rt.connect(labstor_ipc::Credentials::new(1, 0, 0), 1);

    for i in 0..MESSAGES {
        if i == UPGRADE_AT {
            for _ in 0..upgrades {
                rt.request_upgrade(UpgradeRequest {
                    uuid: "dummy1".into(),
                    type_name: "dummy".into(),
                    params: serde_json::json!({"work_ns": MSG_WORK_NS}),
                    kind,
                    code_bytes: 1 << 20, // "the dummy module is 1MB"
                    code_device: Some(code_dev.clone()),
                });
            }
        }
        let (resp, _) = client
            .execute(
                &stack,
                Payload::Dummy {
                    work_ns: MSG_WORK_NS,
                },
            )
            .expect("message");
        assert!(matches!(resp, RespPayload::Ok), "message {i} failed");
    }
    let runtime_s = client.ctx.now() as f64 / 1e9;
    // The upgraded module must have inherited the message count.
    let m = rt.mm.get("dummy1").expect("module");
    let d = m
        .as_any()
        .downcast_ref::<labstor_mods::dummy::DummyMod>()
        .expect("dummy");
    assert!(
        d.count() >= MESSAGES as u64 / 2,
        "state lost across upgrade: {}",
        d.count()
    );
    rt.shutdown();
    runtime_s
}

fn main() {
    let counts = [0usize, 256, 512, 1024];
    let mut rows = Vec::new();
    for kind in [UpgradeKind::Centralized, UpgradeKind::Decentralized] {
        let mut row = vec![format!("{kind:?}").to_lowercase()];
        for &n in &counts {
            row.push(format!("{:.2}", run_once(n, kind)));
        }
        rows.push(row);
    }
    print_table(
        &format!("Table I: app running time (s), {MESSAGES} messages, upgrades mid-run"),
        &["protocol", "0", "256", "512", "1024"],
        &rows,
    );
    println!("\npaper: centralized 29.08 / 30.21 / 32.54 / 34.34; decentralized 29.08 / 30.51 / 33.56 / 35.81");
}
