//! Idle-fleet reactor benchmark: 4096 bound queues, 8 active, emitting
//! `BENCH_reactor.json`.
//!
//! The completion-driven reactor's promise is that *bound but idle*
//! queues cost ~zero worker CPU: workers sleep on their assignment's
//! doorbell and wake only when a producer rings. This bench pits the two
//! waiting disciplines against each other over an identical harness —
//! 4 consumer threads, `total_queues` SPSC pairs split evenly, 8 queues
//! driven by a paced client, the same scan/complete loop — so the ratios
//! measure the idle arm and nothing else:
//!
//! * **reactor phase** — each consumer registers one [`Doorbell`] on all
//!   of its queues and runs the PR 9 `worker_loop` discipline: capture
//!   the epoch, scan, and `wait_past` when the pass found nothing (same
//!   25 ms safety net).
//! * **polling baseline** — the pre-reactor idle arm, verbatim:
//!   `Backoff::snooze` (spin, then yield the host core) after an empty
//!   pass.
//!
//! Worker CPU is read from `/proc/self/task/*/stat` (utime+stime of the
//! phase's consumer threads); the driver tight-spins on `reap` in both
//! phases so the roundtrip histogram isolates the worker-side
//! wake-to-dispatch cost. The interesting numbers are the ratios:
//! `cpu_ratio` (polling ticks / reactor ticks — the idle-fleet savings,
//! target ≥50×) and `wake_ratio` (reactor roundtrip p99 / polling
//! roundtrip p99 — the price of parking, target ≤1.2×). The CI gate
//! uses conservative floors (≥10× CPU, ≤3× wake p99) so host noise
//! cannot flake the build, mirroring the `bench_ipc` floor-vs-target
//! split.
//!
//! Usage: `bench_reactor [--smoke]` — `--smoke` shrinks the fleet and
//! the window for CI.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::utils::Backoff;
use labstor_ipc::{Doorbell, LaneKind, QueueFlags, QueuePair, QueueRole};
use labstor_sim::Ctx;

const WORKERS: usize = 4;
const ACTIVE_QUEUES: usize = 8;
const QUEUE_DEPTH: usize = 16;
/// The reactor workers' safety-net park bound (mirrors
/// `core::worker::PARK_SAFETY`).
const PARK_SAFETY: Duration = Duration::from_millis(25);
/// Gap between paced roundtrips: the active tenants are lightly loaded,
/// so worker CPU is dominated by how the consumers wait, not by work.
const PACE: Duration = Duration::from_millis(2);

/// Idle arm under test.
#[derive(Clone, Copy, PartialEq)]
enum WaitMode {
    /// PR 9 reactor: park on the per-worker doorbell.
    Doorbell,
    /// Pre-PR 9 polling: `Backoff::snooze` after an empty pass.
    Polling,
}

/// Sum utime+stime clock ticks of every thread whose name starts with
/// `prefix` (thread names land in the `comm` field of
/// `/proc/self/task/<tid>/stat`, truncated to 15 bytes).
fn thread_cpu_ticks(prefix: &str) -> u64 {
    let mut total = 0u64;
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    for task in tasks.flatten() {
        let Ok(stat) = std::fs::read_to_string(task.path().join("stat")) else {
            continue;
        };
        // comm is parenthesized and may itself contain spaces or parens;
        // parse from the last ')'.
        let (Some(open), Some(close)) = (stat.find('('), stat.rfind(')')) else {
            continue;
        };
        if !stat[open + 1..close].starts_with(prefix) {
            continue;
        }
        let fields: Vec<&str> = stat[close + 2..].split(' ').collect();
        // Fields after comm start at `state` (overall field 3): utime is
        // overall field 14 → index 11, stime 15 → 12.
        let utime: u64 = fields.get(11).and_then(|v| v.parse().ok()).unwrap_or(0);
        let stime: u64 = fields.get(12).and_then(|v| v.parse().ok()).unwrap_or(0);
        total += utime + stime;
    }
    total
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct PhaseResult {
    worker_cpu_ticks: u64,
    ops: usize,
    p50_ns: u64,
    p99_ns: u64,
}

/// Run one phase: `WORKERS` consumer threads (named `<prefix>-<i>`) over
/// `total_queues` SPSC pairs, waiting per `mode`; the driver paces
/// roundtrips across the first `ACTIVE_QUEUES` queues and tight-spins on
/// `reap` so the histogram captures worker-side dispatch latency.
fn run_phase(
    mode: WaitMode,
    prefix: &'static str,
    total_queues: usize,
    window: Duration,
    settle: Duration,
) -> PhaseResult {
    let qps: Vec<Arc<QueuePair<u64>>> = (0..total_queues)
        .map(|i| {
            Arc::new(QueuePair::with_lane(
                i as u64,
                QUEUE_DEPTH,
                QueueFlags {
                    ordered: true,
                    role: QueueRole::Primary,
                },
                LaneKind::Spsc,
            ))
        })
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let per_worker = total_queues.div_ceil(WORKERS);
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let mine: Vec<Arc<QueuePair<u64>>> = qps
                .iter()
                .skip(w * per_worker)
                .take(per_worker)
                .cloned()
                .collect();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name(format!("{prefix}-{w}"))
                .spawn(move || {
                    let bell = Arc::new(Doorbell::new());
                    if mode == WaitMode::Doorbell {
                        // The reactor's wake-set: this worker's bell on
                        // every assigned queue's SQ.
                        for q in &mine {
                            q.register_sq_bell(&bell);
                        }
                    }
                    let mut ctx = Ctx::new();
                    let backoff = Backoff::new();
                    while !stop.load(Ordering::Acquire) {
                        // Capture before the scan (doorbell protocol).
                        let epoch = bell.epoch();
                        let mut did_work = false;
                        for q in &mine {
                            while let Some(env) = q.consume(&mut ctx, 0) {
                                did_work = true;
                                q.complete(env.payload, ctx.now(), 0).unwrap();
                            }
                        }
                        if did_work {
                            backoff.reset();
                        } else {
                            match mode {
                                // PR 9 idle arm: park until a producer
                                // rings (safety-net bound as in
                                // worker_loop).
                                WaitMode::Doorbell => {
                                    bell.wait_past(epoch, PARK_SAFETY);
                                }
                                // Pre-PR 9 idle arm: spin, then yield.
                                WaitMode::Polling => backoff.snooze(),
                            }
                        }
                    }
                })
                .expect("spawn consumer")
        })
        .collect();

    std::thread::sleep(settle);

    let cpu0 = thread_cpu_ticks(prefix);
    let t0 = Instant::now();
    let mut ctx = Ctx::new();
    let mut lat: Vec<u64> = Vec::new();
    let mut next = 0u64;
    while t0.elapsed() < window {
        let qp = &qps[(next as usize) % ACTIVE_QUEUES];
        let op0 = Instant::now();
        qp.submit(next, ctx.now(), 1).unwrap();
        while qp.reap(&mut ctx, 1).is_none() {
            // Busy observer, but yield the core: the histogram should
            // time the worker's wake-to-dispatch, and on small hosts a
            // hard spin would make the woken worker wait out the
            // driver's scheduling quantum first.
            std::thread::yield_now();
        }
        lat.push(op0.elapsed().as_nanos() as u64);
        next += 1;
        std::thread::sleep(PACE);
    }
    let worker_cpu_ticks = thread_cpu_ticks(prefix) - cpu0;
    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().expect("consumer thread");
    }

    lat.sort_unstable();
    PhaseResult {
        worker_cpu_ticks,
        ops: lat.len(),
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (total_queues, window, settle) = if smoke {
        (512, Duration::from_millis(400), Duration::from_millis(100))
    } else {
        (4096, Duration::from_secs(2), Duration::from_millis(300))
    };

    let reactor = run_phase(
        WaitMode::Doorbell,
        "bellworker",
        total_queues,
        window,
        settle,
    );
    let polling = run_phase(
        WaitMode::Polling,
        "pollworker",
        total_queues,
        window,
        settle,
    );

    // Worker CPU savings of sleeping on doorbells vs scanning. A parked
    // reactor can legitimately read 0 ticks over the window; clamp the
    // denominator to one tick so the ratio stays finite.
    let cpu_ratio = polling.worker_cpu_ticks as f64 / reactor.worker_cpu_ticks.max(1) as f64;
    // Price of the park/wake path on an active queue's roundtrip tail.
    let wake_ratio = reactor.p99_ns as f64 / polling.p99_ns.max(1) as f64;

    let (cpu_floor, cpu_target) = (10.0, 50.0);
    let (wake_ceil, wake_target) = (3.0, 1.2);
    let pass = cpu_ratio >= cpu_floor && wake_ratio <= wake_ceil;

    let phase_json = |name: &str, r: &PhaseResult| {
        serde_json::json!({
            "phase": name,
            "workers": WORKERS,
            "bound_queues": total_queues,
            "active_queues": ACTIVE_QUEUES,
            "worker_cpu_ticks": r.worker_cpu_ticks,
            "ops": r.ops,
            "roundtrip_p50_ns": r.p50_ns,
            "roundtrip_p99_ns": r.p99_ns,
        })
    };
    let configs: Vec<serde_json::Value> = vec![
        phase_json("reactor", &reactor),
        phase_json("polling_baseline", &polling),
    ];
    let gate = serde_json::json!({
        "compare": "polling worker CPU / reactor worker CPU; reactor p99 / polling p99",
        "cpu_ratio": cpu_ratio,
        "cpu_required_min": cpu_floor,
        "cpu_target": cpu_target,
        "wake_p99_ratio": wake_ratio,
        "wake_required_max": wake_ceil,
        "wake_target": wake_target,
        "pass": pass,
    });
    let window_ms = window.as_millis() as u64;
    let pace_us = PACE.as_micros() as u64;
    let doc = serde_json::json!({
        "benchmark": "reactor_idle_fleet",
        "smoke": smoke,
        "window_ms": window_ms,
        "pace_us": pace_us,
        "configs": configs,
        "gate": gate,
    });
    let out = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write("BENCH_reactor.json", format!("{out}\n")).expect("write BENCH_reactor.json");

    println!(
        "== reactor_idle_fleet ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>18} {:>10} {:>8} {:>12} {:>12}",
        "phase", "cpu_ticks", "ops", "p50(ns)", "p99(ns)"
    );
    for (name, r) in [("reactor", &reactor), ("polling", &polling)] {
        println!(
            "{:>18} {:>10} {:>8} {:>12} {:>12}",
            name, r.worker_cpu_ticks, r.ops, r.p50_ns, r.p99_ns
        );
    }
    println!(
        "cpu ratio (polling/reactor): {cpu_ratio:.1}x (target {cpu_target}x, floor {cpu_floor}x)"
    );
    println!(
        "wake p99 ratio (reactor/polling): {wake_ratio:.2}x (target {wake_target}x, ceil {wake_ceil}x)"
    );
    if !pass {
        eprintln!(
            "FAIL: reactor idle-fleet gate (cpu_ratio >= {cpu_floor}, wake_ratio <= {wake_ceil})"
        );
        std::process::exit(1);
    }
}
