//! Fig. 6 — Storage interface performance.
//!
//! "LabStacks consisting only of DAX, SPDK or Kernel Driver LabMods are
//! compared to using POSIX I/O, POSIX AIO, libaio, and I/O Uring to write
//! directly to device files. We repeat all tests for various storage
//! hardware … We used a single thread and request sizes of 4KB and 128KB."
//!
//! Expected shape (paper): on NVMe at 4 KB, SPDK > Kernel Driver (+12%) >
//! io_uring/libaio (+15% below the Kernel Driver) > POSIX; POSIX AIO pays
//! 60–70% overhead. On HDD every interface ties. At 128 KB the gaps shrink
//! to ~6%.

use labstor_bench::{print_table, runtime_with_mods, LabVariant};
use labstor_core::{StackSpec, VertexSpec};
use labstor_kernel::engines::{IoEngineKind, RawEngine};
use labstor_kernel::sched::IoClass;
use labstor_kernel::BlockLayer;
use labstor_mods::DeviceRegistry;
use labstor_sim::{DeviceKind, SimDevice};
use labstor_workloads::fio::{run_fio, DaxTarget, EngineTarget, FioJob, RwMode, StackTarget};

fn job_for(kind: DeviceKind, bs: usize) -> FioJob {
    // Fewer ops on slow media keeps virtual spans comparable.
    let ops = match kind {
        DeviceKind::Hdd => 80,
        DeviceKind::SataSsd => 400,
        _ => 1000,
    };
    FioJob {
        mode: RwMode::RandWrite,
        bs,
        ops,
        iodepth: 1,
        span_bytes: 128 << 20,
        seed: 7,
    }
}

/// One LabStor driver-only stack measurement.
fn lab_driver_iops(driver: &str, kind: DeviceKind, bs: usize) -> f64 {
    let devices = DeviceRegistry::new();
    devices.add_preset("dev0", kind);
    devices.add_pmem("pmemdax0", labstor_sim::PmemDevice::preset());
    let rt = runtime_with_mods(&devices, 1, false);
    let spec = StackSpec {
        mount: format!("blk::/{driver}"),
        exec: "sync".into(), // client-side data path, as in the paper's test
        authorized_uids: vec![0],
        labmods: vec![VertexSpec {
            uuid: format!("only_{driver}"),
            type_name: driver.into(),
            params: serde_json::json!({"device": if driver == "dax" { "pmemdax0" } else { "dev0" }}),
            outputs: vec![],
        }],
    };
    let stack = rt.mount_stack(&spec).expect("driver stack mounts");
    let client = rt.connect(labstor_ipc::Credentials::new(1, 0, 0), 1);
    let mut target = StackTarget::new(client, stack, 0, driver);
    let rec = run_fio(&job_for(kind, bs), &mut target).expect("fio over stack");
    rt.shutdown();
    rec.ops_per_sec()
}

fn engine_iops(kind: IoEngineKind, device: DeviceKind, bs: usize) -> f64 {
    let dev = SimDevice::preset(device);
    let mut target = EngineTarget::new(
        RawEngine::new(kind, BlockLayer::new(dev)),
        0,
        IoClass::Latency,
    );
    run_fio(&job_for(device, bs), &mut target)
        .expect("fio over engine")
        .ops_per_sec()
}

fn main() {
    let _ = LabVariant::all(); // shared lib linkage sanity
    for bs in [4096usize, 128 * 1024] {
        let mut rows = Vec::new();
        for device in [
            DeviceKind::Hdd,
            DeviceKind::SataSsd,
            DeviceKind::Nvme,
            DeviceKind::Pmem,
        ] {
            let mut results: Vec<(String, f64)> = Vec::new();
            for kind in IoEngineKind::all() {
                results.push((kind.label().to_string(), engine_iops(kind, device, bs)));
            }
            results.push((
                "lab-kdrv".into(),
                lab_driver_iops("kernel_driver", device, bs),
            ));
            if device == DeviceKind::Nvme {
                results.push(("lab-spdk".into(), lab_driver_iops("spdk", device, bs)));
            }
            if device == DeviceKind::Pmem {
                let devices = DeviceRegistry::new();
                devices.add_pmem("pmemdax0", labstor_sim::PmemDevice::preset());
                let mut target = DaxTarget::new(devices.pmem("pmemdax0").unwrap());
                let rec = run_fio(&job_for(device, bs), &mut target).expect("fio over dax");
                results.push(("lab-dax".into(), rec.ops_per_sec()));
            }
            let posix = results
                .iter()
                .find(|(n, _)| n == "posix")
                .map(|(_, v)| *v)
                .unwrap_or(1.0);
            for (name, iops) in results {
                rows.push(vec![
                    device.label().to_string(),
                    name,
                    format!("{iops:.0}"),
                    format!("{:.2}", iops / posix),
                ]);
            }
        }
        print_table(
            &format!(
                "Fig 6: storage API performance, randwrite {}B QD1 (IOPS normalized to posix)",
                bs
            ),
            &["device", "api", "iops", "vs-posix"],
            &rows,
        );
    }
}
