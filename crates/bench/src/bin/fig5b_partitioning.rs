//! Fig. 5b — Work orchestration: request partitioning.
//!
//! "We deploy two LabStacks: latency-sensitive (L) and compressor (C).
//! … We run a metadata-intensive workload (L-App) which creates 5,000
//! files per-thread over the L-LabStack, and a large I/O workload (C-App)
//! which writes [32 MB requests] through the C-LabStack. Both the number
//! of L-App and C-App threads are fixed at 8. We vary the number of
//! Runtime workers to be between 1 and 8. We compare two work
//! orchestration policies: round-robin (RR) and dynamic."
//!
//! Paper: RR achieves the best bandwidth but terrible L-latency (the
//! L-App waits behind ~20 ms compressions); dynamic gives the L-App its
//! own workers — microsecond latency — at a bandwidth cost that drops
//! from 30% to 6% as workers grow from 1 to 8.
//!
//! (Scaled: 800 creates and 6×32 MB writes per thread.)

use std::sync::Arc;

use labstor_bench::{fmt_ns, print_table, runtime_with_mods};
use labstor_core::{BlockOp, OrchestratorPolicy};
use labstor_core::{FsOp, Payload, RespPayload, RoundRobinPolicy, StackSpec, VertexSpec};
use labstor_mods::DeviceRegistry;
use labstor_sim::DeviceKind;
use labstor_workloads::stats::Recorder;

const L_THREADS: usize = 8;
const C_THREADS: usize = 8;
/// Both apps run for this much virtual time (the paper runs both apps
/// continuously for one minute; 0.6 s preserves the steady-state mix).
const DURATION_NS: u64 = 600_000_000;
/// L-app op cap per thread: enough for a stable latency estimate without
/// millions of real round trips once the dynamic policy gets latency
/// down to microseconds.
const L_OPS_CAP: usize = 1_500;
const C_REQ_BYTES: usize = 32 << 20;

fn stacks() -> (StackSpec, StackSpec) {
    let l = StackSpec {
        mount: "fs::/l".into(),
        exec: "async".into(),
        authorized_uids: vec![0],
        labmods: vec![
            VertexSpec {
                uuid: "l_fs".into(),
                type_name: "labfs".into(),
                params: serde_json::json!({"device": "nvme0", "workers": 8}),
                outputs: vec!["l_lru".into()],
            },
            VertexSpec {
                uuid: "l_lru".into(),
                type_name: "lru_cache".into(),
                params: serde_json::json!({"capacity_bytes": 16 << 20}),
                outputs: vec!["l_sched".into()],
            },
            VertexSpec {
                uuid: "l_sched".into(),
                type_name: "noop_sched".into(),
                params: serde_json::Value::Null,
                outputs: vec!["l_drv".into()],
            },
            VertexSpec {
                uuid: "l_drv".into(),
                type_name: "kernel_driver".into(),
                params: serde_json::json!({"device": "nvme0"}),
                outputs: vec![],
            },
        ],
    };
    let c = StackSpec {
        mount: "blk::/c".into(),
        exec: "async".into(),
        authorized_uids: vec![0],
        labmods: vec![
            VertexSpec {
                uuid: "c_zip".into(),
                type_name: "compress".into(),
                params: serde_json::Value::Null,
                outputs: vec!["c_sched".into()],
            },
            VertexSpec {
                uuid: "c_sched".into(),
                type_name: "noop_sched".into(),
                params: serde_json::Value::Null,
                outputs: vec!["c_drv".into()],
            },
            VertexSpec {
                uuid: "c_drv".into(),
                type_name: "kernel_driver".into(),
                params: serde_json::json!({"device": "nvme0"}),
                outputs: vec![],
            },
        ],
    };
    (l, c)
}

/// Returns (L-App mean latency ns, C-App bandwidth MB/s).
fn run(policy: Arc<dyn OrchestratorPolicy>, workers: usize) -> (u64, f64) {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = runtime_with_mods(&devices, workers, true);
    rt.set_policy(policy);
    let (l_spec, c_spec) = stacks();
    let l_stack = rt.mount_stack(&l_spec).expect("L stack");
    let c_stack = rt.mount_stack(&c_spec).expect("C stack");

    // Compressible payload (the paper's VPIC-style data).
    let payload: Vec<u8> =
        std::iter::repeat_n(b"x=1.25 y=2.50 z=3.75 vx=0.1 ", C_REQ_BYTES / 28 + 1)
            .flatten()
            .copied()
            .take(C_REQ_BYTES)
            .collect();
    let payload = Arc::new(payload);

    let (l_recs, c_recs): (Vec<Recorder>, Vec<Recorder>) = std::thread::scope(|s| {
        let l_handles: Vec<_> = (0..L_THREADS)
            .map(|t| {
                let rt = rt.clone();
                let stack = l_stack.clone();
                s.spawn(move || {
                    let mut client =
                        rt.connect(labstor_ipc::Credentials::new(t as u32 + 1, 0, 0), 1);
                    client.core = t;
                    let mut rec = Recorder::new(client.ctx.now());
                    let mut i = 0usize;
                    while client.ctx.now() < DURATION_NS && i < L_OPS_CAP {
                        let (resp, latency) = client
                            .execute(
                                &stack,
                                Payload::Fs(FsOp::Create {
                                    path: format!("/t{t}_f{i}"),
                                    mode: 0o644,
                                }),
                            )
                            .expect("create");
                        assert!(
                            matches!(resp, RespPayload::Ino(_)),
                            "create failed: {resp:?}"
                        );
                        rec.record(latency, 0);
                        i += 1;
                    }
                    rec.end_vt = client.ctx.now();
                    rec
                })
            })
            .collect();
        let c_handles: Vec<_> = (0..C_THREADS)
            .map(|t| {
                let rt = rt.clone();
                let stack = c_stack.clone();
                let payload = payload.clone();
                s.spawn(move || {
                    let mut client =
                        rt.connect(labstor_ipc::Credentials::new(100 + t as u32, 0, 0), 1);
                    client.core = L_THREADS + t;
                    let mut rec = Recorder::new(client.ctx.now());
                    let mut i = 0usize;
                    while client.ctx.now() < DURATION_NS {
                        // Rotate over device-sized slots (stored data is
                        // compressed; the address range just needs to fit).
                        let slot = (t * 7 + i % 7) % 56;
                        let lba = (slot * C_REQ_BYTES / labstor_sim::SECTOR_SIZE) as u64;
                        let (resp, latency) = client
                            .execute(
                                &stack,
                                Payload::Block(BlockOp::Write {
                                    lba,
                                    data: payload.as_ref().clone(),
                                }),
                            )
                            .expect("c write");
                        assert!(resp.is_ok(), "c write failed: {resp:?}");
                        rec.record(latency, C_REQ_BYTES);
                        i += 1;
                    }
                    rec.end_vt = client.ctx.now();
                    rec
                })
            })
            .collect();
        (
            l_handles
                .into_iter()
                .map(|h| h.join().expect("l thread"))
                .collect(),
            c_handles
                .into_iter()
                .map(|h| h.join().expect("c thread"))
                .collect(),
        )
    });
    rt.shutdown();
    let l = Recorder::merge(l_recs);
    let c = Recorder::merge(c_recs);
    (l.mean_ns(), c.mb_per_sec())
}

fn main() {
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        for (name, policy) in [
            (
                "rr",
                Arc::new(RoundRobinPolicy) as Arc<dyn OrchestratorPolicy>,
            ),
            ("dynamic", Arc::new(labstor_core::DynamicPolicy::default())),
        ] {
            let (l_lat, c_bw) = run(policy, workers);
            rows.push(vec![
                workers.to_string(),
                name.to_string(),
                fmt_ns(l_lat),
                format!("{c_bw:.0}"),
            ]);
        }
    }
    print_table(
        "Fig 5b: request partitioning (8 L-threads create files, 8 C-threads write 32MB compressed, 1s virtual)",
        &["workers", "policy", "L-lat(avg)", "C-BW MB/s"],
        &rows,
    );
    println!("\npaper: RR = best bandwidth, ~20ms-class L latency (HoL behind compressions);");
    println!("       dynamic = µs-class L latency, bandwidth cost 30% → 6% as workers 1 → 8");
}
