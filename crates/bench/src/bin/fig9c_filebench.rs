//! Fig. 9c — Cloud workloads (Filebench).
//!
//! "For the filebench workload, we ran varmail, webserver, webproxy, and
//! fileserver using the default configurations over NVMe and emulated
//! PMEM. The Runtime is configured with 8 workers. We compared EXT4, XFS,
//! and F2FS against three LabStacks."
//!
//! Paper: "LabStacks containing LabFS perform markedly better than the
//! alternatives (up to 2.5x throughput) by reducing context switching and
//! the I/O path length. The main exception is fileservers, which performs
//! many large I/Os and is thus dominated by I/O time." PMEM trends match
//! NVMe.

use labstor_bench::{labfs_stack_spec, print_table, runtime_with_mods, LabVariant};
use labstor_kernel::fs::{FsProfile, KernelFs};
use labstor_kernel::vfs::Vfs;
use labstor_kernel::BlockLayer;
use labstor_mods::DeviceRegistry;
use labstor_sim::{DeviceKind, SimDevice};
use labstor_workloads::filebench::{run_filebench, FilebenchJob, Personality};
use labstor_workloads::stats::Recorder;
use labstor_workloads::targets::{FsTarget, KernelFsTarget, LabStorFsTarget};

const THREADS: usize = 4;
const ITERATIONS: usize = 60;

fn run_threads(
    mut make_target: impl FnMut(usize) -> Box<dyn FsTarget + Send>,
    p: Personality,
) -> f64 {
    // Interleave thread flows so shared-lock contention lands like the
    // concurrent original (one flow at a time per thread round-robin would
    // be too coarse; per-thread full runs too serial — run flows striped).
    let mut recorders = Vec::new();
    let mut targets: Vec<Box<dyn FsTarget + Send>> = (0..THREADS).map(&mut make_target).collect();
    let handles: Vec<Recorder> = std::thread::scope(|s| {
        targets
            .drain(..)
            .enumerate()
            .map(|(t, mut target)| {
                s.spawn(move || {
                    let job = FilebenchJob {
                        personality: p,
                        iterations: ITERATIONS,
                        thread: t,
                        seed: 31 + t as u64,
                    };
                    run_filebench(&job, target.as_mut()).expect("filebench")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });
    recorders.extend(handles);
    Recorder::merge(recorders).ops_per_sec()
}

fn kernel_backend(profile: FsProfile, device: DeviceKind, p: Personality) -> f64 {
    let vfs = Vfs::new();
    let dev = SimDevice::preset(device);
    let label = profile.name;
    vfs.mount(
        "/mnt",
        KernelFs::with_dirty_threshold(profile, BlockLayer::new(dev), 128 << 20, 8 << 20),
    );
    run_threads(
        move |t| {
            Box::new(KernelFsTarget::new(
                vfs.clone(),
                "/mnt",
                label,
                t as u32 + 1,
                t,
            )) as Box<dyn FsTarget + Send>
        },
        p,
    )
}

fn lab_backend(variant: LabVariant, device: DeviceKind, p: Personality) -> f64 {
    let devices = DeviceRegistry::new();
    devices.add_preset("dev0", device);
    let rt = runtime_with_mods(&devices, 8, true); // paper: 8 workers
    let spec = labfs_stack_spec(variant, "fs::/b", "dev0", 8, 128 << 20);
    rt.mount_stack(&spec).expect("stack mounts");
    let label = variant.label("labfs");

    run_threads(
        move |t| {
            let mut client = rt.connect(labstor_ipc::Credentials::new(t as u32 + 1, 0, 0), 1);
            client.core = t;
            Box::new(LabStorFsTarget::new(client, "fs::/b", &label)) as Box<dyn FsTarget + Send>
        },
        p,
    )
}

fn main() {
    for device in [DeviceKind::Nvme, DeviceKind::Pmem] {
        let mut rows = Vec::new();
        for p in Personality::all() {
            let ext4 = kernel_backend(FsProfile::ext4_like(), device, p);
            let xfs = kernel_backend(FsProfile::xfs_like(), device, p);
            let f2fs = kernel_backend(FsProfile::f2fs_like(), device, p);
            let all = lab_backend(LabVariant::All, device, p);
            let min = lab_backend(LabVariant::Min, device, p);
            let d = lab_backend(LabVariant::Decentralized, device, p);
            rows.push(vec![
                p.label().to_string(),
                format!("{ext4:.0}"),
                format!("{xfs:.0}"),
                format!("{f2fs:.0}"),
                format!("{all:.0}"),
                format!("{min:.0}"),
                format!("{d:.0}"),
                format!("{:.2}x", d / ext4),
            ]);
        }
        print_table(
            &format!(
                "Fig 9c: Filebench flows/s on {} ({THREADS} threads x {ITERATIONS} flows)",
                device.label()
            ),
            &[
                "workload",
                "ext4",
                "xfs",
                "f2fs",
                "labfs-all",
                "labfs-min",
                "labfs-d",
                "best/ext4",
            ],
            &rows,
        );
    }
    println!("\npaper: LabFS stacks up to 2.5x on varmail/webserver/webproxy; fileserver ~parity");
}
