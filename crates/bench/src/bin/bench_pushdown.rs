//! Pushdown vs client-side filtering benchmark, emitting
//! `BENCH_pushdown.json`.
//!
//! The PR 10 experiment: a filtered scan over a 256 KiB file of 64-byte
//! records at 1% selectivity (one key value out of [`KEY_SPACE`]),
//! two ways:
//!
//! - `client_scan` — the legacy shape: `read(2)` ships every page to the
//!   client (one counted copy-out), which then runs the predicate
//!   itself (charged at `cost::SCAN_NS_PER_KB` of virtual time).
//! - `pushdown` — a verified count program attached to a single
//!   `ReadFiltered`: the LabFS LabMod runs the filter in place over
//!   cached page slices and ships back a 32-byte aggregate riding
//!   inline in the response envelope.
//!
//! Also the CI regression gate for the pushdown subsystem (DESIGN.md
//! §14): the run fails (exit 1) unless pushdown moves ≥ 100× fewer
//! payload bytes over IPC, is ≥ 3× faster in modeled virtual time, and
//! performs **zero** counted payload copies on its hit path — and both
//! sides must agree with the host-side reference count exactly.
//!
//! Usage: `bench_pushdown [--smoke]` — `--smoke` shrinks the repetition
//! count for CI (the dataset stays at the paper-shaped 256 KiB).

use std::sync::Arc;

use labstor_bench::{labfs_stack_spec, runtime_with_mods, LabVariant};
use labstor_ipc::Credentials;
use labstor_kernel::cost;
use labstor_mods::{DeviceRegistry, FilteredRead, GenericFs};
use labstor_pushdown::Program;
use labstor_sim::DeviceKind;
use labstor_workloads::pushdown::{
    client_scan_count, make_records, KEY_OFF, KEY_SPACE, RECORD_LEN,
};

/// Dataset size: 256 KiB — 64 file blocks of 64 64-byte records.
const DATA_BYTES: usize = 256 * 1024;
/// The key value the filter selects: 1/[`KEY_SPACE`] of the records.
const MATCH_KEY: u32 = 7;
/// File block size (mirrors `labstor_mods::labfs::FS_BLOCK`).
const PAGE: usize = 4096;

struct SideResult {
    /// Virtual ns per scan, averaged over repetitions.
    vns_per_scan: u64,
    /// Payload bytes shipped over IPC per scan.
    ipc_bytes: u64,
    /// Counted payload copies per scan (from the global copy counter).
    copies: u64,
    /// Matches reported.
    matches: u64,
    /// Pushdown fuel retired per scan (0 for the client side).
    fuel: u64,
}

fn write_dataset(fs: &mut GenericFs, path: &str, data: &[u8]) -> i32 {
    let fd = fs.open(path, true, true).expect("open dataset");
    for page in data.chunks(PAGE) {
        let mut buf = labstor_ipc::default_pool()
            .alloc(page.len())
            .expect("pool slot");
        assert!(buf.write_with(|b| b.copy_from_slice(page)));
        assert_eq!(fs.write_buf(fd, buf).expect("write page"), page.len());
    }
    fs.fsync(fd).expect("fsync dataset");
    fd
}

/// The legacy client: ship everything, scan at home.
fn run_client_scan(fs: &mut GenericFs, fd: i32, reps: usize, expect: u64) -> SideResult {
    let mut vns_total = 0u64;
    let mut copies_total = 0u64;
    let mut matches = 0u64;
    for _ in 0..reps {
        fs.seek(fd, 0).expect("seek");
        let copies_before = labstor_ipc::payload_copies();
        let t0 = fs.client().ctx.now();
        let data = fs.read(fd, DATA_BYTES).expect("read dataset");
        assert_eq!(data.len(), DATA_BYTES);
        // The predicate runs client-side over every shipped byte,
        // charged at the calibrated scan rate.
        cost::scan(&mut fs.client_mut().ctx, data.len());
        matches = client_scan_count(&data, MATCH_KEY);
        vns_total += fs.client().ctx.now() - t0;
        copies_total += labstor_ipc::payload_copies() - copies_before;
        assert_eq!(matches, expect, "client scan disagrees with reference");
    }
    SideResult {
        vns_per_scan: vns_total / reps as u64,
        ipc_bytes: DATA_BYTES as u64,
        copies: copies_total / reps as u64,
        matches,
        fuel: 0,
    }
}

/// The pushdown client: ship the program down, the count back up.
fn run_pushdown(fs: &mut GenericFs, fd: i32, reps: usize, expect: u64) -> SideResult {
    let prog = Arc::new(
        Program::count_where_u32_eq(RECORD_LEN, KEY_OFF as u16, MATCH_KEY)
            .verify()
            .expect("count program verifies"),
    );
    let mut vns_total = 0u64;
    let mut copies_total = 0u64;
    let mut matches = 0u64;
    let mut fuel = 0u64;
    for _ in 0..reps {
        fs.seek(fd, 0).expect("seek");
        let copies_before = labstor_ipc::payload_copies();
        let t0 = fs.client().ctx.now();
        let reply = fs
            .read_filtered(fd, DATA_BYTES, prog.clone())
            .expect("pushdown read");
        vns_total += fs.client().ctx.now() - t0;
        copies_total += labstor_ipc::payload_copies() - copies_before;
        let agg = match reply {
            FilteredRead::Agg(agg) => agg,
            other => panic!("count program must return an aggregate, got {other:?}"),
        };
        assert_eq!(agg.records, (DATA_BYTES / RECORD_LEN) as u64);
        matches = agg.matches;
        fuel = agg.fuel_used;
        assert_eq!(matches, expect, "pushdown disagrees with reference");
    }
    SideResult {
        vns_per_scan: vns_total / reps as u64,
        ipc_bytes: labstor_pushdown::AggReply::LEN as u64,
        copies: copies_total / reps as u64,
        matches,
        fuel,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 2 } else { 8 };

    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = runtime_with_mods(&devices, 2, true);
    // Cache sized to hold the whole dataset: both sides scan warm pages,
    // so the comparison isolates the data movement, not the device.
    let spec = labfs_stack_spec(LabVariant::Min, "fs::/pd", "nvme0", 2, 2 * DATA_BYTES);
    rt.mount_stack(&spec).expect("stack mounts");
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));

    let data = make_records(DATA_BYTES / RECORD_LEN);
    let expect = client_scan_count(&data, MATCH_KEY);
    assert_eq!(
        expect,
        (DATA_BYTES / RECORD_LEN / KEY_SPACE as usize) as u64 + 1,
        "1% selectivity shape"
    );
    let fd = write_dataset(&mut fs, "fs::/pd/records.bin", &data);

    // Warm the cache once on each path before measuring.
    fs.seek(fd, 0).expect("seek");
    let _ = fs.read(fd, DATA_BYTES).expect("warm read");

    let client = run_client_scan(&mut fs, fd, reps, expect);
    let pushdown = run_pushdown(&mut fs, fd, reps, expect);
    rt.shutdown();

    // Gate 1: pushdown ships ≥ 100× fewer payload bytes over IPC.
    let bytes_ratio = client.ipc_bytes as f64 / pushdown.ipc_bytes.max(1) as f64;
    // Gate 2: ≥ 3× modeled speedup at 1% selectivity.
    let speedup = client.vns_per_scan as f64 / pushdown.vns_per_scan.max(1) as f64;
    // Gate 3: zero counted payload copies on the pushdown hit path.
    let zero_copy = pushdown.copies == 0;
    let pass = bytes_ratio >= 100.0 && speedup >= 3.0 && zero_copy;

    let client_run = serde_json::json!({
        "mode": "client_scan",
        "vns_per_scan": client.vns_per_scan,
        "ipc_payload_bytes": client.ipc_bytes,
        "payload_copies": client.copies,
    });
    let pushdown_run = serde_json::json!({
        "mode": "pushdown",
        "vns_per_scan": pushdown.vns_per_scan,
        "ipc_payload_bytes": pushdown.ipc_bytes,
        "payload_copies": pushdown.copies,
        "fuel_per_scan": pushdown.fuel,
    });
    let gate = serde_json::json!({
        "compare": "client_scan vs pushdown over 256 KiB at 1% selectivity",
        "bytes_ratio": bytes_ratio,
        "bytes_ratio_min": 100.0,
        "speedup": speedup,
        "speedup_min": 3.0,
        "pushdown_payload_copies": pushdown.copies,
        "pass": pass,
    });
    let doc = serde_json::json!({
        "benchmark": "pushdown_filtered_scan",
        "smoke": smoke,
        "data_bytes": DATA_BYTES,
        "record_len": RECORD_LEN,
        "selectivity": 1.0 / KEY_SPACE as f64,
        "matches": pushdown.matches,
        "reps": reps,
        "runs": vec![client_run, pushdown_run],
        "gate": gate,
    });
    let out = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write("BENCH_pushdown.json", format!("{out}\n")).expect("write BENCH_pushdown.json");

    println!(
        "== pushdown_filtered_scan ({}) ==",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>12} {:>14} {:>14} {:>8} {:>10}",
        "mode", "vns/scan", "ipc bytes", "copies", "fuel"
    );
    for (label, r) in [("client_scan", &client), ("pushdown", &pushdown)] {
        println!(
            "{:>12} {:>14} {:>14} {:>8} {:>10}",
            label, r.vns_per_scan, r.ipc_bytes, r.copies, r.fuel
        );
    }
    println!(
        "bytes over IPC: {bytes_ratio:.0}x fewer (floor 100x); modeled speedup: {speedup:.2}x (floor 3x); pushdown copies: {}",
        pushdown.copies
    );
    if !pass {
        eprintln!("FAIL: pushdown gate (see BENCH_pushdown.json)");
        std::process::exit(1);
    }
}
