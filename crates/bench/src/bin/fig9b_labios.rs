//! Fig. 9b — LABIOS distributed object store backends.
//!
//! "We measured the I/O bandwidth and throughput of LABIOS Workers …
//! a workload which triggers LABIOS to generate 8KB I/Os. Typically,
//! LABIOS stores labels by translating them to a UNIX file … (fopen(),
//! fseek(), fwrite(), fclose()). … LabKVS simply performs put/get, which
//! reduces the number of syscalls from 4 down to 1."
//!
//! Paper: filesystem backends degrade ≥12% vs LabKVS on NVMe and PMEM;
//! relaxing access control buys up to another 16%.

use labstor_bench::{fmt_ns, labkvs_stack_spec, print_table, runtime_with_mods, LabVariant};
use labstor_kernel::fs::{FsProfile, KernelFs};
use labstor_kernel::vfs::Vfs;
use labstor_kernel::BlockLayer;
use labstor_mods::generic::GenericKvs;
use labstor_mods::DeviceRegistry;
use labstor_sim::{DeviceKind, SimDevice};
use labstor_workloads::labios::{run_file_backend, run_kvs_backend, LabiosJob};
use labstor_workloads::targets::KernelFsTarget;

const LABELS: usize = 3000;

fn kernel_backend(profile: FsProfile, device: DeviceKind) -> (String, f64, u64) {
    let vfs = Vfs::new();
    let dev = SimDevice::preset(device);
    let name = profile.name;
    // Sustained-write regime: a low dirty threshold keeps the path
    // device-bound, like the paper's long-running workers.
    vfs.mount(
        "/mnt",
        KernelFs::with_dirty_threshold(profile, BlockLayer::new(dev), 64 << 20, 256 << 10),
    );
    let mut target = KernelFsTarget::new(vfs, "/mnt", name, 1, 0);
    let rec = run_file_backend(&LabiosJob::paper(LABELS), &mut target).expect("file backend");
    (name.to_string(), rec.ops_per_sec(), rec.mean_ns())
}

fn labkvs_backend(variant: LabVariant, device: DeviceKind) -> (String, f64, u64) {
    let devices = DeviceRegistry::new();
    devices.add_preset("dev0", device);
    // Single worker, single client thread — the paper's configuration.
    let rt = runtime_with_mods(&devices, 1, true);
    let spec = labkvs_stack_spec(variant, "/", "dev0", 4);
    rt.mount_stack(&spec).expect("kvs stack");
    let client = rt.connect(labstor_ipc::Credentials::new(1, 0, 0), 1);
    let mut kvs = GenericKvs::new(client);
    let rec = run_kvs_backend(&LabiosJob::paper(LABELS), &mut kvs).expect("kvs backend");
    rt.shutdown();
    (variant.label("labkvs"), rec.ops_per_sec(), rec.mean_ns())
}

fn main() {
    let mut rows = Vec::new();
    for device in [DeviceKind::Nvme, DeviceKind::Pmem] {
        let mut results: Vec<(String, f64, u64)> = vec![
            kernel_backend(FsProfile::ext4_like(), device),
            kernel_backend(FsProfile::xfs_like(), device),
            kernel_backend(FsProfile::f2fs_like(), device),
            labkvs_backend(LabVariant::All, device),
            labkvs_backend(LabVariant::Min, device),
            labkvs_backend(LabVariant::Decentralized, device),
        ];
        let base = results[0].1;
        for (name, ops, mean) in results.drain(..) {
            rows.push(vec![
                device.label().to_string(),
                name,
                format!("{:.0}", ops / 1000.0),
                fmt_ns(mean),
                format!("{:+.0}%", (ops - base) / base * 100.0),
            ]);
        }
    }
    print_table(
        &format!("Fig 9b: LABIOS worker storing {LABELS} 8KB labels (throughput kops/s)"),
        &["device", "backend", "klabels/s", "mean-lat", "vs-ext4"],
        &rows,
    );
    println!("\npaper: FS backends ≥12% below LabKVS; relaxing access control adds up to 16%");
}
