//! Fig. 5a — Work orchestration: dynamic CPU allocation.
//!
//! "We run a workload where each client thread randomly writes 1GB of
//! data with 4KB request sizes and vary the number of clients (between 1
//! and 16). The LabStack tested uses no-op scheduling with Kernel Driver
//! LabMod over NVMe. We compare three worker configurations: 1 worker,
//! 8 workers, and a dynamic number of workers."
//!
//! Paper: with ≤2 clients a single worker saturates the load; past 4
//! clients it bottlenecks (−50% IOPS). 8 workers give maximum performance
//! at 25% higher CPU than the dynamic policy, which only needs ~4 cores;
//! at 16 clients dynamic ≈ 8 workers in both IOPS and CPU.
//!
//! (Scaled: 32 MB per client instead of 1 GB — saturation depends on
//! rates, not totals.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use labstor_bench::{print_table, runtime_with_mods};
use labstor_core::{RoundRobinPolicy, StackSpec, VertexSpec};
use labstor_mods::DeviceRegistry;
use labstor_sim::DeviceKind;
use labstor_workloads::fio::{run_fio, FioJob, RwMode, StackTarget};
use labstor_workloads::stats::Recorder;

const OPS_PER_CLIENT: usize = 8192; // 32 MB of 4 KB writes
const CLIENT_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

enum WorkerCfg {
    Static(usize),
    Dynamic(usize),
}

impl WorkerCfg {
    fn label(&self) -> String {
        match self {
            WorkerCfg::Static(n) => format!("{n}-worker"),
            WorkerCfg::Dynamic(n) => format!("dynamic(max {n})"),
        }
    }
}

/// Returns (aggregate IOPS, average active worker cores).
fn run(cfg: &WorkerCfg, clients: usize) -> (f64, f64) {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let max_workers = match cfg {
        WorkerCfg::Static(n) | WorkerCfg::Dynamic(n) => *n,
    };
    let rt = runtime_with_mods(&devices, max_workers, true);
    if let WorkerCfg::Static(_) = cfg {
        // Fixed worker pool: plain striping, no scaling decisions.
        rt.set_policy(Arc::new(RoundRobinPolicy));
    }
    let spec = StackSpec {
        mount: "blk::/w".into(),
        exec: "async".into(),
        authorized_uids: vec![0],
        labmods: vec![
            VertexSpec {
                uuid: "sched5a".into(),
                type_name: "noop_sched".into(),
                params: serde_json::Value::Null,
                outputs: vec!["drv5a".into()],
            },
            VertexSpec {
                uuid: "drv5a".into(),
                type_name: "kernel_driver".into(),
                params: serde_json::json!({"device": "nvme0"}),
                outputs: vec![],
            },
        ],
    };
    let stack = rt.mount_stack(&spec).expect("stack mounts");

    // Sample the active worker count while clients run.
    let stop = Arc::new(AtomicBool::new(false));
    let samples = Arc::new(AtomicU64::new(0));
    let active_sum = Arc::new(AtomicU64::new(0));
    let sampler = {
        let rt = rt.clone();
        let stop = stop.clone();
        let samples = samples.clone();
        let active_sum = active_sum.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                active_sum.fetch_add(rt.active_workers() as u64, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                samples.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        })
    };

    let recorders: Vec<Recorder> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let rt = rt.clone();
                let stack = stack.clone();
                s.spawn(move || {
                    let client = rt.connect(labstor_ipc::Credentials::new(t as u32 + 1, 0, 0), 1);
                    let mut target = StackTarget::new(client, stack, t, "lab");
                    let job = FioJob {
                        mode: RwMode::RandWrite,
                        bs: 4096,
                        ops: OPS_PER_CLIENT,
                        iodepth: 1,
                        span_bytes: 64 << 20,
                        seed: t as u64 + 1,
                    };
                    run_fio(&job, &mut target).expect("fio")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    stop.store(true, Ordering::Release);
    let _ = sampler.join();

    let merged = Recorder::merge(recorders);
    // relaxed-ok: stat counter; readers tolerate lag
    let avg_active = if samples.load(Ordering::Relaxed) > 0 {
        // relaxed-ok: stat counter; readers tolerate lag
        active_sum.load(Ordering::Relaxed) as f64 / samples.load(Ordering::Relaxed) as f64
    // relaxed-ok: stat counter; readers tolerate lag
    } else {
        0.0
    };
    let cores = match cfg {
        // Static pools dedicate (busy-poll) every worker core.
        WorkerCfg::Static(n) => *n as f64,
        WorkerCfg::Dynamic(_) => avg_active,
    };
    rt.shutdown();
    (merged.ops_per_sec(), cores)
}

fn main() {
    let configs = [
        WorkerCfg::Static(1),
        WorkerCfg::Static(8),
        WorkerCfg::Dynamic(8),
    ];
    let mut rows = Vec::new();
    for &clients in &CLIENT_COUNTS {
        for cfg in &configs {
            let (iops, cores) = run(cfg, clients);
            rows.push(vec![
                clients.to_string(),
                cfg.label(),
                format!("{:.0}", iops / 1000.0),
                format!("{cores:.1}"),
            ]);
        }
    }
    print_table(
        "Fig 5a: dynamic CPU allocation (4KB random writes per client, NoOp+KernelDriver on NVMe)",
        &["clients", "workers", "kIOPS", "cores"],
        &rows,
    );
    println!("\npaper: 1 worker saturates ≥4 clients; 8 workers = max IOPS at +25% CPU;");
    println!("       dynamic matches 8-worker IOPS with ~4 cores at 8 clients");
}
