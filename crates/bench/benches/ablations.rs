//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each measures *virtual* time (the modeled metric) inside a criterion
//! wall-clock harness — criterion gives us repetition and reporting; the
//! interesting number is printed as the measured virtual cost per
//! configuration at the end of each group.
//!
//! Ablations:
//! * sync vs async LabStack execution (the `Lab-D` decision);
//! * permissions stage on/off (tunable access control);
//! * LRU cache on/off for re-read workloads;
//! * compression on/off for compressible bulk writes (active storage);
//! * block-allocator stealing vs pre-balanced shards;
//! * ordered vs unordered queue draining.

use criterion::{criterion_group, criterion_main, Criterion};

use labstor_core::stack::{ExecMode, LabStack, Vertex};
use labstor_core::StackEnv;
use labstor_core::{ModuleManager, Payload, Request, RespPayload};
use labstor_ipc::Credentials;
use labstor_mods::labfs::BlockAllocator;
use labstor_mods::DeviceRegistry;
use labstor_sim::{Ctx, DeviceKind};

/// Build a sync-exec stack from `(uuid, type, params)` triples (inline
/// dispatch keeps the criterion loop deterministic).
fn stack_of(mm: &ModuleManager, mods: &[(&str, &str, serde_json::Value)]) -> LabStack {
    for (uuid, ty, params) in mods {
        mm.instantiate(uuid, ty, params).unwrap();
    }
    LabStack {
        id: 1,
        mount: "bench::/".into(),
        exec: ExecMode::Sync,
        vertices: mods
            .iter()
            .enumerate()
            .map(|(i, (uuid, _, _))| Vertex {
                uuid: uuid.to_string(),
                outputs: if i + 1 < mods.len() {
                    vec![i + 1]
                } else {
                    vec![]
                },
            })
            .collect(),
        authorized_uids: vec![0],
    }
}

fn run_op(mm: &ModuleManager, stack: &LabStack, ctx: &mut Ctx, payload: Payload) -> RespPayload {
    let env = StackEnv {
        stack,
        vertex: 0,
        registry: mm,
        domain: 0,
    };
    let m = mm.get(&stack.vertices[0].uuid).unwrap();
    m.process(ctx, Request::new(1, 1, payload, Credentials::ROOT), &env)
}

fn setup() -> (ModuleManager, std::sync::Arc<DeviceRegistry>) {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let mm = ModuleManager::new();
    labstor_mods::install_all(&mm, &devices);
    (mm, devices)
}

fn ablate_permissions(c: &mut Criterion) {
    let (mm, _d) = setup();
    let with = stack_of(
        &mm,
        &[
            ("ab_perm", "permissions", serde_json::Value::Null),
            ("ab_fs1", "labfs", serde_json::json!({"device": "nvme0"})),
            (
                "ab_drv1",
                "kernel_driver",
                serde_json::json!({"device": "nvme0"}),
            ),
        ],
    );
    let without = stack_of(
        &mm,
        &[
            ("ab_fs1", "labfs", serde_json::Value::Null),
            ("ab_drv1", "kernel_driver", serde_json::Value::Null),
        ],
    );
    let mut g = c.benchmark_group("ablate_permissions");
    for (name, stack) in [("with_perms", &with), ("without_perms", &without)] {
        let mut ctx = Ctx::new();
        let mut n = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                n += 1;
                let r = run_op(
                    &mm,
                    stack,
                    &mut ctx,
                    Payload::Fs(labstor_core::FsOp::Create {
                        path: format!("/{name}{n}"),
                        mode: 0o644,
                    }),
                );
                std::hint::black_box(r);
            });
        });
        println!("  [{name}] virtual cost/op ≈ {} ns", ctx.now() / n.max(1));
    }
    g.finish();
}

fn ablate_lru_cache(c: &mut Criterion) {
    let (mm, _d) = setup();
    let cached = stack_of(
        &mm,
        &[
            (
                "ab_lru",
                "lru_cache",
                serde_json::json!({"capacity_bytes": 8388608}),
            ),
            (
                "ab_drv2",
                "kernel_driver",
                serde_json::json!({"device": "nvme0"}),
            ),
        ],
    );
    let raw = stack_of(
        &mm,
        &[("ab_drv2", "kernel_driver", serde_json::Value::Null)],
    );
    // Warm: write a block once, then re-read it repeatedly.
    let mut g = c.benchmark_group("ablate_lru_reread");
    for (name, stack) in [("with_cache", &cached), ("without_cache", &raw)] {
        let mut ctx = Ctx::new();
        run_op(
            &mm,
            stack,
            &mut ctx,
            Payload::Block(labstor_core::BlockOp::Write {
                lba: 0,
                data: vec![7u8; 4096],
            }),
        );
        let mut n = 0u64;
        let base = ctx.now();
        g.bench_function(name, |b| {
            b.iter(|| {
                n += 1;
                std::hint::black_box(run_op(
                    &mm,
                    stack,
                    &mut ctx,
                    Payload::Block(labstor_core::BlockOp::Read { lba: 0, len: 4096 }),
                ));
            });
        });
        println!(
            "  [{name}] virtual cost/re-read ≈ {} ns",
            (ctx.now() - base) / n.max(1)
        );
    }
    g.finish();
}

fn ablate_compression(c: &mut Criterion) {
    let (mm, d) = setup();
    let compressed = stack_of(
        &mm,
        &[
            ("ab_zip", "compress", serde_json::Value::Null),
            (
                "ab_drv3",
                "kernel_driver",
                serde_json::json!({"device": "nvme0"}),
            ),
        ],
    );
    let plain = stack_of(
        &mm,
        &[("ab_drv3", "kernel_driver", serde_json::Value::Null)],
    );
    let data: Vec<u8> = std::iter::repeat_n(b"sensor=42.1,43.0,41.8;", 12000)
        .flatten()
        .copied()
        .take(256 * 1024)
        .collect();
    let dev = d.block("nvme0").unwrap();
    let mut g = c.benchmark_group("ablate_compression_256k");
    for (name, stack) in [("with_compression", &compressed), ("without", &plain)] {
        let mut ctx = Ctx::new();
        let mut n = 0u64;
        let bytes_before = labstor_sim::BlockDevice::stats(dev.as_ref())
            .snapshot()
            .bytes_written;
        g.bench_function(name, |b| {
            b.iter(|| {
                n += 1;
                std::hint::black_box(run_op(
                    &mm,
                    stack,
                    &mut ctx,
                    Payload::Block(labstor_core::BlockOp::Write {
                        lba: 0,
                        data: data.clone(),
                    }),
                ));
            });
        });
        let written = labstor_sim::BlockDevice::stats(dev.as_ref())
            .snapshot()
            .bytes_written
            - bytes_before;
        println!(
            "  [{name}] virtual cost/op ≈ {} ns, media bytes/op ≈ {}",
            ctx.now() / n.max(1),
            written / n.max(1)
        );
    }
    g.finish();
}

fn ablate_allocator_stealing(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_allocator");
    g.bench_function("balanced_shards", |b| {
        b.iter_batched(
            || BlockAllocator::new(0, 1 << 20, 8, 4096),
            |a| {
                for w in 0..8 {
                    for _ in 0..200 {
                        std::hint::black_box(a.alloc(w));
                    }
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("skewed_single_worker_steals", |b| {
        b.iter_batched(
            || BlockAllocator::new(0, 1 << 20, 8, 4096),
            |a| {
                for _ in 0..1600 {
                    std::hint::black_box(a.alloc(0));
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn ablate_exec_mode(c: &mut Criterion) {
    // sync (inline) vs async (through a live Runtime worker).
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = labstor_core::Runtime::start(labstor_core::RuntimeConfig {
        max_workers: 1,
        ..Default::default()
    });
    labstor_mods::install_all(&rt.mm, &devices);
    for (mount, exec) in [("d::/sync", "sync"), ("d::/async", "async")] {
        rt.mount_stack_json(&format!(
            r#"{{"mount": "{mount}", "exec": "{exec}", "authorized_uids": [0],
                 "labmods": [ {{"uuid": "ab_dummy", "type": "dummy", "params": {{"work_ns": 1000}} }} ]}}"#
        ))
        .unwrap();
    }
    let mut g = c.benchmark_group("ablate_exec_mode");
    for mount in ["d::/sync", "d::/async"] {
        let stack = rt.ns.get(mount).unwrap();
        let mut client = rt.connect(Credentials::new(1, 0, 0), 1);
        let mut n = 0u64;
        g.bench_function(mount, |b| {
            b.iter(|| {
                n += 1;
                let (resp, _) = client
                    .execute(&stack, Payload::Dummy { work_ns: 0 })
                    .unwrap();
                std::hint::black_box(resp);
            });
        });
        println!(
            "  [{mount}] virtual latency/op ≈ {} ns",
            client.ctx.now() / n.max(1)
        );
    }
    rt.shutdown();
    g.finish();
}

fn ablate_cache_policy(c: &mut Criterion) {
    // LRU vs the adaptive (ARC-style) policy on a scan-polluted workload:
    // 8 hot blocks re-read between 64-block scans. The adaptive policy's
    // ghost lists keep the hot set resident.
    let (mm, _d) = setup();
    let lru = stack_of(
        &mm,
        &[
            (
                "ab_lruc",
                "lru_cache",
                serde_json::json!({"capacity_bytes": 16 * 4096}),
            ),
            (
                "ab_drv4",
                "kernel_driver",
                serde_json::json!({"device": "nvme0"}),
            ),
        ],
    );
    let arc = stack_of(
        &mm,
        &[
            (
                "ab_arcc",
                "arc_cache",
                serde_json::json!({"capacity_bytes": 16 * 4096}),
            ),
            ("ab_drv4", "kernel_driver", serde_json::Value::Null),
        ],
    );
    let mut g = c.benchmark_group("ablate_cache_policy_scan");
    for (name, stack) in [("lru", &lru), ("arc", &arc)] {
        let mut ctx = Ctx::new();
        // Prime hot set.
        for lba in 0..8u64 {
            run_op(
                &mm,
                stack,
                &mut ctx,
                Payload::Block(labstor_core::BlockOp::Write {
                    lba: lba * 8,
                    data: vec![1u8; 4096],
                }),
            );
        }
        for _ in 0..3 {
            for lba in 0..8u64 {
                run_op(
                    &mm,
                    stack,
                    &mut ctx,
                    Payload::Block(labstor_core::BlockOp::Read {
                        lba: lba * 8,
                        len: 4096,
                    }),
                );
            }
        }
        let mut n = 0u64;
        let base = ctx.now();
        g.bench_function(name, |b| {
            b.iter(|| {
                n += 1;
                // Three scan blocks + one hot re-read per iteration: the
                // scan pressure between hot touches (24 blocks per lap of
                // the 8-block hot set) exceeds the 16-block capacity, so a
                // recency-only policy loses the hot set.
                for k in 0..3 {
                    let cold = 1000 + ((n * 3 + k) % 512) * 8;
                    run_op(
                        &mm,
                        stack,
                        &mut ctx,
                        Payload::Block(labstor_core::BlockOp::Read {
                            lba: cold,
                            len: 4096,
                        }),
                    );
                }
                std::hint::black_box(run_op(
                    &mm,
                    stack,
                    &mut ctx,
                    Payload::Block(labstor_core::BlockOp::Read {
                        lba: (n % 8) * 8,
                        len: 4096,
                    }),
                ));
            });
        });
        println!(
            "  [{name}] virtual cost/hot-reread-pair ≈ {} ns",
            (ctx.now() - base) / n.max(1)
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = ablate_permissions, ablate_lru_cache, ablate_compression, ablate_allocator_stealing, ablate_exec_mode, ablate_cache_policy
}
criterion_main!(benches);
