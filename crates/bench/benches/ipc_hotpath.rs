//! Criterion benchmarks for the IPC hot path: the queue-pair batched
//! verbs (`submit_batch`/`consume_batch`/`complete_batch`/`reap_batch`)
//! across lane (MPMC vs SPSC), batch size (1/8/32), and client-thread
//! count (1/4). The `bench_ipc` binary is the JSON-emitting CI gate;
//! this group is the interactive drill-down over the same matrix.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use labstor_ipc::{Envelope, LaneKind, QueueFlags, QueuePair, QueueRole};
use labstor_sim::Ctx;

const DEPTH: usize = 1024;
const RUNTIME_DOMAIN: u32 = 0;
/// Ops each client thread pushes through per measured iteration in the
/// 4-thread variants — large enough that thread-spawn overhead (paid
/// identically by every config) stays in the noise.
const MT_OPS_PER_CLIENT: usize = 2048;

fn queue(lane: LaneKind, id: u64) -> Arc<QueuePair<u64>> {
    Arc::new(QueuePair::with_lane(
        id,
        DEPTH,
        QueueFlags {
            ordered: true,
            role: QueueRole::Primary,
        },
        lane,
    ))
}

fn lane_name(lane: LaneKind) -> &'static str {
    match lane {
        LaneKind::Mpmc => "mpmc",
        LaneKind::Spsc => "spsc",
    }
}

/// Single-thread roundtrip: one submit/consume/complete/reap burst of
/// `batch` requests per iteration, client and worker interleaved.
fn bench_single(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc_hotpath_t1");
    for lane in [LaneKind::Mpmc, LaneKind::Spsc] {
        for batch in [1usize, 8, 32] {
            g.throughput(Throughput::Elements(batch as u64));
            let name = format!("{}_b{batch}", lane_name(lane));
            g.bench_function(&name, |b| {
                let qp = queue(lane, 0);
                let mut client = Ctx::new();
                let mut worker = Ctx::new();
                let mut pend: Vec<u64> = Vec::with_capacity(batch);
                let mut inbox: Vec<Envelope<u64>> = Vec::with_capacity(batch);
                let mut done: Vec<(u64, u64)> = Vec::with_capacity(batch);
                let mut outbox: Vec<Envelope<u64>> = Vec::with_capacity(batch);
                b.iter(|| {
                    pend.clear();
                    pend.extend(0..batch as u64);
                    while !pend.is_empty() {
                        qp.submit_batch(&mut pend, client.now(), 1);
                    }
                    let mut consumed = 0;
                    while consumed < batch {
                        inbox.clear();
                        consumed +=
                            qp.consume_batch(&mut worker, RUNTIME_DOMAIN, &mut inbox, batch);
                        for env in inbox.drain(..) {
                            done.push((env.payload, worker.now()));
                        }
                        while !done.is_empty() {
                            qp.complete_batch(&mut done, RUNTIME_DOMAIN);
                        }
                    }
                    let mut reaped = 0;
                    while reaped < batch {
                        outbox.clear();
                        reaped += qp.reap_batch(&mut client, 1, &mut outbox, batch);
                        std::hint::black_box(&outbox);
                    }
                });
            });
        }
    }
    g.finish();
}

/// Four client threads (one queue pair each, preserving the SPSC
/// per-direction contract) against one worker thread; each iteration
/// pushes `4 * MT_OPS_PER_CLIENT` requests end-to-end.
fn bench_multi(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipc_hotpath_t4");
    g.sample_size(10);
    for lane in [LaneKind::Mpmc, LaneKind::Spsc] {
        for batch in [1usize, 8, 32] {
            g.throughput(Throughput::Elements(4 * MT_OPS_PER_CLIENT as u64));
            let name = format!("{}_b{batch}", lane_name(lane));
            g.bench_function(&name, |b| {
                b.iter(|| {
                    let qps: Vec<Arc<QueuePair<u64>>> =
                        (0..4).map(|i| queue(lane, i as u64)).collect();
                    let stop = Arc::new(AtomicBool::new(false));
                    let worker = {
                        let qps = qps.clone();
                        let stop = stop.clone();
                        std::thread::spawn(move || {
                            let mut ctx = Ctx::new();
                            let mut inbox: Vec<Envelope<u64>> = Vec::with_capacity(batch);
                            let mut done: Vec<(u64, u64)> = Vec::with_capacity(batch);
                            while !stop.load(Ordering::Acquire) {
                                for q in &qps {
                                    inbox.clear();
                                    if q.consume_batch(&mut ctx, RUNTIME_DOMAIN, &mut inbox, batch)
                                        == 0
                                    {
                                        continue;
                                    }
                                    for env in inbox.drain(..) {
                                        done.push((env.payload, ctx.now()));
                                    }
                                    while !done.is_empty() && !stop.load(Ordering::Acquire) {
                                        if q.complete_batch(&mut done, RUNTIME_DOMAIN) == 0 {
                                            std::hint::spin_loop();
                                        }
                                    }
                                    done.clear();
                                }
                            }
                        })
                    };
                    let clients: Vec<_> = qps
                        .iter()
                        .enumerate()
                        .map(|(i, qp)| {
                            let qp = qp.clone();
                            std::thread::spawn(move || {
                                let domain = i as u32 + 1;
                                let mut ctx = Ctx::new();
                                let mut pend: Vec<u64> = Vec::with_capacity(batch);
                                let mut outbox: Vec<Envelope<u64>> = Vec::with_capacity(batch);
                                let mut next: u64 = 0;
                                let mut reaped = 0usize;
                                while reaped < MT_OPS_PER_CLIENT {
                                    if pend.is_empty() && (next as usize) < MT_OPS_PER_CLIENT {
                                        let n = batch.min(MT_OPS_PER_CLIENT - next as usize);
                                        for _ in 0..n {
                                            pend.push(next);
                                            next += 1;
                                        }
                                    }
                                    if !pend.is_empty() {
                                        qp.submit_batch(&mut pend, ctx.now(), domain);
                                    }
                                    outbox.clear();
                                    let got = qp.reap_batch(&mut ctx, domain, &mut outbox, batch);
                                    if got == 0 {
                                        std::hint::spin_loop();
                                    }
                                    reaped += got;
                                    std::hint::black_box(&outbox);
                                }
                            })
                        })
                        .collect();
                    for h in clients {
                        h.join().expect("client thread");
                    }
                    stop.store(true, Ordering::Release);
                    worker.join().expect("worker thread");
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_single, bench_multi);
criterion_main!(benches);
