//! Criterion micro-benchmarks of the platform's real (wall-clock)
//! primitives: the data structures whose host performance determines how
//! fast the simulation itself runs, and which in the real LabStor *are*
//! the hot path (rings, queue pairs, registry lookups, log encoding).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use labstor_core::{ModuleManager, Payload, Request, RespPayload};
use labstor_ipc::ring::spsc;
use labstor_ipc::{Credentials, QueueFlags, QueuePair};
use labstor_kernel::page_cache::LruMap;
use labstor_mods::compress_algo::{compress, decompress};
use labstor_mods::labfs::{BlockAllocator, LogRecord};
use labstor_sim::Ctx;
use labstor_telemetry::{FlightRecorder, LogHistogram, Stage};

fn bench_spsc_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc_ring");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop", |b| {
        let (mut p, mut cns) = spsc::<u64>(1024);
        b.iter(|| {
            p.push(std::hint::black_box(42)).unwrap();
            std::hint::black_box(cns.pop().unwrap());
        });
    });
    g.finish();
}

fn bench_queue_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_pair");
    g.throughput(Throughput::Elements(1));
    g.bench_function("submit_consume_complete_reap", |b| {
        let qp: QueuePair<u64> = QueuePair::new(1, 1024, QueueFlags::default());
        let mut worker = Ctx::new();
        let mut client = Ctx::new();
        b.iter(|| {
            qp.submit(7, client.now(), 1).unwrap();
            let env = qp.consume(&mut worker, 0).unwrap();
            qp.complete(env.payload, worker.now(), 0).unwrap();
            std::hint::black_box(qp.reap(&mut client, 1).unwrap());
        });
    });
    g.finish();
}

fn bench_registry(c: &mut Criterion) {
    let mm = ModuleManager::new();
    labstor_mods::dummy::install(&mm);
    for i in 0..100 {
        mm.instantiate(&format!("mod{i}"), "dummy", &serde_json::Value::Null)
            .unwrap();
    }
    c.bench_function("registry_lookup_100_mods", |b| {
        b.iter(|| std::hint::black_box(mm.get("mod57")).is_some());
    });
}

fn bench_lru_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru_map");
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert_get_evict_4k_entries", |b| {
        let mut lru: LruMap<u64, u64> = LruMap::new();
        for i in 0..4096u64 {
            lru.insert(i, i);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            lru.insert(4096 + k, k);
            std::hint::black_box(lru.get(&(k % 4096)));
            lru.pop_lru();
        });
    });
    g.finish();
}

fn bench_block_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_allocator");
    g.throughput(Throughput::Elements(1));
    g.bench_function("alloc_own_shard", |b| {
        b.iter_batched(
            || BlockAllocator::new(0, 1 << 22, 8, 4096),
            |a| {
                for _ in 0..1000 {
                    std::hint::black_box(a.alloc(3));
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("alloc_with_stealing", |b| {
        b.iter_batched(
            // Shard 0 tiny: most allocations steal.
            || BlockAllocator::new(0, 8 * 1024, 8, 64),
            |a| {
                for _ in 0..1500 {
                    std::hint::black_box(a.alloc(0));
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let compressible: Vec<u8> = std::iter::repeat_n(b"particle x=1.25 y=2.50 vz=9.9 ", 4369)
        .flatten()
        .copied()
        .take(128 * 1024)
        .collect();
    let mut incompressible = vec![0u8; 128 * 1024];
    let mut x = 0x2545F4914F6CDD1Du64;
    for b in incompressible.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = x as u8;
    }
    let mut g = c.benchmark_group("compression_128k");
    g.throughput(Throughput::Bytes(128 * 1024));
    g.bench_function("compress_text", |b| {
        b.iter(|| std::hint::black_box(compress(&compressible)));
    });
    g.bench_function("compress_random", |b| {
        b.iter(|| std::hint::black_box(compress(&incompressible)));
    });
    let packed = compress(&compressible);
    g.bench_function("decompress_text", |b| {
        b.iter(|| std::hint::black_box(decompress(&packed).unwrap()));
    });
    g.finish();
}

fn bench_log_encoding(c: &mut Criterion) {
    let rec = LogRecord::Create {
        path: "/data/run42/checkpoint.h5".into(),
        ino: 123456,
        mode: 0o644,
        uid: 1000,
        gid: 1000,
        is_dir: false,
    };
    let mut g = c.benchmark_group("labfs_log");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_create", |b| {
        let mut buf = Vec::with_capacity(4096);
        b.iter(|| {
            buf.clear();
            rec.encode(&mut buf);
            std::hint::black_box(buf.len());
        });
    });
    let mut encoded = Vec::new();
    rec.encode(&mut encoded);
    g.bench_function("decode_create", |b| {
        b.iter(|| {
            let mut pos = 0;
            std::hint::black_box(LogRecord::decode(&encoded, &mut pos).unwrap());
        });
    });
    g.finish();
}

fn bench_request_dispatch(c: &mut Criterion) {
    // The full inline DAG dispatch a sync-stack client performs.
    let devices = labstor_mods::DeviceRegistry::new();
    devices.add_preset("nvme0", labstor_sim::DeviceKind::Nvme);
    let mm = ModuleManager::new();
    labstor_mods::install_all(&mm, &devices);
    mm.instantiate("b_fs", "labfs", &serde_json::json!({"device": "nvme0"}))
        .unwrap();
    mm.instantiate(
        "b_drv",
        "kernel_driver",
        &serde_json::json!({"device": "nvme0"}),
    )
    .unwrap();
    let stack = labstor_core::LabStack {
        id: 1,
        mount: "fs::/bench".into(),
        exec: labstor_core::ExecMode::Sync,
        vertices: vec![
            labstor_core::stack::Vertex {
                uuid: "b_fs".into(),
                outputs: vec![1],
            },
            labstor_core::stack::Vertex {
                uuid: "b_drv".into(),
                outputs: vec![],
            },
        ],
        authorized_uids: vec![0],
    };
    let m = mm.get("b_fs").unwrap();
    let env = labstor_core::StackEnv {
        stack: &stack,
        vertex: 0,
        registry: &mm,
        domain: 0,
    };
    let mut ctx = Ctx::new();
    // Pre-create a file.
    let resp = m.process(
        &mut ctx,
        Request::new(
            1,
            1,
            Payload::Fs(labstor_core::FsOp::Create {
                path: "/b".into(),
                mode: 0o644,
            }),
            Credentials::ROOT,
        ),
        &env,
    );
    let ino = match resp {
        RespPayload::Ino(i) => i,
        other => panic!("{other:?}"),
    };
    let mut g = c.benchmark_group("stack_dispatch");
    g.throughput(Throughput::Elements(1));
    g.bench_function("labfs_4k_write_host_cost", |b| {
        let data = vec![0u8; 4096];
        b.iter(|| {
            let resp = m.process(
                &mut ctx,
                Request::new(
                    2,
                    1,
                    Payload::Fs(labstor_core::FsOp::Write {
                        ino,
                        offset: 0,
                        data: data.clone(),
                    }),
                    Credentials::ROOT,
                ),
                &env,
            );
            std::hint::black_box(resp);
        });
    });
    g.finish();
}

/// The ISSUE's disabled-mode cost contract: `record` on a disabled
/// recorder must be one relaxed load + branch, measured against the
/// enabled path on the same 4 KB-write-shaped span stream.
fn bench_span_recorder(c: &mut Criterion) {
    let mut g = c.benchmark_group("span_recorder");
    g.throughput(Throughput::Elements(1));
    g.bench_function("record_disabled", |b| {
        let rec = FlightRecorder::default();
        let mut t = 0u64;
        b.iter(|| {
            t += 12_150;
            rec.record(Stage::Vertex, std::hint::black_box(t), 1, 2, t, t + 450);
        });
    });
    g.bench_function("record_enabled", |b| {
        let rec = FlightRecorder::default();
        rec.enable();
        let mut t = 0u64;
        b.iter(|| {
            t += 12_150;
            rec.record(Stage::Vertex, std::hint::black_box(t), 1, 2, t, t + 450);
        });
    });
    g.bench_function("hist_record", |b| {
        let h = LogHistogram::new();
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 4_096) % 1_000_000;
            h.record(std::hint::black_box(t));
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_spsc_ring,
    bench_queue_pair,
    bench_registry,
    bench_lru_map,
    bench_block_allocator,
    bench_compression,
    bench_log_encoding,
    bench_request_dispatch,
    bench_span_recorder
);
criterion_main!(benches);
