#![warn(missing_docs)]

//! # labstor-pushdown — verified, fuel-bounded bytecode for in-stack filters
//!
//! The zero-copy path (DESIGN.md §8) ships a read hit as a 256 KiB handle
//! that the client then scans — selective workloads still pay full IPC and
//! a client-side walk per page. This crate moves the walk to where the
//! data lives: a client attaches a small **register bytecode program** to
//! a request, the kernel-side LabMod (LabFS, LabKVS) runs it directly over
//! BufferPool handle slices, and only the *result* — a count, a sum, or
//! the matching records — rides back, usually inline in the response
//! envelope ("BPF for storage", PAPERS.md).
//!
//! The execution model is deliberately exokernel-shaped:
//!
//! * **Static verification** ([`Program::verify`]): programs are checked
//!   once, before they touch the stack. Registers in range, loads
//!   bounds-checked against the declared record length at verify time
//!   (no dynamic bases — every load offset is static), jumps
//!   **forward-only**, fuel budget sane. A [`VerifiedProgram`] is only
//!   constructible through the verifier, so kernel-side LabMods accept it
//!   on the type level without re-checking.
//! * **Termination by construction**: forward-only jumps mean a program
//!   of `n` instructions retires at most `n` per record; the fuel meter
//!   bounds the whole scan. `mc_fuel` in labcheck model-checks exactly
//!   this invariant pair (plus the planted bugs that break it).
//! * **Fuel = virtual time**: every retired instruction costs one fuel
//!   unit; the executing LabMod advances its virtual clock by
//!   [`FUEL_NS`] per unit and debits the requesting tenant's token
//!   bucket, so a hostile program cannot starve neighbors.
//!
//! The hot-path interpreter lives in [`interp`] and is governed by the
//! labcheck hot-path policy: no panics, no indexing, no payload copies.
//! [`reference`] is an intentionally independent evaluator used by the
//! equivalence proptest.

pub mod interp;
pub mod reference;

pub use interp::{scan, ExecError, ScanOut};

/// Number of general-purpose registers.
pub const NUM_REGS: usize = 16;
/// Maximum program length in instructions.
pub const MAX_INSNS: usize = 256;
/// Maximum fuel budget a program may declare (≈2 ms of virtual time).
pub const MAX_FUEL: u64 = 1 << 20;
/// Maximum record length a program may declare.
pub const MAX_RECORD_LEN: usize = 1 << 16;
/// Virtual nanoseconds charged per fuel unit (one retired instruction —
/// a couple of dispatch-loop steps on the paper's 2.3 GHz testbed).
pub const FUEL_NS: u64 = 2;
/// Encoded instruction size in bytes (see [`Program::encode`]).
pub const ENCODED_INSN_LEN: usize = 16;

/// Arithmetic/logic operations. All arithmetic wraps; division and
/// remainder by zero produce 0 (no trapping paths — the interpreter must
/// not panic); shifts mask the amount to 0..64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (x / 0 = 0).
    Div,
    /// Remainder (x % 0 = 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (amount masked to 0..64).
    Shl,
    /// Logical right shift (amount masked to 0..64).
    Shr,
}

/// Unsigned comparison operators for conditional jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// One bytecode instruction.
///
/// Register convention per record: `r0` = record length in bytes, `r1` =
/// record index within the scan, all other registers zero. The value a
/// record "returns" (via [`Insn::Ret`], or 0 when execution falls off the
/// end) is its verdict: non-zero means the record matches.
///
/// Jump offsets are relative to the *next* instruction (`off = 0` is a
/// fall-through). Offsets are encodable as negative — the verifier is
/// what rejects backward jumps, which is exactly the planted-bug surface
/// `mc_fuel` checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `dst = imm`.
    LdImm {
        /// Destination register.
        dst: u8,
        /// Immediate value.
        imm: u64,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: u8,
        /// Source register.
        src: u8,
    },
    /// Little-endian load of `width` ∈ {1, 2, 4, 8} bytes from the
    /// record at static byte offset `off`. The verifier proves
    /// `off + width <= record_len`, so the interpreter never bounds-fails.
    Ld {
        /// Destination register.
        dst: u8,
        /// Static byte offset within the record.
        off: u16,
        /// Load width in bytes (1, 2, 4 or 8).
        width: u8,
    },
    /// `dst = dst <op> src`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand) register.
        dst: u8,
        /// Right operand register.
        src: u8,
    },
    /// `dst = dst <op> imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand) register.
        dst: u8,
        /// Right operand immediate.
        imm: u64,
    },
    /// Unconditional relative jump (forward-only after verification).
    Jmp {
        /// Offset from the next instruction.
        off: i16,
    },
    /// Jump if `a <cmp> b`.
    JmpIf {
        /// Comparison.
        cmp: CmpOp,
        /// Left operand register.
        a: u8,
        /// Right operand register.
        b: u8,
        /// Offset from the next instruction.
        off: i16,
    },
    /// Jump if `a <cmp> imm`.
    JmpIfImm {
        /// Comparison.
        cmp: CmpOp,
        /// Left operand register.
        a: u8,
        /// Right operand immediate.
        imm: u64,
        /// Offset from the next instruction.
        off: i16,
    },
    /// Return the value of `src` as the record's verdict.
    Ret {
        /// Register holding the verdict.
        src: u8,
    },
}

/// What the executing LabMod does with matching records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Count matching records; the reply is an [`AggReply`].
    Count,
    /// Sum the (non-zero) verdicts of matching records; the reply is an
    /// [`AggReply`] whose `agg` field carries the wrapping sum.
    Sum,
    /// Ship the matching records themselves (or, for a KVS scan, the
    /// matching keys).
    Select,
}

/// An unverified program: instructions plus the execution contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The instruction sequence.
    pub insns: Vec<Insn>,
    /// Record length in bytes; every load is bounds-checked against it
    /// at verify time.
    pub record_len: usize,
    /// What to do with matching records.
    pub action: Action,
    /// Fuel budget for the whole scan (1 fuel = 1 retired instruction).
    pub fuel_budget: u64,
}

/// Why the verifier rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The program has no instructions.
    Empty,
    /// More than [`MAX_INSNS`] instructions.
    TooLong {
        /// Actual length.
        len: usize,
    },
    /// `record_len` is zero or exceeds [`MAX_RECORD_LEN`].
    BadRecordLen {
        /// Declared record length.
        record_len: usize,
    },
    /// A register operand is out of range.
    BadRegister {
        /// Instruction index.
        pc: usize,
        /// Offending register number.
        reg: u8,
    },
    /// A load width other than 1, 2, 4 or 8.
    BadWidth {
        /// Instruction index.
        pc: usize,
        /// Offending width.
        width: u8,
    },
    /// A load past the end of the record (`off + width > record_len`).
    OobLoad {
        /// Instruction index.
        pc: usize,
        /// Static offset.
        off: u16,
        /// Load width.
        width: u8,
        /// Declared record length.
        record_len: usize,
    },
    /// A jump with a negative offset — the loop-former the forward-only
    /// rule exists to forbid.
    BackwardJump {
        /// Instruction index.
        pc: usize,
        /// Offending offset.
        off: i16,
    },
    /// A jump past the end of the program (target == len is the normal
    /// exit and allowed).
    JumpOutOfRange {
        /// Instruction index.
        pc: usize,
        /// Computed target.
        target: usize,
    },
    /// Fuel budget zero, above [`MAX_FUEL`], or below the program length
    /// (too small to retire even one record's worst case).
    FuelOverflow {
        /// Declared budget.
        fuel: u64,
    },
    /// Decoding: an opcode byte the ISA does not define.
    UnknownOpcode {
        /// Instruction index.
        pc: usize,
        /// The opcode byte.
        byte: u8,
    },
    /// Decoding: an operand field outside its domain (ALU/compare code,
    /// oversized load offset).
    BadOperand {
        /// Instruction index.
        pc: usize,
    },
    /// Decoding: the byte stream is not a whole number of instructions.
    Truncated,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Empty => write!(f, "empty program"),
            VerifyError::TooLong { len } => write!(f, "{len} instructions exceeds {MAX_INSNS}"),
            VerifyError::BadRecordLen { record_len } => {
                write!(f, "record length {record_len} out of range")
            }
            VerifyError::BadRegister { pc, reg } => write!(f, "insn {pc}: register r{reg} >= 16"),
            VerifyError::BadWidth { pc, width } => write!(f, "insn {pc}: load width {width}"),
            VerifyError::OobLoad {
                pc,
                off,
                width,
                record_len,
            } => write!(
                f,
                "insn {pc}: load of {width} bytes at offset {off} overruns {record_len}-byte record"
            ),
            VerifyError::BackwardJump { pc, off } => {
                write!(f, "insn {pc}: backward jump (offset {off})")
            }
            VerifyError::JumpOutOfRange { pc, target } => {
                write!(f, "insn {pc}: jump target {target} out of range")
            }
            VerifyError::FuelOverflow { fuel } => write!(f, "fuel budget {fuel} out of range"),
            VerifyError::UnknownOpcode { pc, byte } => {
                write!(f, "insn {pc}: unknown opcode {byte:#x}")
            }
            VerifyError::BadOperand { pc } => write!(f, "insn {pc}: operand out of domain"),
            VerifyError::Truncated => write!(f, "truncated instruction stream"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A program that passed [`Program::verify`]. The inner program is
/// private: the only way to obtain one is through the verifier, so
/// kernel-side LabMods can trust it on the type level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedProgram(Program);

impl VerifiedProgram {
    /// The verified instruction sequence.
    pub fn insns(&self) -> &[Insn] {
        &self.0.insns
    }

    /// Declared record length in bytes.
    pub fn record_len(&self) -> usize {
        self.0.record_len
    }

    /// What to do with matching records.
    pub fn action(&self) -> Action {
        self.0.action
    }

    /// Fuel budget for the whole scan.
    pub fn fuel_budget(&self) -> u64 {
        self.0.fuel_budget
    }
}

impl Program {
    /// Build an unverified program.
    pub fn new(insns: Vec<Insn>, record_len: usize, action: Action, fuel_budget: u64) -> Program {
        Program {
            insns,
            record_len,
            action,
            fuel_budget,
        }
    }

    /// Statically verify the program. This is the trust boundary: every
    /// rule here is what lets the interpreter run panic-free over
    /// kernel-side buffer slices with no per-instruction bounds checks
    /// beyond the fuel meter.
    pub fn verify(self) -> Result<VerifiedProgram, VerifyError> {
        let len = self.insns.len();
        if len == 0 {
            return Err(VerifyError::Empty);
        }
        if len > MAX_INSNS {
            return Err(VerifyError::TooLong { len });
        }
        if self.record_len == 0 || self.record_len > MAX_RECORD_LEN {
            return Err(VerifyError::BadRecordLen {
                record_len: self.record_len,
            });
        }
        if self.fuel_budget == 0 || self.fuel_budget > MAX_FUEL || self.fuel_budget < len as u64 {
            return Err(VerifyError::FuelOverflow {
                fuel: self.fuel_budget,
            });
        }
        let reg = |pc: usize, r: u8| -> Result<(), VerifyError> {
            if (r as usize) < NUM_REGS {
                Ok(())
            } else {
                Err(VerifyError::BadRegister { pc, reg: r })
            }
        };
        let jump = |pc: usize, off: i16| -> Result<(), VerifyError> {
            if off < 0 {
                return Err(VerifyError::BackwardJump { pc, off });
            }
            let target = pc + 1 + off as usize;
            if target > len {
                return Err(VerifyError::JumpOutOfRange { pc, target });
            }
            Ok(())
        };
        for (pc, insn) in self.insns.iter().enumerate() {
            match *insn {
                Insn::LdImm { dst, .. } => reg(pc, dst)?,
                Insn::Mov { dst, src } => {
                    reg(pc, dst)?;
                    reg(pc, src)?;
                }
                Insn::Ld { dst, off, width } => {
                    reg(pc, dst)?;
                    if !matches!(width, 1 | 2 | 4 | 8) {
                        return Err(VerifyError::BadWidth { pc, width });
                    }
                    if off as usize + width as usize > self.record_len {
                        return Err(VerifyError::OobLoad {
                            pc,
                            off,
                            width,
                            record_len: self.record_len,
                        });
                    }
                }
                Insn::Alu { dst, src, .. } => {
                    reg(pc, dst)?;
                    reg(pc, src)?;
                }
                Insn::AluImm { dst, .. } => reg(pc, dst)?,
                Insn::Jmp { off } => jump(pc, off)?,
                Insn::JmpIf { a, b, off, .. } => {
                    reg(pc, a)?;
                    reg(pc, b)?;
                    jump(pc, off)?;
                }
                Insn::JmpIfImm { a, off, .. } => {
                    reg(pc, a)?;
                    jump(pc, off)?;
                }
                Insn::Ret { src } => reg(pc, src)?,
            }
        }
        Ok(VerifiedProgram(self))
    }

    /// Serialize the instruction stream to the 16-byte-per-instruction
    /// wire format: `[op, a, b, c, off:i16 LE, pad:u16, imm:u64 LE]`.
    /// This is the attachment format envelopes would carry across a real
    /// shared-memory boundary; in-process requests carry the decoded
    /// [`VerifiedProgram`] by `Arc`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.insns.len() * ENCODED_INSN_LEN);
        for insn in &self.insns {
            let (op, a, b, c, off, imm): (u8, u8, u8, u8, i16, u64) = match *insn {
                Insn::LdImm { dst, imm } => (1, dst, 0, 0, 0, imm),
                Insn::Mov { dst, src } => (2, dst, src, 0, 0, 0),
                Insn::Ld { dst, off, width } => (3, dst, width, 0, 0, off as u64),
                Insn::Alu { op, dst, src } => (4, alu_code(op), dst, src, 0, 0),
                Insn::AluImm { op, dst, imm } => (5, alu_code(op), dst, 0, 0, imm),
                Insn::Jmp { off } => (6, 0, 0, 0, off, 0),
                Insn::JmpIf { cmp, a, b, off } => (7, cmp_code(cmp), a, b, off, 0),
                Insn::JmpIfImm { cmp, a, imm, off } => (8, cmp_code(cmp), a, 0, off, imm),
                Insn::Ret { src } => (9, src, 0, 0, 0, 0),
            };
            out.push(op);
            out.push(a);
            out.push(b);
            out.push(c);
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&[0u8, 0u8]);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        out
    }

    /// Decode an instruction stream produced by [`Program::encode`].
    /// Rejects unknown opcodes, out-of-domain operands, and truncated
    /// streams — the decode half of the verifier's rejection corpus.
    pub fn decode(bytes: &[u8]) -> Result<Vec<Insn>, VerifyError> {
        if !bytes.len().is_multiple_of(ENCODED_INSN_LEN) {
            return Err(VerifyError::Truncated);
        }
        let mut insns = Vec::with_capacity(bytes.len() / ENCODED_INSN_LEN);
        for (pc, chunk) in bytes.chunks_exact(ENCODED_INSN_LEN).enumerate() {
            let take_i16 = |lo: usize| -> i16 {
                let mut b = [0u8; 2];
                b.copy_from_slice(&chunk[lo..lo + 2]);
                i16::from_le_bytes(b)
            };
            let take_u64 = |lo: usize| -> u64 {
                let mut b = [0u8; 8];
                b.copy_from_slice(&chunk[lo..lo + 8]);
                u64::from_le_bytes(b)
            };
            let (op, a, b, c) = (chunk[0], chunk[1], chunk[2], chunk[3]);
            let off = take_i16(4);
            let imm = take_u64(8);
            let insn = match op {
                1 => Insn::LdImm { dst: a, imm },
                2 => Insn::Mov { dst: a, src: b },
                3 => {
                    if imm > u16::MAX as u64 {
                        return Err(VerifyError::BadOperand { pc });
                    }
                    Insn::Ld {
                        dst: a,
                        off: imm as u16,
                        width: b,
                    }
                }
                4 => Insn::Alu {
                    op: alu_from(a).ok_or(VerifyError::BadOperand { pc })?,
                    dst: b,
                    src: c,
                },
                5 => Insn::AluImm {
                    op: alu_from(a).ok_or(VerifyError::BadOperand { pc })?,
                    dst: b,
                    imm,
                },
                6 => Insn::Jmp { off },
                7 => Insn::JmpIf {
                    cmp: cmp_from(a).ok_or(VerifyError::BadOperand { pc })?,
                    a: b,
                    b: c,
                    off,
                },
                8 => Insn::JmpIfImm {
                    cmp: cmp_from(a).ok_or(VerifyError::BadOperand { pc })?,
                    a: b,
                    imm,
                    off,
                },
                9 => Insn::Ret { src: a },
                byte => return Err(VerifyError::UnknownOpcode { pc, byte }),
            };
            insns.push(insn);
        }
        Ok(insns)
    }

    // ---- common query shapes ------------------------------------------------

    /// Predicate skeleton: match records whose little-endian `u32` field
    /// at byte `off` equals `value`.
    ///
    /// ```text
    /// 0: r2 = load32 [off]
    /// 1: if r2 == value jump +1   ; match path
    /// 2: ret r3                   ; r3 = 0: no match
    /// 3: r3 = <verdict>
    /// 4: ret r3
    /// ```
    fn u32_eq_skeleton(record_len: usize, off: u16, value: u32, verdict: Vec<Insn>) -> Program {
        let mut insns = vec![
            Insn::Ld {
                dst: 2,
                off,
                width: 4,
            },
            Insn::JmpIfImm {
                cmp: CmpOp::Eq,
                a: 2,
                imm: value as u64,
                off: 1,
            },
            Insn::Ret { src: 3 },
        ];
        insns.extend(verdict);
        Program::new(insns, record_len, Action::Count, MAX_FUEL)
    }

    /// Count records whose `u32` field at `off` equals `value`.
    pub fn count_where_u32_eq(record_len: usize, off: u16, value: u32) -> Program {
        let mut p = Self::u32_eq_skeleton(
            record_len,
            off,
            value,
            vec![Insn::LdImm { dst: 3, imm: 1 }, Insn::Ret { src: 3 }],
        );
        p.action = Action::Count;
        p
    }

    /// Sum the little-endian `u64` field at `sum_off` over records whose
    /// `u32` field at `key_off` equals `value`.
    pub fn sum_u64_where_u32_eq(
        record_len: usize,
        sum_off: u16,
        key_off: u16,
        value: u32,
    ) -> Program {
        let mut p = Self::u32_eq_skeleton(
            record_len,
            key_off,
            value,
            vec![
                Insn::Ld {
                    dst: 3,
                    off: sum_off,
                    width: 8,
                },
                Insn::Ret { src: 3 },
            ],
        );
        p.action = Action::Sum;
        p
    }

    /// Select (ship back) records whose `u32` field at `off` equals
    /// `value`.
    pub fn select_where_u32_eq(record_len: usize, off: u16, value: u32) -> Program {
        let mut p = Self::count_where_u32_eq(record_len, off, value);
        p.action = Action::Select;
        p
    }

    /// Replace the fuel budget (builders default to [`MAX_FUEL`]).
    pub fn with_fuel(mut self, fuel: u64) -> Program {
        self.fuel_budget = fuel;
        self
    }
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Shl => 8,
        AluOp::Shr => 9,
    }
}

fn alu_from(code: u8) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Shl,
        9 => AluOp::Shr,
        _ => return None,
    })
}

fn cmp_code(cmp: CmpOp) -> u8 {
    match cmp {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from(code: u8) -> Option<CmpOp> {
    Some(match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return None,
    })
}

/// Aggregate reply for [`Action::Count`] / [`Action::Sum`] scans: 32
/// bytes, small enough to ride inline in the response envelope (the
/// satellite inline-payload path) instead of a BufferPool round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggReply {
    /// Records examined.
    pub records: u64,
    /// Records whose verdict was non-zero.
    pub matches: u64,
    /// Wrapping sum of verdicts ([`Action::Sum`] only; 0 otherwise).
    pub agg: u64,
    /// Fuel actually consumed by the scan.
    pub fuel_used: u64,
}

impl AggReply {
    /// Encoded size in bytes.
    pub const LEN: usize = 32;

    /// Little-endian fixed encoding.
    pub fn encode(&self) -> [u8; AggReply::LEN] {
        let mut out = [0u8; AggReply::LEN];
        out[0..8].copy_from_slice(&self.records.to_le_bytes());
        out[8..16].copy_from_slice(&self.matches.to_le_bytes());
        out[16..24].copy_from_slice(&self.agg.to_le_bytes());
        out[24..32].copy_from_slice(&self.fuel_used.to_le_bytes());
        out
    }

    /// Decode an [`AggReply::encode`] image.
    pub fn decode(bytes: &[u8]) -> Option<AggReply> {
        if bytes.len() != AggReply::LEN {
            return None;
        }
        let word = |lo: usize| -> u64 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[lo..lo + 8]);
            u64::from_le_bytes(b)
        };
        Some(AggReply {
            records: word(0),
            matches: word(8),
            agg: word(16),
            fuel_used: word(24),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_scan;
    use proptest::prelude::*;

    fn verified(p: Program) -> VerifiedProgram {
        p.verify().expect("program verifies")
    }

    // ---- rejection corpus --------------------------------------------------

    #[test]
    fn rejects_empty_program() {
        let p = Program::new(vec![], 64, Action::Count, 16);
        assert_eq!(p.verify().unwrap_err(), VerifyError::Empty);
    }

    #[test]
    fn rejects_out_of_bounds_load() {
        // 4-byte load at offset 62 of a 64-byte record: 62 + 4 > 64.
        let p = Program::new(
            vec![
                Insn::Ld {
                    dst: 2,
                    off: 62,
                    width: 4,
                },
                Insn::Ret { src: 2 },
            ],
            64,
            Action::Count,
            16,
        );
        assert!(matches!(
            p.verify().unwrap_err(),
            VerifyError::OobLoad {
                pc: 0,
                off: 62,
                width: 4,
                record_len: 64
            }
        ));
    }

    #[test]
    fn rejects_backward_jump() {
        let p = Program::new(
            vec![
                Insn::LdImm { dst: 2, imm: 1 },
                Insn::Jmp { off: -2 }, // loops back to insn 0
                Insn::Ret { src: 2 },
            ],
            64,
            Action::Count,
            64,
        );
        assert!(matches!(
            p.verify().unwrap_err(),
            VerifyError::BackwardJump { pc: 1, off: -2 }
        ));
        // Conditional backward jumps are just as rejected.
        let p = Program::new(
            vec![
                Insn::JmpIfImm {
                    cmp: CmpOp::Ne,
                    a: 1,
                    imm: 0,
                    off: -1, // self-loop
                },
                Insn::Ret { src: 0 },
            ],
            64,
            Action::Count,
            64,
        );
        assert!(matches!(
            p.verify().unwrap_err(),
            VerifyError::BackwardJump { pc: 0, off: -1 }
        ));
    }

    #[test]
    fn rejects_unknown_opcode() {
        let mut bytes = Program::count_where_u32_eq(64, 0, 7).encode();
        bytes[0] = 0xfe; // not an opcode
        assert!(matches!(
            Program::decode(&bytes).unwrap_err(),
            VerifyError::UnknownOpcode { pc: 0, byte: 0xfe }
        ));
        bytes[0] = 4; // Alu with an out-of-domain op code
        bytes[1] = 42;
        assert!(matches!(
            Program::decode(&bytes).unwrap_err(),
            VerifyError::BadOperand { pc: 0 }
        ));
    }

    #[test]
    fn rejects_fuel_overflow() {
        let base = Program::count_where_u32_eq(64, 0, 7);
        assert!(matches!(
            base.clone().with_fuel(0).verify().unwrap_err(),
            VerifyError::FuelOverflow { fuel: 0 }
        ));
        assert!(matches!(
            base.clone().with_fuel(MAX_FUEL + 1).verify().unwrap_err(),
            VerifyError::FuelOverflow { .. }
        ));
        // Below one worst-case record: also rejected.
        let n = base.insns.len() as u64;
        assert!(matches!(
            base.clone().with_fuel(n - 1).verify().unwrap_err(),
            VerifyError::FuelOverflow { .. }
        ));
        assert!(base.with_fuel(n).verify().is_ok());
    }

    #[test]
    fn rejects_bad_register_and_jump_range() {
        let p = Program::new(vec![Insn::Ret { src: 16 }], 8, Action::Count, 8);
        assert!(matches!(
            p.verify().unwrap_err(),
            VerifyError::BadRegister { pc: 0, reg: 16 }
        ));
        let p = Program::new(vec![Insn::Jmp { off: 1 }], 8, Action::Count, 8);
        assert!(matches!(
            p.verify().unwrap_err(),
            VerifyError::JumpOutOfRange { pc: 0, target: 2 }
        ));
        let p = Program::new(vec![Insn::Jmp { off: 0 }], 8, Action::Count, 8);
        assert!(p.verify().is_ok(), "target == len is the normal exit");
    }

    #[test]
    fn rejects_truncated_stream() {
        let mut bytes = Program::count_where_u32_eq(64, 0, 7).encode();
        bytes.pop();
        assert_eq!(Program::decode(&bytes).unwrap_err(), VerifyError::Truncated);
    }

    // ---- encode/decode -----------------------------------------------------

    #[test]
    fn encode_decode_roundtrips() {
        for p in [
            Program::count_where_u32_eq(64, 12, 0xdead_beef),
            Program::sum_u64_where_u32_eq(64, 8, 0, 7),
            Program::select_where_u32_eq(32, 4, 1),
            Program::new(
                vec![
                    Insn::Mov { dst: 4, src: 1 },
                    Insn::Alu {
                        op: AluOp::Xor,
                        dst: 4,
                        src: 0,
                    },
                    Insn::AluImm {
                        op: AluOp::Shr,
                        dst: 4,
                        imm: 3,
                    },
                    Insn::JmpIf {
                        cmp: CmpOp::Lt,
                        a: 4,
                        b: 0,
                        off: 0,
                    },
                    Insn::Ret { src: 4 },
                ],
                16,
                Action::Sum,
                100,
            ),
        ] {
            let decoded = Program::decode(&p.encode()).expect("decodes");
            assert_eq!(decoded, p.insns);
        }
    }

    #[test]
    fn agg_reply_roundtrips_and_fits_inline() {
        let r = AggReply {
            records: 4096,
            matches: 41,
            agg: u64::MAX - 5,
            fuel_used: 12_345,
        };
        assert_eq!(AggReply::decode(&r.encode()), Some(r));
        const _FITS_INLINE: () = assert!(AggReply::LEN <= 64);
        assert_eq!(AggReply::decode(&[0u8; 31]), None);
    }

    // ---- execution ---------------------------------------------------------

    /// 64-byte records: u32 key at 0, u64 payload at 8.
    fn records(keys: &[u32], payloads: &[u64]) -> Vec<u8> {
        let mut out = vec![0u8; keys.len() * 64];
        for (i, (k, v)) in keys.iter().zip(payloads).enumerate() {
            out[i * 64..i * 64 + 4].copy_from_slice(&k.to_le_bytes());
            out[i * 64 + 8..i * 64 + 16].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    #[test]
    fn count_and_sum_match_expectations() {
        let data = records(&[7, 1, 7, 2, 7], &[10, 100, 20, 1000, 30]);
        let count = verified(Program::count_where_u32_eq(64, 0, 7));
        let out = scan_all(&count, &data);
        assert_eq!((out.records, out.matches, out.agg), (5, 3, 0));

        let sum = verified(Program::sum_u64_where_u32_eq(64, 8, 0, 7));
        let out = scan_all(&sum, &data);
        assert_eq!((out.matches, out.agg), (3, 60));

        let select = verified(Program::select_where_u32_eq(64, 0, 7));
        let out = scan_all(&select, &data);
        assert_eq!(out.hits, vec![0, 128, 256]);
    }

    #[test]
    fn fuel_runs_out_mid_scan() {
        let data = records(&[7; 16], &[1; 16]);
        // 4 insns per matching record; 16 records need 64 fuel.
        let p = Program::count_where_u32_eq(64, 0, 7)
            .with_fuel(30)
            .verify()
            .expect("verifies");
        let mut fuel = p.fuel_budget();
        let mut out = ScanOut::default();
        assert_eq!(
            scan(&p, &data, 0, &mut fuel, &mut out),
            Err(ExecError::OutOfFuel)
        );
        assert!(out.records < 16);
    }

    #[test]
    fn trailing_partial_record_is_ignored() {
        let mut data = records(&[7, 7], &[1, 2]);
        data.extend_from_slice(&[0u8; 10]); // not a whole record
        let p = verified(Program::count_where_u32_eq(64, 0, 7));
        let out = scan_all(&p, &data);
        assert_eq!(out.records, 2);
    }

    fn scan_all(p: &VerifiedProgram, data: &[u8]) -> ScanOut {
        let mut fuel = p.fuel_budget();
        let mut out = ScanOut::default();
        scan(p, data, 0, &mut fuel, &mut out).expect("in budget");
        out
    }

    // ---- interpreter ≡ reference evaluator ---------------------------------

    fn arb_insn(record_len: usize) -> impl Strategy<Value = Insn> {
        let max_off = (record_len - 8) as u16;
        prop_oneof![
            (0u8..16, any::<u64>()).prop_map(|(dst, imm)| Insn::LdImm { dst, imm }),
            (0u8..16, 0u8..16).prop_map(|(dst, src)| Insn::Mov { dst, src }),
            (
                0u8..16,
                0u16..=max_off,
                prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]
            )
                .prop_map(|(dst, off, width)| Insn::Ld { dst, off, width }),
            (arb_alu(), 0u8..16, 0u8..16).prop_map(|(op, dst, src)| Insn::Alu { op, dst, src }),
            (arb_alu(), 0u8..16, any::<u64>()).prop_map(|(op, dst, imm)| Insn::AluImm {
                op,
                dst,
                imm
            }),
            (0u16..4).prop_map(|off| Insn::Jmp { off: off as i16 }),
            (arb_cmp(), 0u8..16, 0u8..16, 0u16..4).prop_map(|(cmp, a, b, off)| Insn::JmpIf {
                cmp,
                a,
                b,
                off: off as i16
            }),
            (arb_cmp(), 0u8..16, any::<u64>(), 0u16..4).prop_map(|(cmp, a, imm, off)| {
                Insn::JmpIfImm {
                    cmp,
                    a,
                    imm,
                    off: off as i16,
                }
            }),
            (0u8..16).prop_map(|src| Insn::Ret { src }),
        ]
    }

    fn arb_alu() -> impl Strategy<Value = AluOp> {
        prop_oneof![
            Just(AluOp::Add),
            Just(AluOp::Sub),
            Just(AluOp::Mul),
            Just(AluOp::Div),
            Just(AluOp::Rem),
            Just(AluOp::And),
            Just(AluOp::Or),
            Just(AluOp::Xor),
            Just(AluOp::Shl),
            Just(AluOp::Shr),
        ]
    }

    fn arb_cmp() -> impl Strategy<Value = CmpOp> {
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Any random program that the verifier accepts executes
        /// identically on the hot-path interpreter and the independent
        /// reference evaluator — including fuel accounting and
        /// out-of-fuel behavior.
        #[test]
        fn interpreter_matches_reference(
            insns in proptest::collection::vec(arb_insn(16), 1..24),
            page in proptest::collection::vec(any::<u8>(), 0..256),
            action_sel in 0u8..3,
            fuel in 1u64..400,
        ) {
            let action = match action_sel {
                0 => Action::Count,
                1 => Action::Sum,
                _ => Action::Select,
            };
            let prog = Program::new(insns, 16, action, fuel);
            // Out-of-range jump targets and tight fuel are rejected
            // sometimes — only verified programs are comparable.
            if let Ok(vp) = prog.verify() {
                let mut fuel_left = vp.fuel_budget();
                let mut out = ScanOut::default();
                let got = scan(&vp, &page, 3, &mut fuel_left, &mut out).map(|()| out);
                let want = reference_scan(&vp, &page, 3);
                prop_assert_eq!(got, want);
            }
        }
    }
}
