//! Hot-path bytecode interpreter.
//!
//! This module runs inside kernel-side LabMods directly over BufferPool
//! handle slices, so it is governed by the labcheck hot-path policy:
//! no panics, no `unwrap`/`expect`, no indexing — every access goes
//! through `get`/`get_mut` with an explicit fallback. The verifier
//! guarantees those fallbacks are unreachable for a [`VerifiedProgram`]
//! (registers in range, loads in bounds, jumps forward), so the graceful
//! paths cost nothing but keep the policy machine-checkable.
//!
//! Fuel is threaded as `&mut u64` so a LabMod can run one scan across
//! many pages (LabFS walks a block at a time) against a single budget,
//! and is charged **before** each instruction executes — including taken
//! branches, the planted bug `mc_fuel` exists to catch.

use crate::{Action, AluOp, CmpOp, Insn, VerifiedProgram};

/// Why execution stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The fuel budget ran out mid-scan. The partial [`ScanOut`] is
    /// still valid for the records fully retired before exhaustion.
    OutOfFuel,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "fuel budget exhausted"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Accumulated scan results. One `ScanOut` can span multiple [`scan`]
/// calls (one per page) — counters accumulate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOut {
    /// Records examined.
    pub records: u64,
    /// Records whose verdict was non-zero.
    pub matches: u64,
    /// Wrapping sum of verdicts ([`Action::Sum`]).
    pub agg: u64,
    /// Fuel consumed so far.
    pub fuel_used: u64,
    /// Byte offsets (within the scanned data of the *current* call) of
    /// matching records ([`Action::Select`] only).
    pub hits: Vec<usize>,
}

/// Execute the program over one record, returning its verdict. `fuel`
/// is decremented by one per retired instruction; exhaustion aborts
/// with [`ExecError::OutOfFuel`]. Falling off the end of the program
/// returns verdict 0 (no match).
pub fn run_record(
    insns: &[Insn],
    record: &[u8],
    index: u64,
    fuel: &mut u64,
) -> Result<u64, ExecError> {
    let mut regs = [0u64; crate::NUM_REGS];
    if let Some(r0) = regs.get_mut(0) {
        *r0 = record.len() as u64;
    }
    if let Some(r1) = regs.get_mut(1) {
        *r1 = index;
    }
    let mut pc: usize = 0;
    loop {
        let insn = match insns.get(pc) {
            Some(i) => *i,
            None => return Ok(0), // fell off the end: no match
        };
        // Charge fuel before executing — taken branches included.
        *fuel = fuel.checked_sub(1).ok_or(ExecError::OutOfFuel)?;
        pc += 1;
        match insn {
            Insn::LdImm { dst, imm } => set(&mut regs, dst, imm),
            Insn::Mov { dst, src } => {
                let v = get(&regs, src);
                set(&mut regs, dst, v);
            }
            Insn::Ld { dst, off, width } => {
                let v = load(record, off as usize, width as usize);
                set(&mut regs, dst, v);
            }
            Insn::Alu { op, dst, src } => {
                let v = alu(op, get(&regs, dst), get(&regs, src));
                set(&mut regs, dst, v);
            }
            Insn::AluImm { op, dst, imm } => {
                let v = alu(op, get(&regs, dst), imm);
                set(&mut regs, dst, v);
            }
            Insn::Jmp { off } => pc = jump(pc, off),
            Insn::JmpIf { cmp, a, b, off } => {
                if compare(cmp, get(&regs, a), get(&regs, b)) {
                    pc = jump(pc, off);
                }
            }
            Insn::JmpIfImm { cmp, a, imm, off } => {
                if compare(cmp, get(&regs, a), imm) {
                    pc = jump(pc, off);
                }
            }
            Insn::Ret { src } => return Ok(get(&regs, src)),
        }
    }
}

/// Scan `data` as a sequence of whole `record_len`-byte records (a
/// trailing partial record is ignored), accumulating into `out`.
/// `base_index` is the record index of `data`'s first record — LabFS
/// passes a running index so `r1` stays meaningful across pages. The
/// scan reads the data in place: zero payload copies.
pub fn scan(
    prog: &VerifiedProgram,
    data: &[u8],
    base_index: u64,
    fuel: &mut u64,
    out: &mut ScanOut,
) -> Result<(), ExecError> {
    let rlen = prog.record_len();
    let insns = prog.insns();
    let action = prog.action();
    let mut off = 0usize;
    let mut index = base_index;
    while let Some(record) = data.get(off..off + rlen) {
        let before = *fuel;
        let verdict = match run_record(insns, record, index, fuel) {
            Ok(v) => {
                out.fuel_used += before - *fuel;
                v
            }
            Err(e) => {
                out.fuel_used += before - *fuel;
                return Err(e);
            }
        };
        out.records += 1;
        if verdict != 0 {
            out.matches += 1;
            match action {
                Action::Count => {}
                Action::Sum => out.agg = out.agg.wrapping_add(verdict),
                Action::Select => out.hits.push(off),
            }
        }
        off += rlen;
        index += 1;
    }
    Ok(())
}

/// One-shot convenience: run a full scan with the program's own fuel
/// budget over a single contiguous buffer.
pub fn scan_all(prog: &VerifiedProgram, data: &[u8]) -> Result<ScanOut, ExecError> {
    let mut fuel = prog.fuel_budget();
    let mut out = ScanOut::default();
    scan(prog, data, 0, &mut fuel, &mut out)?;
    Ok(out)
}

/// The register file: sixteen u64s, fixed at [`crate::NUM_REGS`].
type Regs = [u64; crate::NUM_REGS];

#[inline]
fn get(regs: &Regs, r: u8) -> u64 {
    regs.get(r as usize).copied().unwrap_or(0)
}

#[inline]
fn set(regs: &mut Regs, r: u8, v: u64) {
    if let Some(slot) = regs.get_mut(r as usize) {
        *slot = v;
    }
}

/// Little-endian load, verifier-proven in bounds; the `unwrap_or(0)`
/// fallback keeps the path panic-free regardless.
#[inline]
fn load(record: &[u8], off: usize, width: usize) -> u64 {
    record
        .get(off..off + width)
        .map(|bytes| {
            let mut buf = [0u8; 8];
            if let Some(dst) = buf.get_mut(..width) {
                dst.copy_from_slice(bytes);
            }
            u64::from_le_bytes(buf)
        })
        .unwrap_or(0)
}

#[inline]
fn jump(next_pc: usize, off: i16) -> usize {
    // Verifier guarantees off >= 0 and the target in range.
    next_pc.saturating_add(off.max(0) as usize)
}

#[inline]
fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(0),
        AluOp::Rem => a.checked_rem(b).unwrap_or(0),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
    }
}

#[inline]
fn compare(cmp: CmpOp, a: u64, b: u64) -> bool {
    match cmp {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}
