//! Host-side reference evaluator.
//!
//! Deliberately written *differently* from the hot-path interpreter in
//! [`crate::interp`] — recursion-free single function, direct indexing
//! (fine here: this is host-side test machinery, not under the hot-path
//! lint), explicit step-by-step fuel bookkeeping — so the equivalence
//! proptest in `lib.rs` compares two independent implementations of the
//! ISA semantics rather than one implementation with itself.

use crate::{Action, AluOp, CmpOp, ExecError, Insn, ScanOut, VerifiedProgram};

/// Evaluate one record and return `(verdict, fuel_consumed)`, or the
/// fuel consumed before exhaustion.
fn eval_record(
    insns: &[Insn],
    record: &[u8],
    index: u64,
    fuel_avail: u64,
) -> Result<(u64, u64), u64> {
    let mut regs = [0u64; crate::NUM_REGS];
    regs[0] = record.len() as u64;
    regs[1] = index;
    let mut pc = 0usize;
    let mut used = 0u64;
    while pc < insns.len() {
        if used == fuel_avail {
            return Err(used);
        }
        used += 1;
        let insn = insns[pc];
        pc += 1;
        match insn {
            Insn::LdImm { dst, imm } => regs[dst as usize] = imm,
            Insn::Mov { dst, src } => regs[dst as usize] = regs[src as usize],
            Insn::Ld { dst, off, width } => {
                let mut v = 0u64;
                // Byte-at-a-time little-endian assembly: structurally
                // unlike the interpreter's from_le_bytes path.
                for i in (0..width as usize).rev() {
                    v = (v << 8) | record[off as usize + i] as u64;
                }
                regs[dst as usize] = v;
            }
            Insn::Alu { op, dst, src } => {
                regs[dst as usize] = ref_alu(op, regs[dst as usize], regs[src as usize]);
            }
            Insn::AluImm { op, dst, imm } => {
                regs[dst as usize] = ref_alu(op, regs[dst as usize], imm);
            }
            Insn::Jmp { off } => pc += off as usize,
            Insn::JmpIf { cmp, a, b, off } => {
                if ref_cmp(cmp, regs[a as usize], regs[b as usize]) {
                    pc += off as usize;
                }
            }
            Insn::JmpIfImm { cmp, a, imm, off } => {
                if ref_cmp(cmp, regs[a as usize], imm) {
                    pc += off as usize;
                }
            }
            Insn::Ret { src } => return Ok((regs[src as usize], used)),
        }
    }
    Ok((0, used))
}

/// Reference scan over `data` with the program's full fuel budget.
/// Returns exactly what [`crate::scan`] produces (accumulated into a
/// fresh [`ScanOut`]) — including the out-of-fuel error and the partial
/// output's fuel accounting.
pub fn reference_scan(
    prog: &VerifiedProgram,
    data: &[u8],
    base_index: u64,
) -> Result<ScanOut, ExecError> {
    let rlen = prog.record_len();
    let mut out = ScanOut::default();
    let mut remaining = prog.fuel_budget();
    let n_whole = data.len() / rlen;
    for i in 0..n_whole {
        let off = i * rlen;
        let record = &data[off..off + rlen];
        match eval_record(prog.insns(), record, base_index + i as u64, remaining) {
            Ok((verdict, used)) => {
                remaining -= used;
                out.fuel_used += used;
                out.records += 1;
                if verdict != 0 {
                    out.matches += 1;
                    match prog.action() {
                        Action::Count => {}
                        Action::Sum => out.agg = out.agg.wrapping_add(verdict),
                        Action::Select => out.hits.push(off),
                    }
                }
            }
            Err(used) => {
                out.fuel_used += used;
                return Err(ExecError::OutOfFuel);
            }
        }
    }
    Ok(out)
}

fn ref_alu(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => a.checked_div(b).unwrap_or(0),
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a % b
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b % 64) as u32),
        AluOp::Shr => a.wrapping_shr((b % 64) as u32),
    }
}

fn ref_cmp(cmp: CmpOp, a: u64, b: u64) -> bool {
    match cmp {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}
