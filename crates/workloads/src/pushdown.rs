//! Pushdown workload: fixed-width record datasets and a host-side
//! reference scan, for benchmarking in-stack filters against the
//! ship-everything-and-scan-client-side baseline.
//!
//! Records are `RECORD_LEN`-byte rows with a little-endian `u32` key at
//! offset [`KEY_OFF`]. Key values cycle `i % KEY_SPACE`, so filtering
//! for one key value yields exactly `1 / KEY_SPACE` selectivity —
//! `bench_pushdown` uses `KEY_SPACE = 100` for the paper-style 1% point.

/// Bytes per record. 64 divides the 4096-byte FS block evenly, which the
/// LabFS pushdown path requires (whole records per page).
pub const RECORD_LEN: usize = 64;

/// Byte offset of the little-endian `u32` key within each record.
pub const KEY_OFF: usize = 0;

/// Distinct key values; selecting one gives `1/KEY_SPACE` selectivity.
pub const KEY_SPACE: u32 = 100;

/// Build `n` records. Record `i` carries key `i % KEY_SPACE` at
/// [`KEY_OFF`], the record index as a `u64` at offset 8 (a summable
/// column), and a deterministic byte fill after that so verification can
/// detect corruption or misalignment.
pub fn make_records(n: usize) -> Vec<u8> {
    let mut data = vec![0u8; n * RECORD_LEN];
    for (i, rec) in data.chunks_exact_mut(RECORD_LEN).enumerate() {
        let key = (i as u32) % KEY_SPACE;
        rec[KEY_OFF..KEY_OFF + 4].copy_from_slice(&key.to_le_bytes());
        rec[8..16].copy_from_slice(&(i as u64).to_le_bytes());
        for (j, b) in rec[16..].iter_mut().enumerate() {
            *b = ((i * 31 + j) % 251) as u8;
        }
    }
    data
}

/// Host-side reference: count records whose key equals `value`. This is
/// the client-side baseline scan and the oracle the pushdown result is
/// checked against.
pub fn client_scan_count(data: &[u8], value: u32) -> u64 {
    data.chunks_exact(RECORD_LEN)
        .filter(|rec| {
            let mut k = [0u8; 4];
            k.copy_from_slice(&rec[KEY_OFF..KEY_OFF + 4]);
            u32::from_le_bytes(k) == value
        })
        .count() as u64
}

/// Host-side reference: sum the `u64` column at offset 8 over records
/// whose key equals `value`.
pub fn client_scan_sum(data: &[u8], value: u32) -> u64 {
    data.chunks_exact(RECORD_LEN)
        .filter(|rec| {
            let mut k = [0u8; 4];
            k.copy_from_slice(&rec[KEY_OFF..KEY_OFF + 4]);
            u32::from_le_bytes(k) == value
        })
        .fold(0u64, |acc, rec| {
            let mut v = [0u8; 8];
            v.copy_from_slice(&rec[8..16]);
            acc.wrapping_add(u64::from_le_bytes(v))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_pack_fs_blocks() {
        assert_eq!(4096 % RECORD_LEN, 0);
    }

    #[test]
    fn selectivity_is_one_over_key_space() {
        let n = 4 * KEY_SPACE as usize; // whole key cycles
        let data = make_records(n);
        for value in [0, 7, KEY_SPACE - 1] {
            assert_eq!(client_scan_count(&data, value), 4);
        }
        assert_eq!(client_scan_count(&data, KEY_SPACE), 0);
    }

    #[test]
    fn sum_matches_arithmetic() {
        let data = make_records(300);
        // Records with key 7: indices 7, 107, 207.
        assert_eq!(client_scan_sum(&data, 7), 7 + 107 + 207);
    }
}
