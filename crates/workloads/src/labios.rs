//! The LABIOS worker workload (Fig. 9b).
//!
//! LABIOS stores *labels*. "Typically, LABIOS stores labels by translating
//! them to a UNIX file which is written on the disk by POSIX I/O. Each
//! label write triggers a sequence of POSIX calls (fopen(), fseek(),
//! ftruncate(), fclose())" — four syscalls. The LabKVS backend "simply
//! performs put/get, which reduces the number of syscalls from 4 down
//! to 1."

use labstor_mods::generic::GenericKvs;

use crate::fio::XorShift;
use crate::stats::Recorder;
use crate::targets::FsTarget;

/// One LABIOS worker job.
#[derive(Debug, Clone)]
pub struct LabiosJob {
    /// Labels to store.
    pub labels: usize,
    /// Label payload size (the paper uses 8 KB).
    pub label_bytes: usize,
    /// Random (true, NVMe test) or sequential label ids.
    pub random: bool,
    /// Number of distinct label ids (steady-state workers overwrite a
    /// bounded label space; only the first touch of an id creates).
    pub id_space: u64,
    /// RNG seed.
    pub seed: u64,
}

impl LabiosJob {
    /// The paper's configuration: 8 KB labels, random, single thread,
    /// steady-state overwrites over a bounded id space.
    pub fn paper(labels: usize) -> Self {
        LabiosJob {
            labels,
            label_bytes: 8 * 1024,
            random: true,
            id_space: (labels as u64 / 4).max(1),
            seed: 9,
        }
    }
}

/// Store labels through a POSIX file backend: open-seek-write-close per
/// label (the file-translation path).
pub fn run_file_backend(job: &LabiosJob, target: &mut dyn FsTarget) -> Result<Recorder, String> {
    let mut rng = XorShift::new(job.seed);
    let payload: Vec<u8> = (0..job.label_bytes).map(|i| (i % 251) as u8).collect();
    let mut rec = Recorder::new(target.now_ns());
    for i in 0..job.labels {
        let id = if job.random {
            rng.next() % job.id_space
        } else {
            i as u64 % job.id_space
        };
        let path = format!("/label_{id}");
        let t0 = target.now_ns();
        // fopen / fseek / fwrite / fclose — the four-call sequence.
        let fd = target.open(&path, true, false)?;
        target.seek(fd, 0)?;
        let n = target.write(fd, &payload)?;
        target.close(fd)?;
        rec.record(target.now_ns() - t0, n);
    }
    rec.end_vt = target.now_ns();
    Ok(rec)
}

/// Store labels through LabKVS: one put per label.
pub fn run_kvs_backend(job: &LabiosJob, kvs: &mut GenericKvs) -> Result<Recorder, String> {
    let mut rng = XorShift::new(job.seed);
    let payload: Vec<u8> = (0..job.label_bytes).map(|i| (i % 251) as u8).collect();
    let mut rec = Recorder::new(kvs.client().ctx.now());
    for i in 0..job.labels {
        let id = if job.random {
            rng.next() % job.id_space
        } else {
            i as u64 % job.id_space
        };
        let key = format!("/label_{id}");
        let t0 = kvs.client().ctx.now();
        let n = kvs.put(&key, payload.clone()).map_err(|e| e.to_string())?;
        rec.record(kvs.client().ctx.now() - t0, n);
    }
    rec.end_vt = kvs.client().ctx.now();
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::KernelFsTarget;
    use labstor_core::{Runtime, RuntimeConfig, StackSpec, VertexSpec};
    use labstor_kernel::fs::{FsProfile, KernelFs};
    use labstor_kernel::vfs::Vfs;
    use labstor_kernel::BlockLayer;
    use labstor_mods::DeviceRegistry;
    use labstor_sim::{DeviceKind, SimDevice};

    #[test]
    fn file_backend_stores_labels() {
        let vfs = Vfs::new();
        let dev = SimDevice::preset(DeviceKind::Nvme);
        vfs.mount(
            "/mnt",
            KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(dev), 8 << 20),
        );
        let mut t = KernelFsTarget::new(vfs, "/mnt", "ext4", 1, 0);
        let job = LabiosJob {
            labels: 10,
            label_bytes: 8192,
            random: false,
            id_space: 10,
            seed: 1,
        };
        let rec = run_file_backend(&job, &mut t).unwrap();
        assert_eq!(rec.ops(), 10);
        assert_eq!(rec.bytes, 10 * 8192);
        assert_eq!(t.stat_size("/label_3").unwrap(), 8192);
    }

    #[test]
    fn kvs_backend_beats_file_backend() {
        // Same device model; KVS needs 1 op per label vs 4 syscalls.
        let devices = DeviceRegistry::new();
        devices.add_preset("nvme0", DeviceKind::Nvme);
        let rt = Runtime::start(RuntimeConfig {
            auto_admin: false,
            ..Default::default()
        });
        labstor_mods::install_all(&rt.mm, &devices);
        let spec = StackSpec {
            mount: "/".into(),
            exec: "sync".into(),
            authorized_uids: vec![0],
            labmods: vec![
                VertexSpec {
                    uuid: "kvs1".into(),
                    type_name: "labkvs".into(),
                    params: serde_json::json!({"device": "nvme0", "workers": 4}),
                    outputs: vec!["drv1".into()],
                },
                VertexSpec {
                    uuid: "drv1".into(),
                    type_name: "kernel_driver".into(),
                    params: serde_json::json!({"device": "nvme0"}),
                    outputs: vec![],
                },
            ],
        };
        rt.mount_stack(&spec).unwrap();
        let client = rt.connect(labstor_ipc::Credentials::new(1, 0, 0), 1);
        let mut kvs = GenericKvs::new(client);
        let job = LabiosJob::paper(200);
        let kv_rec = run_kvs_backend(&job, &mut kvs).unwrap();
        rt.shutdown();

        // Sustained-write regime: a low dirty threshold keeps the kernel
        // path device-bound like the paper's long-running LABIOS workers.
        let vfs = Vfs::new();
        let dev2 = SimDevice::preset(DeviceKind::Nvme);
        vfs.mount(
            "/mnt",
            KernelFs::with_dirty_threshold(
                FsProfile::ext4_like(),
                BlockLayer::new(dev2),
                8 << 20,
                16 << 10,
            ),
        );
        let mut t = KernelFsTarget::new(vfs, "/mnt", "ext4", 1, 0);
        let file_rec = run_file_backend(&job, &mut t).unwrap();

        assert_eq!(kv_rec.ops(), 200);
        assert!(
            kv_rec.mean_ns() < file_rec.mean_ns(),
            "kvs {} ns vs file {} ns",
            kv_rec.mean_ns(),
            file_rec.mean_ns()
        );
    }
}
