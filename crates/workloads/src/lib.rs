#![warn(missing_docs)]

//! # labstor-workloads — the paper's workload generators and substrates
//!
//! Implementations of every workload §IV evaluates with:
//!
//! * [`fio`] — a FIO-like generator: read/write mix, sequential/random,
//!   request size, queue depth, thread count (Figs. 5a, 6, 8).
//! * [`fxmark`] — FxMark-like metadata stressors: per-thread file
//!   creation in shared or private directories (Fig. 7).
//! * [`filebench`] — Filebench-like personalities with the default
//!   varmail/webserver/webproxy/fileserver mixes (Fig. 9c).
//! * [`labios`] — the LABIOS worker: 8 KB "labels" stored either through
//!   a POSIX file backend (fopen/fseek/fwrite/fclose) or a single KVS put
//!   (Fig. 9b).
//! * [`pfs`] — an OrangeFS-like parallel filesystem (64 KB striping,
//!   dedicated metadata server) plus the VPIC particle writer and BD-CATS
//!   reader that run over it (Fig. 9a).
//! * [`targets`] — adapters giving every workload a uniform view of a
//!   kernel filesystem (through the simulated VFS) or a LabStor stack
//!   (through GenericFS/GenericKVS).
//! * [`pushdown`] — fixed-width record datasets and host-side reference
//!   scans for the pushdown-vs-client-side-filter comparison.
//! * [`stats`] — virtual-time latency recorders and percentile math.
//! * [`crash`] — the crash-recovery fuzz campaign: seeded fio/filebench
//!   mixes killed at randomized virtual times, restarted, repaired, and
//!   checked for prefix consistency against the acked history.

pub mod crash;
pub mod filebench;
pub mod fio;
pub mod fxmark;
pub mod labios;
pub mod pfs;
pub mod pushdown;
pub mod stats;
pub mod targets;

pub use stats::Recorder;
pub use targets::{FsTarget, KernelFsTarget, LabStorFsTarget};
