//! Target adapters: one interface over kernel filesystems and LabStor
//! stacks so each workload is written once and runs against every
//! configuration a figure compares.

use std::sync::Arc;

use labstor_core::client::Client;
use labstor_kernel::vfs::{Cred, OpenFlags, Vfs};
use labstor_mods::generic::{GenericFs, GenericFsError};
use labstor_sim::Ctx;

/// A POSIX-ish filesystem as seen by a workload thread. Implementations
/// own the thread's virtual clock.
pub trait FsTarget {
    /// Open (optionally creating/truncating); returns an fd.
    fn open(&mut self, path: &str, create: bool, truncate: bool) -> Result<i32, String>;
    /// Write at the fd position.
    fn write(&mut self, fd: i32, data: &[u8]) -> Result<usize, String>;
    /// Read at the fd position.
    fn read(&mut self, fd: i32, len: usize) -> Result<Vec<u8>, String>;
    /// Seek (SEEK_SET).
    fn seek(&mut self, fd: i32, pos: u64) -> Result<(), String>;
    /// Truncate via fd.
    fn ftruncate(&mut self, fd: i32, size: u64) -> Result<(), String>;
    /// fsync.
    fn fsync(&mut self, fd: i32) -> Result<(), String>;
    /// close.
    fn close(&mut self, fd: i32) -> Result<(), String>;
    /// unlink.
    fn unlink(&mut self, path: &str) -> Result<(), String>;
    /// rename.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), String>;
    /// mkdir.
    fn mkdir(&mut self, path: &str) -> Result<(), String>;
    /// stat; returns file size.
    fn stat_size(&mut self, path: &str) -> Result<u64, String>;
    /// This thread's virtual clock, in ns.
    fn now_ns(&self) -> u64;
    /// Fast-forward this actor's clock to `vt` if it is in the future
    /// (used when the target models a server receiving remote requests).
    fn sync_to(&mut self, vt: u64);
    /// Short label for reports ("ext4", "labfs-all", …).
    fn label(&self) -> String;
}

/// A workload thread talking to a kernel filesystem through the simulated
/// VFS (syscalls, page cache, block layer — the baseline path).
pub struct KernelFsTarget {
    /// The VFS holding the mounted filesystem.
    pub vfs: Arc<Vfs>,
    /// This thread's virtual clock.
    pub ctx: Ctx,
    /// Simulated pid owning the fd table.
    pub pid: u32,
    /// Core the thread runs on.
    pub core: usize,
    /// Credentials.
    pub cred: Cred,
    /// Mount prefix to prepend to workload paths.
    pub mount: String,
    label: String,
}

impl KernelFsTarget {
    /// New adapter for `(vfs, mount)`; `label` names the filesystem.
    pub fn new(vfs: Arc<Vfs>, mount: &str, label: &str, pid: u32, core: usize) -> Self {
        KernelFsTarget {
            vfs,
            ctx: Ctx::new(),
            pid,
            core,
            cred: Cred::ROOT,
            mount: mount.trim_end_matches('/').to_string(),
            label: label.to_string(),
        }
    }

    fn full(&self, path: &str) -> String {
        format!("{}{}", self.mount, path)
    }
}

impl FsTarget for KernelFsTarget {
    fn open(&mut self, path: &str, create: bool, truncate: bool) -> Result<i32, String> {
        let full = self.full(path);
        self.vfs
            .open(
                &mut self.ctx,
                self.core,
                self.pid,
                self.cred,
                &full,
                OpenFlags {
                    create,
                    truncate,
                    append: false,
                },
                0o644,
            )
            .map_err(|e| e.to_string())
    }

    fn write(&mut self, fd: i32, data: &[u8]) -> Result<usize, String> {
        self.vfs
            .write(&mut self.ctx, self.core, self.pid, fd, data)
            .map_err(|e| e.to_string())
    }

    fn read(&mut self, fd: i32, len: usize) -> Result<Vec<u8>, String> {
        let mut buf = vec![0u8; len];
        let n = self
            .vfs
            .read(&mut self.ctx, self.core, self.pid, fd, &mut buf)
            .map_err(|e| e.to_string())?;
        buf.truncate(n);
        Ok(buf)
    }

    fn seek(&mut self, fd: i32, pos: u64) -> Result<(), String> {
        self.vfs
            .seek(&mut self.ctx, self.pid, fd, pos)
            .map_err(|e| e.to_string())
    }

    fn ftruncate(&mut self, fd: i32, size: u64) -> Result<(), String> {
        self.vfs
            .ftruncate(&mut self.ctx, self.core, self.pid, fd, size)
            .map_err(|e| e.to_string())
    }

    fn fsync(&mut self, fd: i32) -> Result<(), String> {
        self.vfs
            .fsync(&mut self.ctx, self.core, self.pid, fd)
            .map_err(|e| e.to_string())
    }

    fn close(&mut self, fd: i32) -> Result<(), String> {
        self.vfs
            .close(&mut self.ctx, self.pid, fd)
            .map_err(|e| e.to_string())
    }

    fn unlink(&mut self, path: &str) -> Result<(), String> {
        let full = self.full(path);
        self.vfs
            .unlink(&mut self.ctx, self.core, self.cred, &full)
            .map_err(|e| e.to_string())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), String> {
        let (f, t) = (self.full(from), self.full(to));
        self.vfs
            .rename(&mut self.ctx, self.core, self.cred, &f, &t)
            .map_err(|e| e.to_string())
    }

    fn mkdir(&mut self, path: &str) -> Result<(), String> {
        let full = self.full(path);
        self.vfs
            .mkdir(&mut self.ctx, self.core, self.cred, &full, 0o755)
            .map_err(|e| e.to_string())
    }

    fn stat_size(&mut self, path: &str) -> Result<u64, String> {
        let full = self.full(path);
        self.vfs
            .stat(&mut self.ctx, &full)
            .map(|s| s.size)
            .map_err(|e| e.to_string())
    }

    fn now_ns(&self) -> u64 {
        self.ctx.now()
    }

    fn sync_to(&mut self, vt: u64) {
        self.ctx.idle_until(vt);
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// A workload thread talking to a LabStor stack through GenericFS.
pub struct LabStorFsTarget {
    /// The GenericFS connector (owns the client and its clock).
    pub gfs: GenericFs,
    /// Mount prefix to prepend to workload paths.
    pub mount: String,
    label: String,
}

impl LabStorFsTarget {
    /// New adapter over a connected client; paths go under `mount`.
    pub fn new(client: Client, mount: &str, label: &str) -> Self {
        LabStorFsTarget {
            gfs: GenericFs::new(client),
            mount: mount.trim_end_matches('/').to_string(),
            label: label.to_string(),
        }
    }

    fn full(&self, path: &str) -> String {
        format!("{}{}", self.mount, path)
    }

    fn map<T>(r: Result<T, GenericFsError>) -> Result<T, String> {
        r.map_err(|e| e.to_string())
    }
}

impl FsTarget for LabStorFsTarget {
    fn open(&mut self, path: &str, create: bool, truncate: bool) -> Result<i32, String> {
        let p = self.full(path);
        Self::map(self.gfs.open(&p, create, truncate))
    }

    fn write(&mut self, fd: i32, data: &[u8]) -> Result<usize, String> {
        Self::map(self.gfs.write(fd, data))
    }

    fn read(&mut self, fd: i32, len: usize) -> Result<Vec<u8>, String> {
        Self::map(self.gfs.read(fd, len))
    }

    fn seek(&mut self, fd: i32, pos: u64) -> Result<(), String> {
        Self::map(self.gfs.seek(fd, pos))
    }

    fn ftruncate(&mut self, fd: i32, size: u64) -> Result<(), String> {
        Self::map(self.gfs.ftruncate(fd, size))
    }

    fn fsync(&mut self, fd: i32) -> Result<(), String> {
        Self::map(self.gfs.fsync(fd))
    }

    fn close(&mut self, fd: i32) -> Result<(), String> {
        Self::map(self.gfs.close(fd))
    }

    fn unlink(&mut self, path: &str) -> Result<(), String> {
        let p = self.full(path);
        Self::map(self.gfs.unlink(&p))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), String> {
        let (f, t) = (self.full(from), self.full(to));
        Self::map(self.gfs.rename(&f, &t))
    }

    fn mkdir(&mut self, path: &str) -> Result<(), String> {
        let p = self.full(path);
        Self::map(self.gfs.mkdir(&p, 0o755))
    }

    fn stat_size(&mut self, path: &str) -> Result<u64, String> {
        let p = self.full(path);
        Self::map(self.gfs.stat(&p)).map(|s| s.size)
    }

    fn now_ns(&self) -> u64 {
        self.gfs.client().ctx.now()
    }

    fn sync_to(&mut self, vt: u64) {
        self.gfs.client_mut().ctx.idle_until(vt);
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_core::stack::ExecMode;
    use labstor_core::{Runtime, RuntimeConfig, StackSpec};
    use labstor_kernel::fs::{FsProfile, KernelFs};
    use labstor_kernel::BlockLayer;
    use labstor_mods::DeviceRegistry;
    use labstor_sim::{DeviceKind, SimDevice};

    fn kernel_target() -> KernelFsTarget {
        let vfs = Vfs::new();
        let dev = SimDevice::preset(DeviceKind::Nvme);
        vfs.mount(
            "/mnt",
            KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(dev), 8 << 20),
        );
        KernelFsTarget::new(vfs, "/mnt", "ext4", 1, 0)
    }

    fn labstor_target() -> LabStorFsTarget {
        let devices = DeviceRegistry::new();
        devices.add_preset("nvme0", DeviceKind::Nvme);
        let rt = Runtime::start(RuntimeConfig {
            auto_admin: false,
            ..Default::default()
        });
        labstor_mods::install_all(&rt.mm, &devices);
        let spec = StackSpec {
            mount: "fs::/b".into(),
            exec: "sync".into(),
            authorized_uids: vec![0],
            labmods: vec![
                labstor_core::VertexSpec {
                    uuid: "fs1".into(),
                    type_name: "labfs".into(),
                    params: serde_json::json!({"device": "nvme0", "workers": 4}),
                    outputs: vec!["drv1".into()],
                },
                labstor_core::VertexSpec {
                    uuid: "drv1".into(),
                    type_name: "kernel_driver".into(),
                    params: serde_json::json!({"device": "nvme0"}),
                    outputs: vec![],
                },
            ],
        };
        let stack = rt.mount_stack(&spec).unwrap();
        assert_eq!(stack.exec, ExecMode::Sync);
        let client = rt.connect(labstor_ipc::Credentials::new(1, 0, 0), 1);
        let t = LabStorFsTarget::new(client, "fs::/b", "labfs-d");
        rt.shutdown();
        t
    }

    fn exercise(t: &mut dyn FsTarget) {
        let fd = t.open("/w.txt", true, false).unwrap();
        assert_eq!(t.write(fd, b"hello target").unwrap(), 12);
        t.seek(fd, 0).unwrap();
        assert_eq!(t.read(fd, 12).unwrap(), b"hello target");
        t.fsync(fd).unwrap();
        t.close(fd).unwrap();
        assert_eq!(t.stat_size("/w.txt").unwrap(), 12);
        t.unlink("/w.txt").unwrap();
        assert!(t.stat_size("/w.txt").is_err());
        assert!(t.now_ns() > 0, "virtual time advanced");
    }

    #[test]
    fn kernel_target_full_cycle() {
        let mut t = kernel_target();
        exercise(&mut t);
        assert_eq!(t.label(), "ext4");
    }

    #[test]
    fn labstor_target_full_cycle() {
        let mut t = labstor_target();
        exercise(&mut t);
        assert_eq!(t.label(), "labfs-d");
    }
}
